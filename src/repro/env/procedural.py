"""Procedural environment generator: seeded worlds beyond the paper's hall.

Every published number reproduces one 40.8 m x 16 m office hall with 28
reference locations and 6 APs — but fingerprint twins are a property of
the RSS *field*, jointly determined by topology, AP density, and noise.
This module generates whole families of environments deterministically
from ``(seed, spec)``:

* **Topologies** — multi-floor ``tower`` (stairs and elevators become
  inter-floor graph edges across slab walls), ``mall`` (two anchor
  corridors, shop stubs, kiosk medians), ``warehouse`` (racking aisles
  with cross-aisles only at the ends), ``stadium`` (concentric concourse
  rings joined at gates), and ``corridor`` (a serpentine single-width
  path).
* **AP placement policies** — ``grid``, ``perimeter``, ``clustered``,
  and ``sparse-adversarial`` (every AP on the symmetry axis, the paper's
  twin-manufacturing geometry), pluggable via
  :func:`register_placement_policy`.

Generated worlds come out as the existing :class:`~repro.env.floorplan.FloorPlan`
and :class:`~repro.env.graph.WalkableGraph` types wrapped in an
:class:`~repro.env.office_hall.OfficeHall`, so the radio substrate, the
scenario assembly, serving, cluster, and chaos layers consume them
unchanged.  Regenerating from the same ``(seed, spec)`` is bitwise
identical, and :class:`EnvironmentSpec` round-trips through plain JSON.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .floorplan import FloorPlan, ReferenceLocation
from .geometry import Point, Segment
from .graph import WalkableGraph
from .office_hall import OfficeHall

__all__ = [
    "TOPOLOGIES",
    "PLACEMENT_POLICIES",
    "EnvironmentSpec",
    "GeneratedEnvironment",
    "generate_environment",
    "register_placement_policy",
    "environment_checksum",
]

SPEC_FORMAT_VERSION = 1

TOPOLOGIES: Tuple[str, ...] = (
    "tower",
    "mall",
    "warehouse",
    "stadium",
    "corridor",
)
"""The supported topology families."""

_MAX_APS = 500
_MAX_FLOORS = 16
_WALL_CLEARANCE_M = 0.35
"""Minimum distance kept between any wall and any reference location."""

_STAIR_GAP_HALF_WIDTH_M = 1.2
"""Half-width of the slab opening around a stair/elevator column."""


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EnvironmentSpec:
    """A complete, JSON-round-trippable description of a generated world.

    Together with a seed this determines the environment bit for bit.

    Attributes:
        topology: One of :data:`TOPOLOGIES`.
        floors: Stacked floors (towers only; all others require 1).
        rows: Per-floor reference rows (rings for ``stadium``, serpentine
            runs for ``corridor``; ``mall`` requires exactly 4 bands).
        cols: Per-floor reference columns (locations per ring for
            ``stadium``; ``stadium`` needs at least 8).
        floor_width_m: Per-floor extent along x, meters.
        floor_height_m: Per-floor extent along y, meters.
        n_aps: AP mounts to place (1..500).
        placement: A registered placement policy name.
        ap_clusters: Cluster count for the ``clustered`` policy.
        name: Plan name; defaults to a descriptive one when empty.
    """

    topology: str = "tower"
    floors: int = 1
    rows: int = 4
    cols: int = 7
    floor_width_m: float = 40.8
    floor_height_m: float = 16.0
    n_aps: int = 6
    placement: str = "grid"
    ap_clusters: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; expected one of "
                f"{tuple(PLACEMENT_POLICIES)}"
            )
        for label, value in (("floors", self.floors), ("rows", self.rows),
                             ("cols", self.cols), ("n_aps", self.n_aps),
                             ("ap_clusters", self.ap_clusters)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{label} must be an integer, got {value!r}")
        if not 1 <= self.floors <= _MAX_FLOORS:
            raise ValueError(f"floors must be in [1, {_MAX_FLOORS}], got {self.floors}")
        if self.floors > 1 and self.topology != "tower":
            raise ValueError(
                f"only towers stack floors; {self.topology!r} requires floors=1"
            )
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"grid must be at least 1x1, got {self.rows}x{self.cols}"
            )
        if self.topology == "tower" and (self.rows < 2 or self.cols < 2):
            raise ValueError("towers need at least a 2x2 floor grid for stairs")
        if self.topology == "mall" and self.rows != 4:
            raise ValueError(
                "malls are shops/corridor/corridor/shops: rows must be 4, "
                f"got {self.rows}"
            )
        if self.topology == "warehouse" and (self.rows < 3 or self.cols < 2):
            raise ValueError("warehouses need rows >= 3 and cols >= 2")
        if self.topology == "stadium":
            if self.cols < 8:
                raise ValueError(
                    f"stadium rings need at least 8 locations, got {self.cols}"
                )
            if self.rows < 2:
                raise ValueError("stadiums need at least 2 concourse rings")
        if self.topology == "corridor" and self.cols < 2:
            raise ValueError("corridor runs need at least 2 locations")
        if not (math.isfinite(self.floor_width_m) and self.floor_width_m > 0):
            raise ValueError(
                f"floor_width_m must be positive, got {self.floor_width_m}"
            )
        if not (math.isfinite(self.floor_height_m) and self.floor_height_m > 0):
            raise ValueError(
                f"floor_height_m must be positive, got {self.floor_height_m}"
            )
        if not 1 <= self.n_aps <= _MAX_APS:
            raise ValueError(f"n_aps must be in [1, {_MAX_APS}], got {self.n_aps}")
        if self.ap_clusters < 1:
            raise ValueError(f"ap_clusters must be >= 1, got {self.ap_clusters}")
        # Enough room on each axis that walls keep clear of locations.
        per_cell = 2.0 * _WALL_CLEARANCE_M
        if self.topology == "stadium":
            # Rings live on circles: both axes must hold every ring.
            need_w = need_h = per_cell * (self.rows + 1) * 2.0
        else:
            need_w = per_cell * (self.cols + 1)
            need_h = per_cell * (self.rows + 1)
        if self.floor_width_m < need_w or self.floor_height_m < need_h:
            raise ValueError(
                f"{self.floor_width_m:g}m x {self.floor_height_m:g}m floors are "
                f"too small for a {self.rows}x{self.cols} {self.topology}"
            )

    @property
    def n_locations(self) -> int:
        """Reference locations the generated plan will contain."""
        return self.floors * self.rows * self.cols

    @property
    def display_name(self) -> str:
        """The plan name: explicit, or derived from the parameters."""
        if self.name:
            return self.name
        stack = f"{self.floors}x" if self.floors > 1 else ""
        return (
            f"{self.topology} {stack}{self.rows}x{self.cols} "
            f"({self.n_aps} APs, {self.placement})"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a self-describing JSON-compatible dict."""
        return {
            "format_version": SPEC_FORMAT_VERSION,
            "kind": "environment_spec",
            "topology": self.topology,
            "floors": self.floors,
            "rows": self.rows,
            "cols": self.cols,
            "floor_width_m": self.floor_width_m,
            "floor_height_m": self.floor_height_m,
            "n_aps": self.n_aps,
            "placement": self.placement,
            "ap_clusters": self.ap_clusters,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EnvironmentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if payload.get("kind") != "environment_spec":
            raise ValueError(
                f"expected an 'environment_spec' document, got {payload.get('kind')!r}"
            )
        version = payload.get("format_version")
        if version != SPEC_FORMAT_VERSION:
            raise ValueError(
                f"unsupported spec format version {version} "
                f"(supported: {SPEC_FORMAT_VERSION})"
            )
        return cls(
            topology=str(payload["topology"]),
            floors=int(payload["floors"]),
            rows=int(payload["rows"]),
            cols=int(payload["cols"]),
            floor_width_m=float(payload["floor_width_m"]),
            floor_height_m=float(payload["floor_height_m"]),
            n_aps=int(payload["n_aps"]),
            placement=str(payload["placement"]),
            ap_clusters=int(payload["ap_clusters"]),
            name=str(payload["name"]),
        )


# ----------------------------------------------------------------------
# Topology builders
# ----------------------------------------------------------------------
#
# Each builder returns (locations, edges, walls, floor_bands): the
# reference locations with globally unique ids, the walkable hops, the
# interior walls, and per-floor (y_min, y_max) bands.  Geometry is pure
# arithmetic on the spec — the rng is reserved for placement policies —
# so regeneration is trivially bitwise.


_Built = Tuple[
    List[ReferenceLocation],
    List[Tuple[int, int]],
    List[Segment],
    List[Tuple[float, float]],
]


def _grid_points(
    rows: int, cols: int, width: float, height: float, y_base: float
) -> Dict[Tuple[int, int], Point]:
    """Row-major grid positions with half-step margins; row 0 at the top."""
    x_margin = width / (2.0 * cols)
    y_margin = height / (2.0 * rows)
    x_step = (width - 2.0 * x_margin) / max(cols - 1, 1)
    y_step = (height - 2.0 * y_margin) / max(rows - 1, 1)
    return {
        (row, col): Point(
            x_margin + col * x_step,
            y_base + (height - y_margin) - row * y_step,
        )
        for row in range(rows)
        for col in range(cols)
    }


def _slab_wall(
    y: float, width: float, openings: Sequence[float]
) -> List[Segment]:
    """A full-width horizontal wall broken by gaps around ``openings``."""
    segments: List[Segment] = []
    cursor = 0.0
    for x in sorted(openings):
        left = x - _STAIR_GAP_HALF_WIDTH_M
        right = x + _STAIR_GAP_HALF_WIDTH_M
        if left > cursor:
            segments.append(Segment(Point(cursor, y), Point(left, y)))
        cursor = max(cursor, right)
    if cursor < width:
        segments.append(Segment(Point(cursor, y), Point(width, y)))
    return segments


def _build_tower(spec: EnvironmentSpec) -> _Built:
    """Stacked open floors; stairs (col 0) and elevators (last col) link them.

    Floor ``f`` occupies the y band ``[f*H, (f+1)*H)``; slab walls at the
    band boundaries attenuate radio between floors, with openings at the
    stair and elevator columns so the inter-floor hops keep line of
    sight.  Location ids are floor-major then row-major, floor 0 at the
    bottom of the plan, row 0 at the top of each floor band.
    """
    rows, cols = spec.rows, spec.cols
    width, height = spec.floor_width_m, spec.floor_height_m
    locations: List[ReferenceLocation] = []
    edges: List[Tuple[int, int]] = []
    walls: List[Segment] = []
    bands: List[Tuple[float, float]] = []

    def location_id(floor: int, row: int, col: int) -> int:
        return floor * rows * cols + row * cols + col + 1

    stair_col, elevator_col = 0, cols - 1
    stair_xs: List[float] = []
    for floor in range(spec.floors):
        y_base = floor * height
        bands.append((y_base, y_base + height))
        points = _grid_points(rows, cols, width, height, y_base)
        if floor == 0:
            stair_xs = [points[(0, stair_col)].x, points[(0, elevator_col)].x]
        for (row, col), position in sorted(points.items()):
            locations.append(ReferenceLocation(location_id(floor, row, col), position))
        for row in range(rows):
            for col in range(cols):
                if col + 1 < cols:
                    edges.append(
                        (location_id(floor, row, col), location_id(floor, row, col + 1))
                    )
                if row + 1 < rows:
                    edges.append(
                        (location_id(floor, row, col), location_id(floor, row + 1, col))
                    )
        if floor + 1 < spec.floors:
            # Stairs and elevator join the top row of this floor band to
            # the bottom row of the band above, straight across the slab.
            edges.append(
                (
                    location_id(floor, 0, stair_col),
                    location_id(floor + 1, rows - 1, stair_col),
                )
            )
            edges.append(
                (
                    location_id(floor, 0, elevator_col),
                    location_id(floor + 1, rows - 1, elevator_col),
                )
            )
            walls.extend(_slab_wall((floor + 1) * height, width, stair_xs))
    return locations, edges, walls, bands


def _build_mall(spec: EnvironmentSpec) -> _Built:
    """Two anchor corridors with shop stubs and kiosk medians.

    Row bands top to bottom: north shops, north corridor, south corridor,
    south shops.  Corridors run the full length; the two corridors join
    only at cross-aisle columns (every third column plus both ends),
    kiosk median walls blocking the rest.  Shops hang off their corridor
    and are walled off from their neighbors.
    """
    cols = spec.cols
    width, height = spec.floor_width_m, spec.floor_height_m
    points = _grid_points(4, cols, width, height, 0.0)

    def location_id(row: int, col: int) -> int:
        return row * cols + col + 1

    locations = [
        ReferenceLocation(location_id(row, col), points[(row, col)])
        for row in range(4)
        for col in range(cols)
    ]
    cross_cols = {0, cols - 1} | {c for c in range(cols) if c % 3 == 0}
    edges: List[Tuple[int, int]] = []
    for col in range(cols):
        edges.append((location_id(0, col), location_id(1, col)))  # shop stub
        edges.append((location_id(2, col), location_id(3, col)))  # shop stub
        if col in cross_cols:
            edges.append((location_id(1, col), location_id(2, col)))
        if col + 1 < cols:
            edges.append((location_id(1, col), location_id(1, col + 1)))
            edges.append((location_id(2, col), location_id(2, col + 1)))

    x_step = (width - width / cols) / max(cols - 1, 1)
    walls: List[Segment] = []
    # Kiosk medians between the corridors on non-crossing columns.
    y_median = height / 2.0
    for col in range(cols):
        if col in cross_cols:
            continue
        x = points[(1, col)].x
        half = min(x_step, width / cols) / 2.0 - _WALL_CLEARANCE_M
        if half > 0:
            walls.append(
                Segment(Point(x - half, y_median), Point(x + half, y_median))
            )
    # Shop dividers between horizontally adjacent shops, clear of stubs.
    for row, (y_lo, y_hi) in (
        (0, (points[(0, 0)].y + _WALL_CLEARANCE_M, height)),
        (3, (0.0, points[(3, 0)].y - _WALL_CLEARANCE_M)),
    ):
        for col in range(cols - 1):
            x = (points[(row, col)].x + points[(row, col + 1)].x) / 2.0
            walls.append(Segment(Point(x, y_lo), Point(x, y_hi)))
    return locations, edges, walls, [(0.0, height)]


def _build_warehouse(spec: EnvironmentSpec) -> _Built:
    """Racking aisles: tall vertical corridors, cross-aisles at the ends.

    Every column is walkable top to bottom; horizontal hops exist only on
    the first and last rows.  Racking walls run between adjacent columns
    across the interior rows, so mid-rack neighbors are radio-occluded
    and geographically close yet many hops apart — prime twin geometry.
    """
    rows, cols = spec.rows, spec.cols
    width, height = spec.floor_width_m, spec.floor_height_m
    points = _grid_points(rows, cols, width, height, 0.0)

    def location_id(row: int, col: int) -> int:
        return row * cols + col + 1

    locations = [
        ReferenceLocation(location_id(row, col), points[(row, col)])
        for row in range(rows)
        for col in range(cols)
    ]
    edges: List[Tuple[int, int]] = []
    for row in range(rows):
        for col in range(cols):
            if row + 1 < rows:
                edges.append((location_id(row, col), location_id(row + 1, col)))
            if col + 1 < cols and row in (0, rows - 1):
                edges.append((location_id(row, col), location_id(row, col + 1)))
    walls: List[Segment] = []
    y_top = points[(0, 0)].y - _WALL_CLEARANCE_M
    y_bottom = points[(rows - 1, 0)].y + _WALL_CLEARANCE_M
    for col in range(cols - 1):
        x = (points[(0, col)].x + points[(0, col + 1)].x) / 2.0
        walls.append(Segment(Point(x, y_bottom), Point(x, y_top)))
    return locations, edges, walls, [(0.0, height)]


def _build_stadium(spec: EnvironmentSpec) -> _Built:
    """Concentric concourse rings joined by radial hops at four gates.

    Ring ``r`` (0 = outermost) carries ``cols`` locations on a circle;
    along-ring hops close the loop, and radial hops at the four gate
    bearings connect consecutive rings.  Short stand walls sit between
    rings midway between gates, clear of every hop chord.
    """
    rings, per_ring = spec.rows, spec.cols
    width, height = spec.floor_width_m, spec.floor_height_m
    center = Point(width / 2.0, height / 2.0)
    outer_radius = min(width, height) / 2.0 - 2.0 * _WALL_CLEARANCE_M
    inner_radius = outer_radius / (rings + 1.0)
    radius_step = (outer_radius - inner_radius) / max(rings - 1, 1)

    def location_id(ring: int, slot: int) -> int:
        return ring * per_ring + slot + 1

    def position(ring: int, slot: int) -> Point:
        radius = outer_radius - ring * radius_step
        angle = 2.0 * math.pi * slot / per_ring
        return Point(
            center.x + radius * math.cos(angle),
            center.y + radius * math.sin(angle),
        )

    locations = [
        ReferenceLocation(location_id(ring, slot), position(ring, slot))
        for ring in range(rings)
        for slot in range(per_ring)
    ]
    gate_slots = [0, per_ring // 4, per_ring // 2, (3 * per_ring) // 4]
    edges: List[Tuple[int, int]] = []
    for ring in range(rings):
        for slot in range(per_ring):
            edges.append(
                (location_id(ring, slot), location_id(ring, (slot + 1) % per_ring))
            )
        if ring + 1 < rings:
            for slot in gate_slots:
                edges.append((location_id(ring, slot), location_id(ring + 1, slot)))

    # Stand walls between rings, centered between gates.  A chord of the
    # ring at radius R stays outside radius R*cos(pi/n), so wall geometry
    # confined to radii in (R_inner_ring, R_outer * cos(pi/n)) crosses no
    # along-ring hop.  Each wall is an arc approximated by sub-chords
    # short enough that their sagitta never dips below that band, and its
    # angular span covers only the middle of the gate-to-gate gap so the
    # radial gate hops stay clear.
    walls: List[Segment] = []
    chord_floor = math.cos(math.pi / per_ring)
    gate_angles = [2.0 * math.pi * slot / per_ring for slot in gate_slots]
    for ring in range(rings - 1):
        r_outer = outer_radius - ring * radius_step
        r_inner = r_outer - radius_step
        upper = r_outer * chord_floor - _WALL_CLEARANCE_M
        lower = r_inner + _WALL_CLEARANCE_M
        if upper <= lower:
            continue  # rings too tight for a wall here
        wall_radius = (lower + upper) / 2.0
        max_half_chord = math.acos(min(1.0, lower / wall_radius))
        for gate_index in range(4):
            a_start = gate_angles[gate_index]
            a_end = gate_angles[(gate_index + 1) % 4]
            if gate_index == 3:
                a_end += 2.0 * math.pi
            gap = a_end - a_start
            half_span = min(math.pi / 8.0, 0.3 * gap)
            if half_span <= 0.0 or max_half_chord <= 0.0:
                continue
            pieces = max(1, math.ceil(half_span / max_half_chord))
            mid = a_start + gap / 2.0
            cuts = [
                mid - half_span + 2.0 * half_span * k / pieces
                for k in range(pieces + 1)
            ]
            for a0, a1 in zip(cuts, cuts[1:]):
                walls.append(
                    Segment(
                        Point(
                            center.x + wall_radius * math.cos(a0),
                            center.y + wall_radius * math.sin(a0),
                        ),
                        Point(
                            center.x + wall_radius * math.cos(a1),
                            center.y + wall_radius * math.sin(a1),
                        ),
                    )
                )
    return locations, edges, walls, [(0.0, height)]


def _build_corridor(spec: EnvironmentSpec) -> _Built:
    """A serpentine corridor: horizontal runs joined at alternating ends.

    Run ``r`` is a row of ``cols`` locations; runs connect at the right
    end for even rows and the left end for odd rows, and dividing walls
    fill the rest of each inter-run boundary.  The geodesic between
    mid-run locations on adjacent runs is long even though they are
    meters apart — corridor twins.
    """
    rows, cols = spec.rows, spec.cols
    width, height = spec.floor_width_m, spec.floor_height_m
    points = _grid_points(rows, cols, width, height, 0.0)

    def location_id(row: int, col: int) -> int:
        return row * cols + col + 1

    locations = [
        ReferenceLocation(location_id(row, col), points[(row, col)])
        for row in range(rows)
        for col in range(cols)
    ]
    edges: List[Tuple[int, int]] = []
    for row in range(rows):
        for col in range(cols - 1):
            edges.append((location_id(row, col), location_id(row, col + 1)))
        if row + 1 < rows:
            turn_col = cols - 1 if row % 2 == 0 else 0
            edges.append((location_id(row, turn_col), location_id(row + 1, turn_col)))
    walls: List[Segment] = []
    for row in range(rows - 1):
        y = (points[(row, 0)].y + points[(row + 1, 0)].y) / 2.0
        turn_col = cols - 1 if row % 2 == 0 else 0
        turn_x = points[(row, turn_col)].x
        if turn_col == cols - 1:
            walls.append(Segment(Point(0.0, y), Point(turn_x - _STAIR_GAP_HALF_WIDTH_M, y)))
        else:
            walls.append(Segment(Point(turn_x + _STAIR_GAP_HALF_WIDTH_M, y), Point(width, y)))
    return locations, edges, walls, [(0.0, height)]


_TOPOLOGY_BUILDERS: Dict[str, Callable[[EnvironmentSpec], _Built]] = {
    "tower": _build_tower,
    "mall": _build_mall,
    "warehouse": _build_warehouse,
    "stadium": _build_stadium,
    "corridor": _build_corridor,
}


# ----------------------------------------------------------------------
# AP placement policies
# ----------------------------------------------------------------------


PlacementPolicy = Callable[
    [EnvironmentSpec, float, float, List[Tuple[float, float]], np.random.Generator],
    List[Point],
]
"""``(spec, width, height, floor_bands, rng) -> n_aps mount positions``."""


def _inset_bounds(width: float, height: float, inset: float = 1.0):
    inset = min(inset, width / 4.0, height / 4.0)
    return inset, width - inset, inset, height - inset


def _place_grid(
    spec: EnvironmentSpec,
    width: float,
    height: float,
    bands: List[Tuple[float, float]],
    rng: np.random.Generator,
) -> List[Point]:
    """A near-square coverage lattice across the whole plan."""
    n = spec.n_aps
    nx = max(1, int(math.ceil(math.sqrt(n * width / height))))
    ny = max(1, int(math.ceil(n / nx)))
    positions = []
    for index in range(n):
        gx, gy = index % nx, index // nx
        positions.append(
            Point((gx + 0.5) * width / nx, (gy % ny + 0.5) * height / ny)
        )
    return positions


def _place_perimeter(
    spec: EnvironmentSpec,
    width: float,
    height: float,
    bands: List[Tuple[float, float]],
    rng: np.random.Generator,
) -> List[Point]:
    """Evenly spaced mounts along the (inset) outer walls of each floor."""
    positions: List[Point] = []
    per_band = _split_counts(spec.n_aps, len(bands))
    for (y_lo, y_hi), count in zip(bands, per_band):
        if count == 0:
            continue
        x0, x1, _, _ = _inset_bounds(width, y_hi - y_lo)
        y0, y1 = y_lo + (x0), y_hi - (x0)  # same inset on y
        corners = [
            Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1)
        ]
        perimeter = 2.0 * ((x1 - x0) + (y1 - y0))
        for k in range(count):
            distance = perimeter * k / count
            positions.append(_walk_rectangle(corners, distance))
    return positions


def _walk_rectangle(corners: List[Point], distance: float) -> Point:
    """The point ``distance`` meters along the rectangle's boundary."""
    for start, end in zip(corners, corners[1:] + corners[:1]):
        side = start.distance_to(end)
        if distance <= side or side == 0.0:
            t = 0.0 if side == 0.0 else distance / side
            return Point(
                start.x + t * (end.x - start.x), start.y + t * (end.y - start.y)
            )
        distance -= side
    return corners[0]


def _place_clustered(
    spec: EnvironmentSpec,
    width: float,
    height: float,
    bands: List[Tuple[float, float]],
    rng: np.random.Generator,
) -> List[Point]:
    """APs huddled around seeded cluster centers (dense-office pathology)."""
    x0, x1, y0, y1 = _inset_bounds(width, height)
    centers = [
        Point(float(rng.uniform(x0, x1)), float(rng.uniform(y0, y1)))
        for _ in range(spec.ap_clusters)
    ]
    positions = []
    for index in range(spec.n_aps):
        center = centers[index % len(centers)]
        x = min(max(center.x + float(rng.normal(0.0, 2.0)), x0), x1)
        y = min(max(center.y + float(rng.normal(0.0, 2.0)), y0), y1)
        positions.append(Point(x, y))
    return positions


def _place_sparse_adversarial(
    spec: EnvironmentSpec,
    width: float,
    height: float,
    bands: List[Tuple[float, float]],
    rng: np.random.Generator,
) -> List[Point]:
    """Every AP on each floor's horizontal symmetry axis.

    The paper's twin-manufacturing geometry (Fig. 1 scaled up): locations
    mirrored about the axis are nearly equidistant from every AP and
    receive near-identical fingerprints.
    """
    positions: List[Point] = []
    per_band = _split_counts(spec.n_aps, len(bands))
    for (y_lo, y_hi), count in zip(bands, per_band):
        axis = (y_lo + y_hi) / 2.0
        for k in range(count):
            positions.append(Point(width * (k + 0.5) / count, axis))
    return positions


def _split_counts(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` near-equal counts, earlier-first."""
    base, extra = divmod(total, parts)
    return [base + (1 if index < extra else 0) for index in range(parts)]


PLACEMENT_POLICIES: Dict[str, PlacementPolicy] = {
    "grid": _place_grid,
    "perimeter": _place_perimeter,
    "clustered": _place_clustered,
    "sparse-adversarial": _place_sparse_adversarial,
}
"""The registered AP placement policies, extensible via
:func:`register_placement_policy`."""


def register_placement_policy(name: str, policy: PlacementPolicy) -> None:
    """Register a custom AP placement policy under ``name``.

    The policy is called as ``policy(spec, width, height, floor_bands,
    rng)`` and must return exactly ``spec.n_aps`` in-bounds positions.
    Registering an existing name raises; policies are global, so tests
    should clean up after themselves.
    """
    if name in PLACEMENT_POLICIES:
        raise ValueError(f"placement policy {name!r} is already registered")
    PLACEMENT_POLICIES[name] = policy


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratedEnvironment:
    """One generated world plus its provenance.

    Attributes:
        spec: The spec it was generated from.
        seed: The seed it was generated from.
        hall: The assembled plan + walkable graph, drop-in wherever the
            paper's :func:`~repro.env.office_hall.office_hall` is used.
        floor_bands: Per-floor ``(y_min, y_max)`` bands of the plan.
    """

    spec: EnvironmentSpec
    seed: int
    hall: OfficeHall
    floor_bands: Tuple[Tuple[float, float], ...]

    @property
    def plan(self) -> FloorPlan:
        """The generated floor plan."""
        return self.hall.plan

    @property
    def graph(self) -> WalkableGraph:
        """The generated walkable graph."""
        return self.hall.graph


def generate_environment(
    spec: EnvironmentSpec, seed: int = 0
) -> GeneratedEnvironment:
    """Generate one environment, bitwise-reproducible from ``(seed, spec)``.

    Topology geometry is pure arithmetic on the spec; the seeded rng
    drives only the placement policy (cluster centers, jitter), so two
    calls with equal arguments produce plans that serialize identically.

    Raises:
        ValueError: if the placement policy returns the wrong number of
            mounts or places one outside the plan bounds.
    """
    builder = _TOPOLOGY_BUILDERS[spec.topology]
    locations, edges, walls, bands = builder(spec)
    width = spec.floor_width_m
    height = bands[-1][1]

    rng = np.random.default_rng([seed, _placement_stream(spec)])
    ap_positions = PLACEMENT_POLICIES[spec.placement](
        spec, width, height, list(bands), rng
    )
    if len(ap_positions) != spec.n_aps:
        raise ValueError(
            f"placement policy {spec.placement!r} returned "
            f"{len(ap_positions)} mounts for n_aps={spec.n_aps}"
        )
    for position in ap_positions:
        if not (0.0 <= position.x <= width and 0.0 <= position.y <= height):
            raise ValueError(
                f"placement policy {spec.placement!r} put an AP at "
                f"{position}, outside the {width:g}m x {height:g}m bounds"
            )

    plan = FloorPlan(
        width=width,
        height=height,
        reference_locations=locations,
        walls=walls,
        ap_positions=ap_positions,
        name=spec.display_name,
    )
    graph = WalkableGraph(plan, edges, validate_line_of_sight=True)
    return GeneratedEnvironment(
        spec=spec, seed=seed, hall=OfficeHall(plan=plan, graph=graph),
        floor_bands=tuple(bands),
    )


def _placement_stream(spec: EnvironmentSpec) -> int:
    """A stable sub-stream id derived from the spec, so different specs
    at the same seed draw uncorrelated placement randomness."""
    digest = hashlib.blake2b(
        json.dumps(spec.to_dict(), sort_keys=True).encode(), digest_size=4
    )
    return int.from_bytes(digest.digest(), "big")


def environment_checksum(environment: GeneratedEnvironment) -> str:
    """A bit-level fingerprint of a generated world.

    Covers the serialized plan (float repr round-trips bit-exactly
    through JSON) and the sorted edge list; two environments agree on
    the checksum iff they serialize identically.
    """
    from ..io.serialize import floorplan_to_dict, graph_to_dict

    payload = {
        "floorplan": floorplan_to_dict(environment.plan),
        "graph": graph_to_dict(environment.graph),
        "spec": environment.spec.to_dict(),
        "seed": environment.seed,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
