"""The paper's experimental environment (Fig. 5): a 40.8 m x 16 m office hall.

The hall holds 28 reference locations laid out on a 4-row x 7-column grid
(IDs 1..7 on the top row through 22..28 on the bottom row, matching the
paper's numbering), interior partition boards and shelving that attenuate
radio and block two of the vertical aisles, and six sparsely placed access
points.

AP placement is the lever that manufactures *fingerprint twins*: the first
four APs sit (approximately) along the horizontal center line of the hall,
so locations mirrored about that line are nearly equidistant from all four
and receive near-identical fingerprints — the geometry of the paper's
Fig. 1 scaled up.  APs five and six sit off the center line and partially
break the symmetry, which is why accuracy improves with AP count for both
MoLoc and the WiFi baseline (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .floorplan import FloorPlan, ReferenceLocation
from .geometry import Point, Segment
from .graph import WalkableGraph

__all__ = ["OfficeHall", "office_hall", "GRID_ROWS", "GRID_COLS"]

GRID_ROWS = 4
GRID_COLS = 7

_WIDTH = 40.8
_HEIGHT = 16.0
_X_MARGIN = 3.4
_Y_MARGIN = 2.0

# Vertical aisle hops blocked by partition boards (geographically adjacent
# but not walkable — the consistency-principle example of Sec. IV-A).
_BLOCKED_VERTICAL_HOPS: Tuple[Tuple[int, int], ...] = ((10, 17), (12, 19))

# Six AP mount positions; experiments use the first 4, 5, or 6.
_AP_POSITIONS: Tuple[Point, ...] = (
    Point(6.0, 8.0),
    Point(34.8, 8.0),
    Point(16.0, 8.5),
    Point(25.0, 7.5),
    Point(10.0, 14.0),
    Point(31.0, 2.0),
)


@dataclass(frozen=True)
class OfficeHall:
    """The assembled paper environment: floor plan plus walkable aisle graph."""

    plan: FloorPlan
    graph: WalkableGraph


def _grid_positions() -> List[ReferenceLocation]:
    """The 28 reference locations: row-major IDs, row 1 at the top (large y)."""
    x_step = (_WIDTH - 2 * _X_MARGIN) / (GRID_COLS - 1)
    y_step = (_HEIGHT - 2 * _Y_MARGIN) / (GRID_ROWS - 1)
    locations = []
    for row in range(GRID_ROWS):
        for col in range(GRID_COLS):
            location_id = row * GRID_COLS + col + 1
            x = _X_MARGIN + col * x_step
            y = (_HEIGHT - _Y_MARGIN) - row * y_step
            locations.append(ReferenceLocation(location_id, Point(x, y)))
    return locations


def _partition_walls() -> List[Segment]:
    """Interior partition boards, shelving, and columns.

    Two partition boards sit across the vertical aisles they block (between
    locations 10-17 and 12-19); the remaining segments are shelving placed
    inside grid cells, clear of every open aisle, so they attenuate radio
    without invalidating walkable hops.
    """
    walls = [
        # Partition boards blocking the two vertical hops in
        # _BLOCKED_VERTICAL_HOPS.  Location 10 is at x ~ 14.73, 12 at ~ 26.07.
        Segment(Point(12.0, 8.0), Point(17.4, 8.0)),
        Segment(Point(23.3, 8.0), Point(28.8, 8.0)),
        # Shelving units inside cells (vertical segments between aisles).
        Segment(Point(6.2, 10.8), Point(6.2, 13.2)),
        Segment(Point(17.6, 2.8), Point(17.6, 5.2)),
        Segment(Point(29.0, 10.8), Point(29.0, 13.2)),
        Segment(Point(34.7, 2.8), Point(34.7, 5.2)),
        # Structural columns, modelled as short cross segments.
        Segment(Point(11.8, 11.6), Point(12.4, 12.4)),
        Segment(Point(28.4, 3.6), Point(29.0, 4.4)),
    ]
    return walls


def _aisle_edges() -> List[Tuple[int, int]]:
    """Grid adjacency minus the partition-blocked vertical hops."""
    blocked = {tuple(sorted(pair)) for pair in _BLOCKED_VERTICAL_HOPS}
    edges = []
    for row in range(GRID_ROWS):
        for col in range(GRID_COLS):
            location_id = row * GRID_COLS + col + 1
            if col + 1 < GRID_COLS:
                edges.append((location_id, location_id + 1))
            if row + 1 < GRID_ROWS:
                vertical = (location_id, location_id + GRID_COLS)
                if tuple(sorted(vertical)) not in blocked:
                    edges.append(vertical)
    return edges


def office_hall() -> OfficeHall:
    """Build the paper's office-hall environment.

    Returns:
        An :class:`OfficeHall` whose plan spans 40.8 m x 16 m with 28
        reference locations and 6 AP sites, and whose aisle graph is the
        4x7 grid with two partition-blocked vertical hops removed.
    """
    plan = FloorPlan(
        width=_WIDTH,
        height=_HEIGHT,
        reference_locations=_grid_positions(),
        walls=_partition_walls(),
        ap_positions=_AP_POSITIONS,
        name="ICDCS'13 office hall",
    )
    graph = WalkableGraph(plan, _aisle_edges(), validate_line_of_sight=True)
    return OfficeHall(plan=plan, graph=graph)
