"""Environment substrate: geometry, floor plans, and walkable aisle graphs."""

from .builders import grid_floorplan
from .floorplan import FloorPlan, ReferenceLocation
from .geometry import (
    Point,
    Segment,
    bearing_between,
    bearing_difference,
    circular_mean,
    circular_std,
    normalize_bearing,
    polyline_length,
    reverse_bearing,
    segments_intersect,
)
from .graph import WalkableGraph
from .office_hall import GRID_COLS, GRID_ROWS, OfficeHall, office_hall
from .procedural import (
    PLACEMENT_POLICIES,
    TOPOLOGIES,
    EnvironmentSpec,
    GeneratedEnvironment,
    environment_checksum,
    generate_environment,
    register_placement_policy,
)
from .render import render_floorplan

__all__ = [
    "Point",
    "Segment",
    "bearing_between",
    "bearing_difference",
    "circular_mean",
    "circular_std",
    "normalize_bearing",
    "polyline_length",
    "reverse_bearing",
    "segments_intersect",
    "FloorPlan",
    "ReferenceLocation",
    "WalkableGraph",
    "OfficeHall",
    "office_hall",
    "GRID_ROWS",
    "GRID_COLS",
    "render_floorplan",
    "grid_floorplan",
    "TOPOLOGIES",
    "PLACEMENT_POLICIES",
    "EnvironmentSpec",
    "GeneratedEnvironment",
    "generate_environment",
    "register_placement_policy",
    "environment_checksum",
]
