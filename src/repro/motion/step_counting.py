"""Step detection and counting: DSC and CSC (paper Sec. IV-B1).

The walked distance during a localization interval is step count times
step length.  The paper contrasts two counters:

* **Discrete Step Counting (DSC)** — the prior art: count detected step
  peaks.  It loses the *odd time* (the fractions of a step before the
  first detected peak and after the last one), which matters when an
  interval only contains a handful of steps.
* **Continuous Step Counting (CSC)** — the paper's refinement: estimate
  the step period from the detected peaks, convert the odd time into
  *decimal steps*, and add them to the integral count.

Both operate on the accelerometer-magnitude signal of
:mod:`repro.sensors.accelerometer`.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy.signal import find_peaks

from ..sensors.accelerometer import GRAVITY, AccelSignal

__all__ = [
    "detect_step_times",
    "is_walking",
    "count_steps_dsc",
    "count_steps_csc",
]

_MIN_STEP_SEPARATION_S = 0.3
"""No human walks faster than one step per 0.3 s; peaks closer are noise."""

_WALK_STD_THRESHOLD = 1.0
"""Signal standard deviation above which the user is considered walking."""


def is_walking(signal: AccelSignal) -> bool:
    """Whether the signal shows the oscillation of walking (Sec. IV-B1).

    Idle accelerometer noise is a few tenths of m/s^2; walking swings
    several m/s^2 around gravity, so a variance test separates them.
    """
    if len(signal.samples) == 0:
        return False
    return float(np.std(signal.samples)) > _WALK_STD_THRESHOLD


def detect_step_times(signal: AccelSignal) -> List[float]:
    """Detected step (peak) instants, in seconds from signal start.

    Peaks are local maxima above an adaptive threshold (midway between
    the signal mean and its maximum) separated by at least the minimum
    human step interval; each peak time is refined by parabolic
    interpolation for sub-sample accuracy, which CSC's period estimate
    benefits from.
    """
    samples = signal.samples
    if len(samples) < 3 or not is_walking(signal):
        return []
    threshold = float(samples.mean()) + 0.4 * float(samples.max() - samples.mean())
    min_distance = max(int(_MIN_STEP_SEPARATION_S * signal.rate_hz), 1)
    indices, _ = find_peaks(samples, height=threshold, distance=min_distance)

    times = []
    for idx in indices:
        refined = float(idx)
        if 0 < idx < len(samples) - 1:
            left, mid, right = samples[idx - 1], samples[idx], samples[idx + 1]
            denominator = left - 2.0 * mid + right
            if abs(denominator) > 1e-9:
                shift = 0.5 * (left - right) / denominator
                refined = idx + float(np.clip(shift, -0.5, 0.5))
        times.append(refined / signal.rate_hz)
    return times


def count_steps_dsc(signal: AccelSignal) -> float:
    """Discrete step count: the number of detected step peaks."""
    return float(len(detect_step_times(signal)))


def count_steps_csc(signal: AccelSignal) -> float:
    """Continuous step count: integral steps plus decimal odd-time steps.

    With peaks at ``t_1 < ... < t_n`` in an interval of duration ``D``,
    the step period is ``(t_n - t_1) / (n - 1)``; the odd time
    ``t_1 + (D - t_n)`` is divided by the period to recover the decimal
    steps the discrete counter drops, giving

        steps = (n - 1) + odd_time / period.

    For a walker of perfectly constant cadence this recovers ``D / period``
    exactly, independent of where the first heel strike fell.
    """
    times = detect_step_times(signal)
    if len(times) < 2:
        return float(len(times))
    first, last = times[0], times[-1]
    integral_intervals = len(times) - 1
    period = (last - first) / integral_intervals
    odd_time = first + (signal.duration_s - last)
    return integral_intervals + odd_time / period
