"""Online step-length personalization.

The height/weight heuristic (paper ref. [25]) seeds a user's step
length, but real gaits deviate a few percent — a systematic offset error
in every motion measurement.  Once MoLoc is running, every confident
pair of consecutive fixes provides a free calibration sample: the motion
database knows the true hop distance between the two locations, and the
step counter knows how many steps the user took.  Their ratio is the
user's actual step length.

:class:`StepLengthEstimator` maintains a confidence-gated exponential
moving average of those samples, with a plausibility window so a
mislocalized pair cannot inject an absurd stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepLengthEstimator"]

_MIN_PLAUSIBLE_M = 0.4
_MAX_PLAUSIBLE_M = 1.1


@dataclass
class StepLengthEstimator:
    """Confidence-gated EMA of a user's step length.

    Attributes:
        step_length_m: The current estimate (seeded from height/weight).
        learning_rate: EMA weight of a new calibration sample.
        confidence_threshold: Minimum fix confidence for a sample.
        min_steps: Hops with fewer counted steps are ignored (too little
            signal per sample).
    """

    step_length_m: float
    learning_rate: float = 0.15
    confidence_threshold: float = 0.9
    min_steps: float = 3.0
    _samples_accepted: int = field(default=0, repr=False)
    _samples_rejected: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not _MIN_PLAUSIBLE_M <= self.step_length_m <= _MAX_PLAUSIBLE_M:
            raise ValueError(
                f"initial step length {self.step_length_m} is implausible"
            )
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning rate must be in (0, 1]")
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ValueError("confidence threshold must be in [0, 1]")
        if self.min_steps <= 0:
            raise ValueError("min_steps must be positive")

    def state_dict(self) -> dict:
        """The mutable personalization state (JSON-compatible).

        The gate parameters are construction-time configuration; only
        the learned step length and the sample tallies move.
        """
        return {
            "step_length_m": self.step_length_m,
            "samples_accepted": self._samples_accepted,
            "samples_rejected": self._samples_rejected,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.step_length_m = float(state["step_length_m"])
        self._samples_accepted = int(state["samples_accepted"])
        self._samples_rejected = int(state["samples_rejected"])

    @property
    def samples_accepted(self) -> int:
        """Calibration samples that updated the estimate."""
        return self._samples_accepted

    @property
    def samples_rejected(self) -> int:
        """Calibration samples rejected by the gates."""
        return self._samples_rejected

    def observe_hop(
        self, hop_distance_m: float, counted_steps: float, confidence: float
    ) -> bool:
        """Feed back one confirmed hop.

        Args:
            hop_distance_m: Known distance between the two confirmed
                locations (from the motion database's offset mean).
            counted_steps: Steps the counter reported for the hop.
            confidence: Confidence of the end fix.

        Returns:
            Whether the sample was accepted.

        Raises:
            ValueError: for non-positive distance.
        """
        if hop_distance_m <= 0:
            raise ValueError(f"hop distance must be positive, got {hop_distance_m}")
        if (
            confidence < self.confidence_threshold
            or counted_steps < self.min_steps
        ):
            self._samples_rejected += 1
            return False
        sample = hop_distance_m / counted_steps
        if not _MIN_PLAUSIBLE_M <= sample <= _MAX_PLAUSIBLE_M:
            self._samples_rejected += 1
            return False
        self.step_length_m = (
            (1.0 - self.learning_rate) * self.step_length_m
            + self.learning_rate * sample
        )
        self._samples_accepted += 1
        return True
