"""Gyroscope-aided heading estimation with a Kalman filter.

Implements the paper's future-work suggestion (Sec. IV-B2): fuse the
gyroscope (precise short-term *relative* heading) with the compass
(drift-free but disturbance-prone *absolute* heading) in a 1-D Kalman
filter over the heading angle.

Per IMU sample:

* **predict** — integrate the gyro rate into the heading state; the
  state covariance grows by the gyro noise (plus a drift allowance for
  its bias);
* **update** — correct with the compass reading, weighted by the
  compass measurement variance — but only if the innovation passes a
  chi-square gate.  A compass reading tens of degrees away from where
  the gyro says the heading must be is a magnetic disturbance, not
  information, and is discarded (the standard disturbance-rejection
  trick in pedestrian heading filters).

Because the gyro pins the *relative* heading precisely, transient
magnetic disturbances are gated out entirely, while a genuine turn —
reported by the gyro during prediction — keeps innovations small and
compass updates flowing.

All angles are processed as *unwrapped* relative headings around the
first compass reading, so the 0/360 seam is handled once at entry/exit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..env.geometry import normalize_bearing
from ..sensors.imu import ImuSegment

__all__ = ["KalmanHeadingFilter", "fused_course_from_segment"]


@dataclass
class KalmanHeadingFilter:
    """A 1-D Kalman filter over the heading angle.

    Attributes:
        gyro_noise_dps: Standard deviation of per-sample gyro rate noise.
        gyro_bias_dps: Allowance for uncompensated gyro bias (inflates
            process noise so the filter never fully trusts integration).
        compass_noise_deg: Standard deviation of a single compass reading
            in an undisturbed field.
        gate_sigma: Innovation gate: compass updates whose innovation
            exceeds this many innovation standard deviations are rejected
            as magnetic disturbances.
        max_consecutive_rejections: After this many rejected updates in a
            row the next update is force-accepted, so the filter cannot
            diverge permanently if the *environment* (not a transient)
            changed.
    """

    gyro_noise_dps: float = 0.5
    gyro_bias_dps: float = 0.2
    compass_noise_deg: float = 5.0
    gate_sigma: float = 3.0
    max_consecutive_rejections: int = 25

    def __post_init__(self) -> None:
        if self.gyro_noise_dps <= 0 or self.compass_noise_deg <= 0:
            raise ValueError("noise magnitudes must be positive")
        if self.gyro_bias_dps < 0:
            raise ValueError("gyro bias allowance must be non-negative")
        if self.gate_sigma <= 0:
            raise ValueError("gate_sigma must be positive")
        if self.max_consecutive_rejections < 1:
            raise ValueError("max_consecutive_rejections must be >= 1")

    def smooth(
        self,
        compass_deg: Sequence[float],
        gyro_rates_dps: Sequence[float],
        rate_hz: float,
    ) -> np.ndarray:
        """Filtered headings, one per sample, in ``[0, 360)``.

        Args:
            compass_deg: Raw compass readings.
            gyro_rates_dps: Gyroscope rates, same length.
            rate_hz: Common sampling rate.

        Raises:
            ValueError: on empty or mismatched inputs or bad rate.
        """
        compass = np.asarray(compass_deg, dtype=float)
        gyro = np.asarray(gyro_rates_dps, dtype=float)
        if compass.size == 0:
            raise ValueError("cannot filter an empty stream")
        if compass.shape != gyro.shape:
            raise ValueError(
                f"stream lengths differ: {compass.shape} vs {gyro.shape}"
            )
        if rate_hz <= 0:
            raise ValueError(f"rate must be positive, got {rate_hz}")

        dt = 1.0 / rate_hz
        # Unwrap compass readings relative to the first one so the filter
        # works on a continuous variable.
        reference = compass[0]
        relative = np.array(
            [_signed_delta(c, reference) for c in compass]
        )

        measurement_var = self.compass_noise_deg**2
        process_var = (self.gyro_noise_dps * dt) ** 2 + (
            self.gyro_bias_dps * dt
        ) ** 2

        state = relative[0]
        covariance = measurement_var
        filtered = np.empty_like(relative)
        filtered[0] = state
        rejections = 0
        for k in range(1, relative.size):
            # Predict with the gyro rate.
            state = state + gyro[k] * dt
            covariance = covariance + process_var
            # Gate: a compass reading far from the gyro-predicted heading
            # is a magnetic disturbance, unless we've been rejecting too
            # long to still believe our own state.
            innovation = relative[k] - state
            innovation_std = math.sqrt(covariance + measurement_var)
            if (
                abs(innovation) > self.gate_sigma * innovation_std
                and rejections < self.max_consecutive_rejections
            ):
                rejections += 1
                filtered[k] = state
                continue
            rejections = 0
            gain = covariance / (covariance + measurement_var)
            state = state + gain * innovation
            covariance = (1.0 - gain) * covariance
            filtered[k] = state

        return np.array(
            [normalize_bearing(reference + value) for value in filtered]
        )

    def course(
        self,
        compass_deg: Sequence[float],
        gyro_rates_dps: Sequence[float],
        rate_hz: float,
    ) -> float:
        """The filter's final heading estimate for the interval."""
        return float(self.smooth(compass_deg, gyro_rates_dps, rate_hz)[-1])


def fused_course_from_segment(
    segment: ImuSegment,
    placement_offset_deg: float,
    heading_filter: Optional[KalmanHeadingFilter] = None,
) -> float:
    """The walking direction of a segment via gyro-compass fusion.

    Falls back to the plain circular-mean estimator when the segment
    carries no gyroscope stream, so callers can use it unconditionally.

    Args:
        segment: The IMU recording of one interval.
        placement_offset_deg: Estimated phone placement offset.
        heading_filter: Filter parameters; defaults are matched to the
            simulated sensors.
    """
    if segment.gyro_rates_dps is None:
        from .heading import course_from_readings

        return course_from_readings(segment.compass_readings, placement_offset_deg)
    heading_filter = heading_filter or KalmanHeadingFilter()
    fused = heading_filter.course(
        segment.compass_readings, segment.gyro_rates_dps, segment.rate_hz
    )
    return normalize_bearing(fused - placement_offset_deg)


def _signed_delta(angle: float, reference: float) -> float:
    """Signed circular difference ``angle - reference`` in ``[-180, 180)``."""
    delta = normalize_bearing(angle - reference)
    return delta - 360.0 if delta >= 180.0 else delta
