"""Pedestrian model: bodies, step lengths, cadence, and random aisle walks.

Each crowdsourcing user is a :class:`Pedestrian` with a body profile, a
*true* step length (what their legs actually do) and an *estimated* step
length (what the system derives from their height and weight, following
ref. [25] of the paper).  The gap between the two is a principal source
of offset error in the motion database.

Walks are random paths on the walkable aisle graph, matching the paper's
protocol where users "randomly walked along the aisles".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..env.graph import WalkableGraph
from ..sensors.accelerometer import AccelerometerModel
from ..sensors.compass import CompassModel
from ..sensors.imu import ImuModel

__all__ = [
    "step_length_from_body",
    "BodyProfile",
    "Pedestrian",
    "random_walk_path",
]


def step_length_from_body(height_m: float, weight_kg: float = 70.0) -> float:
    """Step length estimated from height and weight (paper ref. [25]).

    Uses the standard ~0.41 x height heuristic with a small weight
    correction (heavier walkers take marginally shorter steps).

    Raises:
        ValueError: for non-positive height or weight.
    """
    if height_m <= 0:
        raise ValueError(f"height must be positive, got {height_m}")
    if weight_kg <= 0:
        raise ValueError(f"weight must be positive, got {weight_kg}")
    return 0.413 * height_m * (1.0 - 0.0008 * (weight_kg - 70.0))


@dataclass(frozen=True)
class BodyProfile:
    """A user's physical profile, the input to step-length estimation."""

    height_m: float
    weight_kg: float = 70.0

    @property
    def estimated_step_length_m(self) -> float:
        """The system's step-length estimate for this body."""
        return step_length_from_body(self.height_m, self.weight_kg)


@dataclass
class Pedestrian:
    """One walking user with their phone.

    Attributes:
        name: Identifier used in trace records.
        body: Physical profile; determines the *estimated* step length.
        true_step_length_m: What the user's gait actually produces; the
            system never sees this directly.
        step_period_s: Walking cadence (seconds per step).
        imu: The phone's sensor suite.
    """

    name: str
    body: BodyProfile
    true_step_length_m: float
    step_period_s: float
    imu: ImuModel

    def __post_init__(self) -> None:
        if self.true_step_length_m <= 0:
            raise ValueError("true step length must be positive")
        if self.step_period_s <= 0:
            raise ValueError("step period must be positive")

    @property
    def walking_speed_mps(self) -> float:
        """Walking speed implied by gait: step length over step period."""
        return self.true_step_length_m / self.step_period_s

    @property
    def estimated_step_length_m(self) -> float:
        """The step length the system uses when converting steps to meters."""
        return self.body.estimated_step_length_m

    def hop_duration_s(self, distance_m: float) -> float:
        """How long this user takes to walk ``distance_m``."""
        if distance_m <= 0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        return distance_m / self.walking_speed_mps

    def change_grip(self, rng: np.random.Generator) -> float:
        """Pick a new phone placement (grip) for the next trace.

        Users re-pocket or rotate their phone between walks; the compass
        placement offset is redrawn uniformly, and heading calibration
        must re-estimate it.  Returns the new offset in degrees.
        """
        offset = float(rng.uniform(0.0, 360.0))
        self.imu.compass.placement_offset_deg = offset
        return offset

    @classmethod
    def sample(
        cls,
        name: str,
        rng: np.random.Generator,
        accelerometer: Optional[AccelerometerModel] = None,
        compass: Optional[CompassModel] = None,
    ) -> "Pedestrian":
        """Draw a plausible random user.

        Height ~ N(1.70, 0.08) m, weight ~ N(68, 10) kg, individual gait
        deviating a few percent from the height heuristic, cadence
        ~ N(0.52, 0.04) s/step — the "diverse height and walking speed"
        of the paper's four volunteers.
        """
        height = float(np.clip(rng.normal(1.70, 0.08), 1.45, 2.00))
        weight = float(np.clip(rng.normal(68.0, 10.0), 45.0, 110.0))
        body = BodyProfile(height_m=height, weight_kg=weight)
        gait_factor = float(rng.normal(1.0, 0.03))
        true_step = max(body.estimated_step_length_m * gait_factor, 0.4)
        period = float(np.clip(rng.normal(0.52, 0.04), 0.40, 0.68))
        imu = ImuModel(
            accelerometer=accelerometer or AccelerometerModel(),
            compass=compass
            or CompassModel(device_bias_deg=float(rng.normal(0.0, 3.0))),
        )
        return cls(
            name=name,
            body=body,
            true_step_length_m=true_step,
            step_period_s=period,
            imu=imu,
        )


def random_walk_path(
    graph: WalkableGraph,
    rng: np.random.Generator,
    n_hops: int,
    start_id: Optional[int] = None,
) -> List[int]:
    """A random walk of ``n_hops`` hops along the aisle graph.

    Avoids immediately backtracking whenever another neighbor exists,
    mimicking purposeful human wandering rather than diffusive motion.

    Returns:
        The visited location ids, length ``n_hops + 1``.

    Raises:
        ValueError: for a non-positive hop count or an unknown start.
    """
    if n_hops < 1:
        raise ValueError(f"a walk needs at least one hop, got {n_hops}")
    nodes = graph.node_ids
    if start_id is None:
        start_id = int(nodes[rng.integers(len(nodes))])
    elif start_id not in nodes:
        raise ValueError(f"unknown start location {start_id}")

    path = [start_id]
    previous: Optional[int] = None
    for _ in range(n_hops):
        neighbors = graph.neighbors(path[-1])
        if not neighbors:
            raise ValueError(f"location {path[-1]} has no walkable neighbors")
        choices = [n for n in neighbors if n != previous] or neighbors
        previous = path[-1]
        path.append(int(choices[rng.integers(len(choices))]))
    return path
