"""Segmenting a continuous IMU stream into straight walk segments.

The trace pipeline hands the localizer pre-cut hops, but a real phone
records one continuous stream.  Between reference locations users walk
straight along aisles and turn at junctions, so *turns are the segment
boundaries*.  This module detects them from the heading stream: a
sliding pair of windows computes the circular change in mean heading,
and sustained changes above a threshold mark a turn.

Works on raw compass readings (placement offset cancels in differences)
or on gyro-integrated headings when available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..env.geometry import bearing_difference, circular_mean

__all__ = ["StreamSegment", "segment_at_turns"]


@dataclass(frozen=True)
class StreamSegment:
    """One straight stretch of a continuous recording.

    Attributes:
        start_index: First sample index (inclusive).
        end_index: Last sample index (exclusive).
        mean_heading_deg: Circular mean heading over the stretch.
    """

    start_index: int
    end_index: int
    mean_heading_deg: float

    @property
    def n_samples(self) -> int:
        """The number of samples in the stretch."""
        return self.end_index - self.start_index


def segment_at_turns(
    headings_deg: Sequence[float],
    rate_hz: float,
    turn_threshold_deg: float = 35.0,
    window_s: float = 1.0,
    min_segment_s: float = 1.5,
) -> List[StreamSegment]:
    """Split a heading stream into straight segments at turns.

    Args:
        headings_deg: Heading (or raw compass) samples.
        rate_hz: Sampling rate.
        turn_threshold_deg: Heading change between adjacent windows that
            counts as a turn.  Grid aisles turn by 90 degrees, so the
            default has ample margin over compass noise.
        window_s: Width of each comparison window.
        min_segment_s: Stretches shorter than this are merged into their
            neighbor rather than reported (turn transients).

    Returns:
        Non-overlapping segments covering the stream, in order.

    Raises:
        ValueError: on an empty stream or bad parameters.
    """
    headings = np.asarray(headings_deg, dtype=float)
    if headings.size == 0:
        raise ValueError("cannot segment an empty stream")
    if rate_hz <= 0:
        raise ValueError(f"rate must be positive, got {rate_hz}")
    if turn_threshold_deg <= 0 or window_s <= 0 or min_segment_s <= 0:
        raise ValueError("thresholds and windows must be positive")

    window = max(int(round(window_s * rate_hz)), 1)
    min_samples = max(int(round(min_segment_s * rate_hz)), 1)
    n = headings.size

    if n < 2 * window:
        return [
            StreamSegment(0, n, circular_mean(list(headings)))
        ]

    # Heading change between the window before and after each index.
    boundaries: List[int] = []
    k = window
    while k <= n - window:
        before = circular_mean(list(headings[k - window : k]))
        after = circular_mean(list(headings[k : k + window]))
        if bearing_difference(before, after) >= turn_threshold_deg:
            boundary = k + window // 2  # middle of the transition
            boundaries.append(min(boundary, n - 1))
            # A single turn keeps the window pair above threshold for up
            # to 2*window samples; skip past all of it before rearming.
            k += 2 * window
        else:
            k += 1

    # Build segments between boundaries, merging short stubs leftwards.
    cuts = [0] + boundaries + [n]
    spans: List[Tuple[int, int]] = []
    for start, end in zip(cuts, cuts[1:]):
        if end - start < min_samples and spans:
            spans[-1] = (spans[-1][0], end)
        else:
            spans.append((start, end))
    if len(spans) > 1 and spans[0][1] - spans[0][0] < min_samples:
        first = spans.pop(0)
        spans[0] = (first[0], spans[0][1])

    return [
        StreamSegment(start, end, circular_mean(list(headings[start:end])))
        for start, end in spans
        if end > start
    ]
