"""Motion substrate: pedestrians, step counting, heading, RLM extraction."""

from .heading import (
    course_from_readings,
    estimate_placement_offset,
    mean_compass_heading,
)
from .kalman_heading import KalmanHeadingFilter, fused_course_from_segment
from .pedestrian import (
    BodyProfile,
    Pedestrian,
    random_walk_path,
    step_length_from_body,
)
from .rlm import MotionMeasurement, RlmObservation, extract_measurement
from .segmentation import StreamSegment, segment_at_turns
from .stride import StepLengthEstimator
from .step_counting import (
    count_steps_csc,
    count_steps_dsc,
    detect_step_times,
    is_walking,
)
from .trace import TraceHop, WalkTrace

__all__ = [
    "course_from_readings",
    "estimate_placement_offset",
    "mean_compass_heading",
    "KalmanHeadingFilter",
    "fused_course_from_segment",
    "BodyProfile",
    "Pedestrian",
    "random_walk_path",
    "step_length_from_body",
    "MotionMeasurement",
    "RlmObservation",
    "extract_measurement",
    "count_steps_csc",
    "StepLengthEstimator",
    "StreamSegment",
    "segment_at_turns",
    "count_steps_dsc",
    "detect_step_times",
    "is_walking",
    "TraceHop",
    "WalkTrace",
]
