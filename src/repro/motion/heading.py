"""Walking-direction estimation from raw compass readings (Sec. IV-B1).

Compass readings reflect the *phone's* orientation, not the walking
direction; the constant between the two is the placement offset (how the
user holds the phone).  The paper "takes credits from Zee" for
placement-independent orientation estimation; this module reproduces that
capability: given a short calibration stretch whose true course is known
(Zee derives it from map constraints), estimate the placement offset, then
subtract it from subsequent readings.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..env.geometry import circular_mean, normalize_bearing

__all__ = [
    "mean_compass_heading",
    "estimate_placement_offset",
    "course_from_readings",
]


def mean_compass_heading(readings: Sequence[float]) -> float:
    """The circular mean of raw compass readings over an interval, degrees."""
    return circular_mean(readings)


def estimate_placement_offset(
    calibration: Iterable[Tuple[Sequence[float], float]]
) -> float:
    """Estimate the phone-to-walking-direction placement offset.

    Args:
        calibration: Pairs of (raw compass readings over one straight
            segment, reference course of that segment in degrees).  Zee
            obtains such references from floor-plan constraints; the
            crowdsourcing simulation supplies them from its calibration
            hops.

    Returns:
        The estimated placement offset in degrees (reading minus course),
        normalized to ``[0, 360)``.

    Raises:
        ValueError: if ``calibration`` is empty.
    """
    per_segment_offsets = [
        normalize_bearing(mean_compass_heading(readings) - course)
        for readings, course in calibration
    ]
    if not per_segment_offsets:
        raise ValueError("placement-offset estimation needs at least one segment")
    return circular_mean(per_segment_offsets)


def course_from_readings(
    readings: Sequence[float], placement_offset_deg: float
) -> float:
    """The walking direction for one interval, degrees in ``[0, 360)``.

    Averages the raw readings circularly and removes the estimated
    placement offset.
    """
    return normalize_bearing(mean_compass_heading(readings) - placement_offset_deg)
