"""Relative location measurements (RLMs) and their extraction (Sec. IV-B).

An RLM ``r_{i,j} = <d, o>`` is the walking direction ``d`` and offset
``o`` measured while moving between two adjacent reference locations.
During motion-database construction the endpoints are *estimated*
locations (from fingerprinting); during localization only the raw
:class:`MotionMeasurement` is used, without endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..env.geometry import normalize_bearing, reverse_bearing
from ..sensors.imu import ImuSegment
from .heading import course_from_readings
from .step_counting import count_steps_csc, count_steps_dsc

__all__ = ["MotionMeasurement", "RlmObservation", "extract_measurement"]


@dataclass(frozen=True)
class MotionMeasurement:
    """One interval's motion: walking direction and offset.

    Attributes:
        direction_deg: Compass bearing of the movement, in ``[0, 360)``.
        offset_m: Distance walked, in meters (non-negative).
    """

    direction_deg: float
    offset_m: float

    def __post_init__(self) -> None:
        if self.offset_m < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset_m}")
        object.__setattr__(
            self, "direction_deg", normalize_bearing(self.direction_deg)
        )

    def reversed(self) -> "MotionMeasurement":
        """The mirror measurement: opposite direction, same offset.

        This is the transformation data reassembling applies under the
        mutual-reachability assumption (Sec. IV-B2).
        """
        return MotionMeasurement(reverse_bearing(self.direction_deg), self.offset_m)


@dataclass(frozen=True)
class RlmObservation:
    """An RLM tagged with its (estimated) start and end locations.

    Attributes:
        start_id: Estimated location the user moved from.
        end_id: Estimated location the user arrived at.
        measurement: The measured direction and offset.
    """

    start_id: int
    end_id: int
    measurement: MotionMeasurement

    def reassembled(self) -> "RlmObservation":
        """The observation with the smaller location id as start.

        Implements the paper's *data reassembling*: if ``start_id >
        end_id``, swap the endpoints and mirror the measurement, so every
        pair is keyed consistently and each crowdsourced walk trains both
        walking directions at once.
        """
        if self.start_id <= self.end_id:
            return self
        return RlmObservation(
            start_id=self.end_id,
            end_id=self.start_id,
            measurement=self.measurement.reversed(),
        )


def extract_measurement(
    segment: ImuSegment,
    step_length_m: float,
    placement_offset_deg: float,
    counting: Literal["csc", "dsc"] = "csc",
) -> MotionMeasurement:
    """Turn one interval's IMU recording into a motion measurement.

    Args:
        segment: The IMU recording of the interval.
        step_length_m: The user's step length as estimated from their
            height and weight (ref. [25] of the paper).
        placement_offset_deg: The phone placement offset estimated by
            :func:`repro.motion.heading.estimate_placement_offset`.
        counting: ``"csc"`` for the paper's continuous counter (default)
            or ``"dsc"`` for the discrete baseline — the ablation axis of
            Sec. IV-B1.

    Raises:
        ValueError: for a non-positive step length or unknown counter.
    """
    if step_length_m <= 0:
        raise ValueError(f"step length must be positive, got {step_length_m}")
    if counting == "csc":
        steps = count_steps_csc(segment.accel)
    elif counting == "dsc":
        steps = count_steps_dsc(segment.accel)
    else:
        raise ValueError(f"unknown step counting mode {counting!r}")
    direction = course_from_readings(segment.compass_readings, placement_offset_deg)
    return MotionMeasurement(direction_deg=direction, offset_m=steps * step_length_m)
