"""Trace containers: what one crowdsourced or test walk records.

A :class:`WalkTrace` is the unit of data collection in the paper: one user
walking along the aisles, the phone scanning WiFi at every reference-
location passage and recording IMU streams in between.  Ground-truth
location ids ride along for scoring only (the paper's users pressed a mark
when passing a reference location, used solely to report accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.fingerprint import Fingerprint
from ..sensors.imu import ImuSegment

__all__ = ["TraceHop", "WalkTrace"]


@dataclass(frozen=True)
class TraceHop:
    """One hop of a walk: the movement to the next reference location.

    Attributes:
        true_from: Ground-truth location id the hop started at.
        true_to: Ground-truth location id the hop arrived at.
        imu: IMU recording covering the hop (one localization interval).
        arrival_fingerprint: WiFi scan taken on arrival.
        regime: Ground-truth gait-regime label, when the hop came from
            gait-aware generation (scoring only; None on legacy traces).
        true_speed_mps: Ground-truth translation speed over the hop,
            when gait-aware generation recorded it (scoring only).
    """

    true_from: int
    true_to: int
    imu: ImuSegment
    arrival_fingerprint: Fingerprint
    regime: Optional[str] = None
    true_speed_mps: Optional[float] = None


@dataclass(frozen=True)
class WalkTrace:
    """One user's walk: an initial scan plus a sequence of hops.

    Attributes:
        user: Name of the walking user.
        true_start: Ground-truth starting location id.
        initial_fingerprint: WiFi scan taken at the starting location.
        hops: The hops walked, in order.
        placement_offset_estimate_deg: The phone placement offset the
            heading calibration estimated for this walk; motion processing
            subtracts it from compass readings.
        estimated_step_length_m: The step length the system attributes to
            this user (from height/weight).
    """

    user: str
    true_start: int
    initial_fingerprint: Fingerprint
    hops: List[TraceHop]
    placement_offset_estimate_deg: float
    estimated_step_length_m: float

    @property
    def n_hops(self) -> int:
        """Number of hops in the walk."""
        return len(self.hops)

    @property
    def true_locations(self) -> List[int]:
        """Ground-truth location ids visited, in order (start included)."""
        return [self.true_start] + [hop.true_to for hop in self.hops]

    def __post_init__(self) -> None:
        expected = self.true_start
        for index, hop in enumerate(self.hops):
            if hop.true_from != expected:
                raise ValueError(
                    f"hop {index} starts at {hop.true_from} but previous "
                    f"position was {expected}: trace is not contiguous"
                )
            expected = hop.true_to
