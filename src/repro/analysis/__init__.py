"""Analysis helpers: CDFs, summary stats, bootstrap CIs, text tables."""

from .ambiguity import AmbiguityReport, TwinPair, analyze_ambiguity
from .cdf import EmpiricalCdf
from .matrix import (
    FULL_PROFILE,
    SMOKE_PROFILE,
    FaultPlanSpec,
    LoadLevel,
    MatrixProfile,
    run_matrix,
    twin_confusion_rate,
    validate_matrix_document,
    write_matrix_artifacts,
)
from .comparison import SystemComparison, compare_systems
from .coverage import CoverageReport, LocationCoverage, analyze_coverage
from .redteam import GATE_RATIO, run_redteam
from .stats import SummaryStats, bootstrap_ci, summarize
from .tables import format_cdf_series, format_table

__all__ = [
    "AmbiguityReport",
    "TwinPair",
    "analyze_ambiguity",
    "EmpiricalCdf",
    "SystemComparison",
    "compare_systems",
    "CoverageReport",
    "LocationCoverage",
    "analyze_coverage",
    "GATE_RATIO",
    "run_redteam",
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "format_cdf_series",
    "format_table",
    "LoadLevel",
    "FaultPlanSpec",
    "MatrixProfile",
    "SMOKE_PROFILE",
    "FULL_PROFILE",
    "run_matrix",
    "twin_confusion_rate",
    "validate_matrix_document",
    "write_matrix_artifacts",
]
