"""Paired statistical comparison of two localization systems.

Two systems evaluated on the *same* traces produce paired per-fix
errors, so the right comparison is paired: resample whole traces (fixes
within a trace are correlated) and bootstrap the difference of the
statistic.  :func:`compare_systems` reports the accuracy and mean-error
deltas with confidence intervals and a simple verdict, used by the
integration tests to show MoLoc's win is not sampling luck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..sim.evaluation import EvaluationResult

__all__ = ["SystemComparison", "compare_systems"]


@dataclass(frozen=True)
class SystemComparison:
    """The outcome of comparing system A against system B.

    Attributes:
        accuracy_delta: ``accuracy(A) - accuracy(B)`` (point estimate).
        accuracy_ci: Bootstrap confidence interval of the delta.
        mean_error_delta_m: ``mean_error(A) - mean_error(B)``.
        mean_error_ci: Bootstrap confidence interval of that delta.
        n_traces: Number of paired traces resampled.
        confidence: The interval coverage used.
    """

    accuracy_delta: float
    accuracy_ci: Tuple[float, float]
    mean_error_delta_m: float
    mean_error_ci: Tuple[float, float]
    n_traces: int
    confidence: float

    @property
    def a_significantly_more_accurate(self) -> bool:
        """Whether A's accuracy advantage excludes zero at the chosen level."""
        return self.accuracy_ci[0] > 0.0

    @property
    def a_significantly_lower_error(self) -> bool:
        """Whether A's mean-error reduction excludes zero."""
        return self.mean_error_ci[1] < 0.0


def compare_systems(
    result_a: EvaluationResult,
    result_b: EvaluationResult,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> SystemComparison:
    """Paired trace-level bootstrap comparison of two evaluation results.

    Args:
        result_a: System A's result (e.g. MoLoc).
        result_b: System B's result on the *same* traces, same order.
        confidence: Interval coverage.
        n_resamples: Bootstrap resamples.
        seed: Resampling seed.

    Raises:
        ValueError: if the results do not pair up trace by trace.
    """
    if len(result_a.traces) != len(result_b.traces):
        raise ValueError(
            f"trace counts differ: {len(result_a.traces)} vs {len(result_b.traces)}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n_traces = len(result_a.traces)
    if n_traces == 0:
        raise ValueError("cannot compare empty results")
    for trace_a, trace_b in zip(result_a.traces, result_b.traces):
        if len(trace_a.records) != len(trace_b.records):
            raise ValueError("paired traces have different record counts")

    # Per-trace sufficient statistics.
    hits_a = np.array(
        [sum(r.is_accurate for r in t.records) for t in result_a.traces]
    )
    hits_b = np.array(
        [sum(r.is_accurate for r in t.records) for t in result_b.traces]
    )
    errors_a = np.array(
        [sum(r.error_m for r in t.records) for t in result_a.traces]
    )
    errors_b = np.array(
        [sum(r.error_m for r in t.records) for t in result_b.traces]
    )
    counts = np.array([len(t.records) for t in result_a.traces])

    def deltas(indices: np.ndarray) -> Tuple[float, float]:
        total = counts[indices].sum()
        accuracy = (hits_a[indices].sum() - hits_b[indices].sum()) / total
        error = (errors_a[indices].sum() - errors_b[indices].sum()) / total
        return accuracy, error

    point_accuracy, point_error = deltas(np.arange(n_traces))

    rng = np.random.default_rng(seed)
    resamples = rng.integers(0, n_traces, size=(n_resamples, n_traces))
    accuracy_deltas = np.empty(n_resamples)
    error_deltas = np.empty(n_resamples)
    for k in range(n_resamples):
        accuracy_deltas[k], error_deltas[k] = deltas(resamples[k])

    alpha = (1.0 - confidence) / 2.0
    return SystemComparison(
        accuracy_delta=point_accuracy,
        accuracy_ci=(
            float(np.quantile(accuracy_deltas, alpha)),
            float(np.quantile(accuracy_deltas, 1.0 - alpha)),
        ),
        mean_error_delta_m=point_error,
        mean_error_ci=(
            float(np.quantile(error_deltas, alpha)),
            float(np.quantile(error_deltas, 1.0 - alpha)),
        ),
        n_traces=n_traces,
        confidence=confidence,
    )
