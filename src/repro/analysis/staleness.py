"""Staleness sweep: localization accuracy vs database-epoch staleness.

The epochal database (:mod:`repro.db.epochs`) exists because the field
truth moves while the survey database stands still: APs die, get
power-cycled to a different transmit level, and the whole site drifts
seasonally.  This sweep quantifies what that staleness costs and what
one epoch advance buys back:

* **clean** — the environment never changes; the epoch-0 database
  describes the field exactly as surveyed.
* **stale** — churn events accumulate on an
  :class:`~repro.chaos.harness.EnvironmentOverlay` (the same
  environment-truth model the chaos harnesses use), every walk's scans
  come from the *changed* field, and serving still matches against the
  epoch-0 database.
* **refreshed** — the same changed field, but the database advanced one
  epoch with exactly :meth:`EnvironmentOverlay.repair_updates` — the
  "a surveyor re-measured the changed field" experiment.

The staleness axis is the number of accumulated churn events.  The
committed gate (``BENCH_staleness.json``): at full churn the epoch
advance must recover at least :data:`RECOVERY_GATE` of the
churn-induced mean-error increase,

    (stale - refreshed) / (stale - clean) >= 0.5,

while a fixed environment stays bitwise free: a
:class:`~repro.serving.engine.BatchedServingEngine` over an
:class:`~repro.db.epochs.EpochalDatabase` at epoch 0 must produce a fix
stream identical to the same engine over the frozen database.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from ..chaos.harness import EnvironmentOverlay
from ..chaos.plan import FaultKind, FaultSpec
from ..core.fingerprint import Fingerprint
from ..db.epochs import EpochalDatabase
from ..motion.pedestrian import BodyProfile
from ..service import MoLocService
from ..sim.evaluation import evaluate_service, multi_session_workload

__all__ = ["run_staleness", "churn_schedule", "RECOVERY_GATE"]

#: The bench gate: one epoch advance must claw back at least this
#: fraction of the churn-induced mean-error increase.
RECOVERY_GATE = 0.5


def churn_schedule(n_aps: int) -> List[FaultSpec]:
    """The canonical churn sequence the sweep accumulates, in order.

    Staleness level ``k`` activates the first ``k`` events: first the
    site-wide seasonal drift, then a power-cycled AP, then a dead one —
    the same vocabulary (and the same specs) a
    :attr:`~repro.chaos.plan.FaultKind.ENV_DRIFT` /
    ``ENV_AP_REPOWER`` / ``ENV_AP_DIE`` storm would schedule.
    """
    if n_aps < 3:
        raise ValueError(f"churn schedule needs >= 3 APs, got {n_aps}")
    return [
        FaultSpec(
            tick=1,
            session_id="environment",
            kind=FaultKind.ENV_DRIFT,
            magnitude=2.5,
        ),
        FaultSpec(
            tick=2,
            session_id="environment",
            kind=FaultKind.ENV_AP_REPOWER,
            ap_id=n_aps - 4 if n_aps >= 4 else 0,
            magnitude=-9.0,
        ),
        FaultSpec(
            tick=3,
            session_id="environment",
            kind=FaultKind.ENV_AP_DIE,
            ap_id=n_aps - 1,
        ),
    ]


def _churned_trace(trace, overlay: EnvironmentOverlay):
    """The walk as scanned in the overlay's changed field."""
    initial = Fingerprint(
        tuple(overlay.apply_scan(trace.initial_fingerprint.rss))
    )
    hops = [
        dataclasses.replace(
            hop,
            arrival_fingerprint=Fingerprint(
                tuple(overlay.apply_scan(hop.arrival_fingerprint.rss))
            ),
        )
        for hop in trace.hops
    ]
    return dataclasses.replace(
        trace, initial_fingerprint=initial, hops=hops
    )


def _session_factory(study, fingerprint_db, motion_db) -> Callable:
    def make_session(trace):
        service = MoLocService(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=study.config,
        )
        service._stride.step_length_m = trace.estimated_step_length_m
        service.calibrate_heading(
            [
                (hop.imu.compass_readings, hop.imu.true_course_deg)
                for hop in trace.hops[:2]
            ]
        )
        return service

    return make_session


def _epoch0_bitwise_identical(study, traces, fingerprint_db, motion_db) -> bool:
    """Frozen vs epoch-0 epochal engine: fix streams must match bitwise."""
    from ..serving import (
        BatchedServingEngine,
        IntervalEvent,
        build_session_services,
        fix_stream_checksum,
    )

    workload = multi_session_workload(
        traces, 6, corpus_size=min(4, len(traces)), stagger_ticks=2
    )

    def checksum(engine_db: object) -> str:
        engine = BatchedServingEngine(engine_db, motion_db, study.config)
        services = build_session_services(
            workload, fingerprint_db, motion_db, study.config
        )
        for session_id, service in services.items():
            engine.add_session(session_id, service)
        fixes: List[object] = []
        for tick in workload.ticks:
            events = [
                IntervalEvent(
                    session_id=interval.session_id,
                    scan=interval.scan,
                    imu=interval.imu,
                    sequence=interval.sequence,
                )
                for interval in tick
            ]
            outcome = engine.tick_detailed(events)
            fixes.extend(fix for fix in outcome.fixes if fix is not None)
        return fix_stream_checksum(fixes)

    return checksum(fingerprint_db) == checksum(
        EpochalDatabase(fingerprint_db)
    )


def _spec_entry(spec: FaultSpec) -> Dict[str, object]:
    entry: Dict[str, object] = {"kind": spec.kind.value}
    if spec.ap_id is not None:
        entry["ap_id"] = spec.ap_id
    if spec.magnitude:
        entry["magnitude"] = spec.magnitude
    return entry


def run_staleness(
    study,
    smoke: bool = False,
    traces: Optional[Sequence] = None,
) -> Dict[str, object]:
    """Sweep accuracy vs epoch staleness and return the report document.

    Args:
        study: A prepared :class:`~repro.sim.experiments.Study`.
        smoke: Evaluate a handful of walks and gate on *mechanics*
            (churn hurts, the refresh helps, epoch 0 is bitwise free)
            instead of the calibrated recovery fraction, which only
            means something at full scale.
        traces: Override the evaluated walks (defaults to the study's
            held-out test set, or its first six in smoke mode).

    Returns:
        A JSON-plain document; see ``benchmarks/bench_staleness.py``
        for the committed shape.
    """
    if traces is None:
        traces = study.test_traces[:6] if smoke else study.test_traces
    traces = list(traces)
    plan = study.scenario.plan
    fingerprint_db = study.fingerprint_db(6)
    motion_db, _ = study.motion_db(6)
    n_aps = fingerprint_db.n_aps
    schedule = churn_schedule(n_aps)

    clean = evaluate_service(
        _session_factory(study, fingerprint_db, motion_db), traces, plan
    )
    epoch0_identical = _epoch0_bitwise_identical(
        study, traces, fingerprint_db, motion_db
    )

    document: Dict[str, object] = {
        "schema": 1,
        "smoke": smoke,
        "seed": study.scenario.seed,
        "n_traces": len(traces),
        "n_intervals": sum(1 + t.n_hops for t in traces),
        "recovery_gate": RECOVERY_GATE,
        "churn_schedule": [_spec_entry(spec) for spec in schedule],
        "clean": {
            "accuracy": clean.accuracy,
            "mean_error_m": clean.mean_error_m,
        },
        "epoch0_fix_stream_bitwise_identical": epoch0_identical,
        "levels": [],
    }

    top_recovered: Optional[float] = None
    top_stale: Optional[float] = None
    top_refreshed: Optional[float] = None
    for level in range(1, len(schedule) + 1):
        overlay = EnvironmentOverlay()
        for spec in schedule[:level]:
            overlay.activate(spec)
        degraded = [_churned_trace(trace, overlay) for trace in traces]

        stale = evaluate_service(
            _session_factory(study, fingerprint_db, motion_db),
            degraded,
            plan,
        )
        epochal = EpochalDatabase(fingerprint_db)
        snapshot = epochal.advance_epoch(overlay.repair_updates(n_aps))
        refreshed = evaluate_service(
            _session_factory(study, snapshot.database, motion_db),
            degraded,
            plan,
        )
        induced = stale.mean_error_m - clean.mean_error_m
        recovered = (
            (stale.mean_error_m - refreshed.mean_error_m) / induced
            if induced > 0
            else None
        )
        document["levels"].append(
            {
                "staleness": level,
                "churn": [_spec_entry(s) for s in schedule[:level]],
                "epoch_checksum": snapshot.checksum,
                "stale": {
                    "accuracy": stale.accuracy,
                    "mean_error_m": stale.mean_error_m,
                },
                "refreshed": {
                    "accuracy": refreshed.accuracy,
                    "mean_error_m": refreshed.mean_error_m,
                },
                "induced_error_m": induced,
                "recovered_fraction": recovered,
            }
        )
        top_recovered = recovered
        top_stale = stale.mean_error_m
        top_refreshed = refreshed.mean_error_m

    if smoke:
        # Mechanics only: churn hurts, the refresh helps, epoch 0 free.
        passed = (
            epoch0_identical
            and top_stale is not None
            and top_stale > clean.mean_error_m
            and top_refreshed is not None
            and top_refreshed < top_stale
        )
        document["gate"] = {"mode": "smoke", "passed": passed}
    else:
        passed = (
            epoch0_identical
            and top_recovered is not None
            and top_recovered >= RECOVERY_GATE
        )
        document["gate"] = {
            "mode": "full",
            "observed_recovered_fraction": top_recovered,
            "threshold_fraction": RECOVERY_GATE,
            "passed": passed,
        }
    return document
