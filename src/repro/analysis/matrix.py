"""Scenario-matrix runner: environment x load x fault x gait sweeps.

One number from one hall proves nothing about a localization system;
MoLoc's twin phenomenon is a property of the RSS field, which changes
with topology, AP density, and noise.  This module sweeps the full
cross-product of procedurally generated environments (see
:mod:`repro.env.procedural`), multi-session load levels, and seeded
fault/adversary plans, reusing the exact engines every other bench uses:

* per environment — bitwise reproducibility is *verified* (the world is
  generated twice and the checksums compared), a twin census counts the
  fingerprint twins the world actually exhibits (cells in twin-free
  worlds are flagged, keeping the harness honest), and MoLoc / WiFi
  accuracy plus the twin-confusion rate come from the standard
  evaluation protocol;
* per cell — the batched serving engine (optionally behind the chaos
  harness with a seeded fault storm) serves the session workload,
  yielding throughput, fault accounting, and a bit-level fix-stream
  checksum.

The result is one comparable ``BENCH_matrix.json`` document.  The
``smoke`` profile is sized to finish in well under a minute and gates
CI via ``python -m repro matrix --smoke``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..env.procedural import (
    EnvironmentSpec,
    GeneratedEnvironment,
    environment_checksum,
    generate_environment,
)
from ..sim.gait import MOTION_MIXES, gait_trace_config
from .ambiguity import analyze_ambiguity

__all__ = [
    "LoadLevel",
    "FaultPlanSpec",
    "MatrixProfile",
    "SMOKE_PROFILE",
    "FULL_PROFILE",
    "run_matrix",
    "validate_matrix_document",
    "twin_confusion_rate",
]

MATRIX_FORMAT_VERSION = 3

# Version 1 documents (no db_churn fault columns) remain fully valid;
# version 2 only *adds* the optional axis, and version 3 adds the
# motion-mix axis (cells gain a "motion_mix" label), so the validator
# accepts all three and existing cell checksums are untouched.
_SUPPORTED_MATRIX_VERSIONS = (1, 2, 3)

_DISTANT_TWIN_MIN_M = 6.0
"""Fig. 8's large-error threshold: twins at least this far apart."""


@dataclass(frozen=True)
class LoadLevel:
    """One session-load level of the matrix.

    Attributes:
        name: Row label, e.g. ``light``.
        n_sessions: Concurrent serving sessions.
        corpus_size: Distinct walks the sessions replay.
        stagger_ticks: Session start staggering, in ticks.
    """

    name: str
    n_sessions: int
    corpus_size: int
    stagger_ticks: int = 2

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError(f"n_sessions must be >= 1, got {self.n_sessions}")
        if not 1 <= self.corpus_size <= self.n_sessions:
            raise ValueError(
                f"corpus_size must be in [1, {self.n_sessions}], "
                f"got {self.corpus_size}"
            )
        if self.stagger_ticks < 0:
            raise ValueError(
                f"stagger_ticks must be >= 0, got {self.stagger_ticks}"
            )


@dataclass(frozen=True)
class FaultPlanSpec:
    """One fault column of the matrix.

    Attributes:
        name: Column label, e.g. ``storm``.
        kind: ``none`` (clean serving), ``faults`` (the default random
            storm pool), ``adversarial`` (adds the attack kinds and
            serves through trust-defended sessions), or ``db_churn``
            (environment-truth changes — AP death/repower and seasonal
            drift — accumulating against a stale database).
        rate: Expected faults per session-tick.
        chaos_seed: Seed of the drawn fault plan.
    """

    name: str
    kind: str = "none"
    rate: float = 0.0
    chaos_seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("none", "faults", "adversarial", "db_churn"):
            raise ValueError(
                "fault kind must be none|faults|adversarial|db_churn, "
                f"got {self.kind!r}"
            )
        if self.kind != "none" and self.rate <= 0.0:
            raise ValueError(f"{self.kind} plans need a positive rate")


@dataclass(frozen=True)
class MatrixProfile:
    """A complete sweep definition: what to generate and how hard to push.

    Attributes:
        name: Profile label (``smoke`` or ``full``).
        environments: The worlds to generate, as ``(env_seed, spec)``.
        loads: Session-load levels (every environment sees each).
        fault_plans: Fault columns (every environment x load sees each).
        motion_mixes: Named gait mixes (:data:`~repro.sim.gait.MOTION_MIXES`)
            the walk corpus is generated under; every environment is
            studied once per mix.  ``"paper-walk"`` is the legacy
            single-gait workload.
        samples_per_location: Site-survey scans per location.
        training_samples: Survey scans entering the database.
        n_training_traces: Crowdsourced motion-training walks.
        n_test_traces: Held-out evaluation walks.
        trace_hops: Hops per generated walk.
    """

    name: str
    environments: Tuple[Tuple[int, EnvironmentSpec], ...]
    loads: Tuple[LoadLevel, ...]
    fault_plans: Tuple[FaultPlanSpec, ...]
    motion_mixes: Tuple[str, ...] = ("paper-walk",)
    samples_per_location: int = 60
    training_samples: int = 40
    n_training_traces: int = 150
    n_test_traces: int = 34
    trace_hops: int = 15

    def __post_init__(self) -> None:
        if not self.motion_mixes:
            raise ValueError("a profile needs at least one motion mix")
        for mix in self.motion_mixes:
            if mix not in MOTION_MIXES:
                raise ValueError(
                    f"unknown motion mix {mix!r}; expected one of "
                    f"{tuple(sorted(MOTION_MIXES))}"
                )

    @property
    def n_cells(self) -> int:
        """Cells the sweep will produce."""
        return (
            len(self.environments)
            * len(self.loads)
            * len(self.fault_plans)
            * len(self.motion_mixes)
        )


SMOKE_PROFILE = MatrixProfile(
    name="smoke",
    environments=(
        (101, EnvironmentSpec(topology="tower", floors=2, rows=2, cols=3,
                              floor_width_m=24.0, floor_height_m=10.0,
                              n_aps=5, placement="grid")),
        (202, EnvironmentSpec(topology="mall", rows=4, cols=4,
                              floor_width_m=28.0, floor_height_m=16.0,
                              n_aps=5, placement="perimeter")),
        (303, EnvironmentSpec(topology="warehouse", rows=4, cols=3,
                              floor_width_m=20.0, floor_height_m=18.0,
                              n_aps=4, placement="sparse-adversarial")),
    ),
    loads=(
        LoadLevel("light", n_sessions=3, corpus_size=2),
        LoadLevel("heavy", n_sessions=6, corpus_size=3),
    ),
    fault_plans=(
        FaultPlanSpec("none"),
        FaultPlanSpec("storm", kind="faults", rate=0.15, chaos_seed=11),
    ),
    samples_per_location=12,
    training_samples=8,
    n_training_traces=24,
    n_test_traces=6,
    trace_hops=6,
)
"""3 topologies x 2 loads x 2 fault plans = 12 tiny cells, CI-gated."""


FULL_PROFILE = MatrixProfile(
    name="full",
    environments=(
        (101, EnvironmentSpec(topology="tower", floors=3, rows=3, cols=4,
                              floor_width_m=32.0, floor_height_m=12.0,
                              n_aps=12, placement="grid")),
        (202, EnvironmentSpec(topology="mall", rows=4, cols=7,
                              floor_width_m=44.0, floor_height_m=18.0,
                              n_aps=10, placement="perimeter")),
        (303, EnvironmentSpec(topology="warehouse", rows=6, cols=5,
                              floor_width_m=30.0, floor_height_m=28.0,
                              n_aps=8, placement="clustered")),
        (404, EnvironmentSpec(topology="stadium", rows=3, cols=16,
                              floor_width_m=48.0, floor_height_m=48.0,
                              n_aps=12, placement="perimeter")),
        (505, EnvironmentSpec(topology="corridor", rows=6, cols=8,
                              floor_width_m=36.0, floor_height_m=20.0,
                              n_aps=6, placement="sparse-adversarial")),
    ),
    loads=(
        LoadLevel("light", n_sessions=4, corpus_size=2),
        LoadLevel("heavy", n_sessions=12, corpus_size=4),
    ),
    fault_plans=(
        FaultPlanSpec("none"),
        FaultPlanSpec("storm", kind="faults", rate=0.15, chaos_seed=11),
        FaultPlanSpec("adversary", kind="adversarial", rate=0.2, chaos_seed=23),
        FaultPlanSpec("churn", kind="db_churn", rate=0.02, chaos_seed=31),
    ),
    samples_per_location=30,
    training_samples=20,
    motion_mixes=("paper-walk", "mixed-gait"),
    n_training_traces=60,
    n_test_traces=12,
    trace_hops=10,
)
"""5 topologies x 2 loads x 4 fault plans x 2 mixes = 80 cells, the
weekly sweep."""


def twin_confusion_rate(records: Sequence[Any], twins: Sequence[Any]) -> float:
    """The fraction of fixes confused with the true location's twin.

    A record counts as twin-confused when its ground-truth location is a
    member of a twin pair and the estimate landed exactly on that pair's
    other member — the paper's failure mode, isolated from garden-variety
    misses.  Returns 0.0 for empty record sets or twin-free worlds.
    """
    partners: Dict[int, set] = {}
    for pair in twins:
        partners.setdefault(pair.location_a, set()).add(pair.location_b)
        partners.setdefault(pair.location_b, set()).add(pair.location_a)
    if not records or not partners:
        return 0.0
    confused = sum(
        1
        for record in records
        if record.estimated_id in partners.get(record.true_id, ())
    )
    return confused / len(records)


def _census(study) -> Dict[str, Any]:
    """Twin-census one prepared study's survey database."""
    report = analyze_ambiguity(
        study.scenario.survey.database, study.scenario.plan
    )
    twins = report.twins
    return {
        "twin_threshold_db": report.twin_threshold_db,
        "n_twins": len(twins),
        "n_distant_twins": len(report.distant_twins(_DISTANT_TWIN_MIN_M)),
        "twin_free": not twins,
        "worst_pairs": [
            {
                "location_a": pair.location_a,
                "location_b": pair.location_b,
                "signal_gap_db": pair.signal_gap_db,
                "physical_distance_m": pair.physical_distance_m,
            }
            for pair in twins[:5]
        ],
    }, twins


def _serve_cell(
    study,
    environment: GeneratedEnvironment,
    load: LoadLevel,
    fault_plan: FaultPlanSpec,
) -> Dict[str, Any]:
    """Serve one (environment, load, fault) cell; return its serving block."""
    from ..chaos import ChaosHarness, FaultPlan
    from ..serving import (
        BatchedServingEngine,
        IntervalEvent,
        build_session_services,
        workload_checksum,
    )
    from ..serving.benchmark import ServeResult
    from ..sim.evaluation import multi_session_workload

    n_aps = environment.spec.n_aps
    fingerprint_db = study.fingerprint_db(n_aps)
    motion_db, _ = study.motion_db(n_aps)
    workload = multi_session_workload(
        study.test_traces,
        load.n_sessions,
        corpus_size=load.corpus_size,
        stagger_ticks=load.stagger_ticks,
    )
    make_service = None
    if fault_plan.kind == "adversarial":
        from ..motion.pedestrian import BodyProfile
        from ..robustness import ResilientMoLocService
        from ..robustness.trust import ApTrustMonitor

        def make_service(trace):
            # One monitor per session: trust state is per-user.
            return ResilientMoLocService(
                fingerprint_db,
                motion_db,
                body=BodyProfile(height_m=1.72),
                config=study.config,
                plan=study.scenario.plan,
                trust=ApTrustMonitor(n_aps=n_aps),
            )

    services = build_session_services(
        workload,
        fingerprint_db,
        motion_db,
        study.config,
        resilient=True,
        plan=study.scenario.plan,
        make_service=make_service,
    )
    engine = BatchedServingEngine(fingerprint_db, motion_db, study.config)
    totals = {
        "served": 0, "faulted": 0, "quarantined": 0, "duplicates": 0,
        "stale": 0, "shed": 0, "evicted": 0,
    }

    if fault_plan.kind == "none":
        from ..serving import serve_batched

        result = serve_batched(engine, workload, services)
        totals["served"] = result.n_intervals
        scheduled_faults = 0
    else:
        storm_kinds = None
        if fault_plan.kind == "adversarial":
            from ..chaos.plan import ADVERSARY_KINDS, DEFAULT_RANDOM_KINDS

            storm_kinds = list(DEFAULT_RANDOM_KINDS) + list(ADVERSARY_KINDS)
        elif fault_plan.kind == "db_churn":
            from ..chaos.plan import DB_CHURN_KINDS

            storm_kinds = list(DB_CHURN_KINDS)
        plan = FaultPlan.random(
            seed=fault_plan.chaos_seed,
            n_ticks=len(workload.ticks),
            session_ids=sorted(workload.sessions),
            rate=fault_plan.rate,
            kinds=storm_kinds,
            n_aps=(
                n_aps
                if fault_plan.kind in ("adversarial", "db_churn")
                else None
            ),
        )
        scheduled_faults = len(plan)
        harness = ChaosHarness(engine, plan)
        for session_id, service in services.items():
            engine.add_session(session_id, service)
        fixes: Dict[str, List[object]] = {sid: [] for sid in services}
        durations: List[float] = []
        n_intervals = 0
        for tick in workload.ticks:
            events = [
                IntervalEvent(
                    session_id=interval.session_id,
                    scan=interval.scan,
                    imu=interval.imu,
                    sequence=interval.sequence,
                )
                for interval in tick
            ]
            started = time.perf_counter()
            outcome = harness.tick_detailed(events)
            durations.append(time.perf_counter() - started)
            for event, fix in zip(events, outcome.fixes):
                if fix is not None:
                    fixes[event.session_id].append(fix)
            totals["served"] += len(outcome.served)
            totals["faulted"] += len(outcome.faulted)
            totals["quarantined"] += len(outcome.quarantined)
            totals["duplicates"] += len(outcome.duplicates)
            totals["stale"] += len(outcome.stale)
            totals["shed"] += len(outcome.shed)
            totals["evicted"] += len(outcome.evicted)
            n_intervals += len(events)
        result = ServeResult(
            fixes=fixes, tick_durations_s=durations, n_intervals=n_intervals
        )

    return {
        "load": {
            "name": load.name,
            "n_sessions": load.n_sessions,
            "corpus_size": load.corpus_size,
            "stagger_ticks": load.stagger_ticks,
        },
        "fault_plan": {
            "name": fault_plan.name,
            "kind": fault_plan.kind,
            "rate": fault_plan.rate,
            "chaos_seed": fault_plan.chaos_seed,
            "scheduled_faults": scheduled_faults,
        },
        "throughput": {
            "n_intervals": result.n_intervals,
            "n_ticks": len(workload.ticks),
            "intervals_per_s": result.intervals_per_s,
            "p95_tick_ms": result.tick_percentile_ms(95.0),
        },
        "fault_accounting": totals,
        "fix_checksum": workload_checksum(result),
        "surviving_sessions": len(engine.sessions),
    }


def run_matrix(
    profile: MatrixProfile = FULL_PROFILE,
    seed: int = 7,
) -> Dict[str, Any]:
    """Run the whole sweep; return the ``BENCH_matrix.json`` document.

    Per environment the world is generated *twice* and the checksums
    compared, so every cell's ``bitwise_reproducible`` flag is evidence,
    not assertion.  Evaluation (accuracy, twin-confusion) runs once per
    (environment, motion mix) at the environment's full AP count —
    ``"paper-walk"`` is the bitwise-legacy workload, other mixes drive
    the same study through gait-scheduled walks — and serving runs per
    (load, fault) cell with freshly built services.  The per-environment
    record reports the profile's *first* mix (the baseline).
    """
    from ..sim.experiments import evaluate_systems, prepare_study

    environments: List[Dict[str, Any]] = []
    cells: List[Dict[str, Any]] = []
    started = time.perf_counter()

    for env_seed, spec in profile.environments:
        environment = generate_environment(spec, seed=env_seed)
        checksum = environment_checksum(environment)
        regenerated = environment_checksum(generate_environment(spec, seed=env_seed))
        reproducible = checksum == regenerated
        env_recorded = False

        for mix_name in profile.motion_mixes:
            study = prepare_study(
                seed=seed,
                n_training_traces=profile.n_training_traces,
                n_test_traces=profile.n_test_traces,
                trace_config=gait_trace_config(
                    mix_name, n_hops=profile.trace_hops
                ),
                hall=environment.hall,
                samples_per_location=profile.samples_per_location,
                training_samples=profile.training_samples,
            )
            census, twins = _census(study)
            results = evaluate_systems(study, spec.n_aps)
            moloc = results["moloc"]
            accuracy = {
                name: result.accuracy for name, result in results.items()
            }
            mean_error = {
                name: result.mean_error_m for name, result in results.items()
            }
            confusion = twin_confusion_rate(moloc.records, twins)

            if not env_recorded:
                env_recorded = True
                environments.append({
                    "name": spec.display_name,
                    "topology": spec.topology,
                    "env_seed": env_seed,
                    "spec": spec.to_dict(),
                    "n_locations": spec.n_locations,
                    "environment_checksum": checksum,
                    "bitwise_reproducible": reproducible,
                    "twin_census": census,
                    "motion_mix": mix_name,
                    "accuracy": accuracy,
                    "mean_error_m": mean_error,
                    "twin_confusion_rate": confusion,
                })

            for load in profile.loads:
                for fault_plan in profile.fault_plans:
                    cell = {
                        "environment": spec.display_name,
                        "topology": spec.topology,
                        "env_seed": env_seed,
                        "environment_checksum": checksum,
                        "bitwise_reproducible": reproducible,
                        "twin_free": census["twin_free"],
                        "motion_mix": mix_name,
                        "accuracy": accuracy,
                        "twin_confusion_rate": confusion,
                    }
                    cell.update(
                        _serve_cell(study, environment, load, fault_plan)
                    )
                    cells.append(cell)

    return {
        "report": "matrix",
        "format_version": MATRIX_FORMAT_VERSION,
        "profile": profile.name,
        "seed": seed,
        "study_scale": {
            "samples_per_location": profile.samples_per_location,
            "training_samples": profile.training_samples,
            "n_training_traces": profile.n_training_traces,
            "n_test_traces": profile.n_test_traces,
            "trace_hops": profile.trace_hops,
        },
        "n_environments": len(environments),
        "n_cells": len(cells),
        "environments": environments,
        "cells": cells,
        "elapsed_s": time.perf_counter() - started,
    }


_CELL_REQUIRED_KEYS = (
    "environment",
    "topology",
    "env_seed",
    "environment_checksum",
    "bitwise_reproducible",
    "twin_free",
    "accuracy",
    "twin_confusion_rate",
    "load",
    "fault_plan",
    "throughput",
    "fault_accounting",
    "fix_checksum",
)


def validate_matrix_document(document: Dict[str, Any]) -> List[str]:
    """Schema-check one matrix document; return the problems found.

    An empty list means the document is valid: correct report kind,
    every cell carries every required key, every environment verified
    bitwise-reproducible, and every environment's spec round-trips.
    CI gates on this (via the CLI exit code), so a regression in the
    artifact's shape or in determinism fails the build.
    """
    problems: List[str] = []
    if document.get("report") != "matrix":
        problems.append(f"not a matrix report: {document.get('report')!r}")
        return problems
    if document.get("format_version") not in _SUPPORTED_MATRIX_VERSIONS:
        problems.append(
            f"unsupported format_version {document.get('format_version')!r}"
        )
    cells = document.get("cells", [])
    if not isinstance(cells, list) or not cells:
        problems.append("document has no cells")
        return problems
    # The motion-mix label is required from version 3 on; older
    # documents predate the axis and stay valid without it.
    required_keys = _CELL_REQUIRED_KEYS
    if document.get("format_version", 0) >= 3:
        required_keys = required_keys + ("motion_mix",)
    for index, cell in enumerate(cells):
        for key in required_keys:
            if key not in cell:
                problems.append(f"cell {index} is missing {key!r}")
        if not cell.get("bitwise_reproducible", False):
            problems.append(
                f"cell {index} ({cell.get('environment')}) failed "
                "bitwise reproducibility"
            )
        throughput = cell.get("throughput", {})
        if throughput.get("n_intervals", 0) <= 0:
            problems.append(f"cell {index} served no intervals")
        accounting = cell.get("fault_accounting", {})
        if accounting.get("served", 0) <= 0:
            problems.append(f"cell {index} has no served fixes accounted")
    for index, environment in enumerate(document.get("environments", [])):
        spec_payload = environment.get("spec")
        try:
            EnvironmentSpec.from_dict(spec_payload)
        except (ValueError, KeyError, TypeError) as error:
            problems.append(f"environment {index} spec does not round-trip: {error}")
    return problems


def write_matrix_artifacts(
    document: Dict[str, Any],
    output: Path,
    specs_dir: Optional[Path] = None,
) -> None:
    """Write ``BENCH_matrix.json`` and, optionally, per-environment specs."""
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    if specs_dir is not None:
        specs_dir.mkdir(parents=True, exist_ok=True)
        for environment in document.get("environments", []):
            slug = (
                f"{environment['topology']}_seed{environment['env_seed']}.json"
            )
            (specs_dir / slug).write_text(
                json.dumps(environment["spec"], indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
