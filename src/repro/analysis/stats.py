"""Summary statistics and bootstrap confidence intervals.

The paper reports point estimates; a careful reproduction should also
say how stable they are.  :func:`summarize` produces the standard
five-number-style summary used in experiment reports, and
:func:`bootstrap_ci` puts a nonparametric confidence interval around any
statistic of a sample (accuracy, mean error, a quantile, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = ["SummaryStats", "summarize", "bootstrap_ci"]


@dataclass(frozen=True)
class SummaryStats:
    """The summary of one error sample.

    Attributes:
        n: Sample size.
        mean: Arithmetic mean.
        median: 50th percentile.
        p90: 90th percentile.
        maximum: Largest value.
    """

    n: int
    mean: float
    median: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.2f} median={self.median:.2f} "
            f"p90={self.p90:.2f} max={self.maximum:.2f}"
        )


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Summary statistics of a non-empty sample.

    Raises:
        ValueError: on an empty sample.
    """
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStats(
        n=int(array.size),
        mean=float(array.mean()),
        median=float(np.median(array)),
        p90=float(np.quantile(array, 0.9)),
        maximum=float(array.max()),
    )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for a statistic.

    Args:
        samples: The observed sample.
        statistic: Function of a 1-D array (default: the mean).
        confidence: Interval coverage, in (0, 1).
        n_resamples: Bootstrap resamples.
        seed: Seed for the resampling generator (results are
            deterministic per seed).

    Returns:
        ``(low, high)`` bounds of the interval.

    Raises:
        ValueError: on an empty sample or invalid parameters.
    """
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")

    rng = np.random.default_rng(seed)
    indices = rng.integers(0, array.size, size=(n_resamples, array.size))
    estimates = np.array([statistic(array[row]) for row in indices])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(estimates, alpha)),
        float(np.quantile(estimates, 1.0 - alpha)),
    )
