"""Motion benchmark: fixed vs speed-adaptive serving across gait mixes.

The paper's transition model is calibrated for one gait: every survey
walker moves at ~1.35 m/s, so the Eq. 5 offset interval ``beta`` = 1 m
absorbs exactly the offset scatter that gait produces.  Real populations
stroll, run, stand, and push carts, and each regime feeds the model
offsets scaled by the *wrong* stride: a runner's per-step distance is
~40% longer than the calibrated walk stride, so the measured offset
underestimates the hop and the fixed interval rejects the true
transition.

This bench sweeps ``{fixed-pedestrian, speed-adaptive}`` over the named
gait mixes in :data:`repro.sim.gait.MOTION_MIXES` and reports, per
cell:

* overall and per-regime exact-location accuracy and mean error;
* the twin-confusion rate (fixes landing exactly on the true location's
  fingerprint twin — the paper's failure mode);
* the online speed estimate's RMSE against the simulator's per-hop
  ground-truth speed (speed-adaptive runs only).

The committed gate (``BENCH_motion.json``) is evaluated on the
``mixed-gait`` mix: speed-adaptive mean error must stay within
:data:`GATE_ERROR_RATIO` of the fixed model's, and its twin-confusion
rate must be strictly lower.  ``cart-heavy`` is reported but not gated:
a wheeled hop emits no steps at all, so *no* step-frequency speed
estimate can recover it — the honest limitation section of this
subsystem (see ``docs/motion.md``).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Callable, Dict, List

import numpy as np

from ..motion.pedestrian import BodyProfile
from ..service import MoLocService
from ..sim.evaluation import LocalizationRecord
from ..sim.gait import gait_trace_config
from .ambiguity import analyze_ambiguity
from .matrix import twin_confusion_rate

__all__ = [
    "BENCH_MIXES",
    "GATE_ERROR_RATIO",
    "GATE_MIX",
    "SMOKE_MIXES",
    "run_motion_bench",
    "validate_motion_document",
]

GATE_MIX = "mixed-gait"
"""The mix the committed gate is evaluated on."""

GATE_ERROR_RATIO = 0.8
"""Speed-adaptive mean error must be <= this multiple of fixed's."""

BENCH_MIXES = ("paper-walk", "mixed-gait", "cart-heavy", "dwell-heavy")
"""Every named mix, swept in this order."""

SMOKE_MIXES = ("paper-walk", GATE_MIX)
"""The smoke subset: the paper baseline plus the gated mix.

Volumes are *not* reduced in smoke mode — the gate margin comes from a
well-trained motion database (sparse 40-trace databases are noisy enough
that neither model can beat the other), so shrinking volumes makes the
smoke verdict meaningless.  A single mix costs ~3 s; smoke trims the
sweep, not the science."""

_N_APS = 6


def _session_factory(
    study, config
) -> Callable[[object], MoLocService]:
    """Per-trace calibrated plain-service sessions under ``config``."""
    fingerprint_db = study.fingerprint_db(_N_APS)
    motion_db, _ = study.motion_db(_N_APS)

    def make_session(trace) -> MoLocService:
        service = MoLocService(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=config,
        )
        service._stride.step_length_m = trace.estimated_step_length_m
        service.calibrate_heading(
            [
                (hop.imu.compass_readings, hop.imu.true_course_deg)
                for hop in trace.hops[:2]
            ]
        )
        return service

    return make_session


def _drive(make_session, traces, plan) -> Dict[str, Any]:
    """Serve every trace; collect per-regime records and speed samples."""
    records: List[LocalizationRecord] = []
    by_regime: Dict[str, List[LocalizationRecord]] = defaultdict(list)
    speed_errors: List[float] = []
    for trace in traces:
        service = make_session(trace)
        fix = service.on_interval(trace.initial_fingerprint.rss)
        records.append(_record(plan, trace.true_start, fix, initial=True))
        for hop in trace.hops:
            fix = service.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            record = _record(plan, hop.true_to, fix, initial=False)
            records.append(record)
            # Legacy traces carry no regime label; they are the paper
            # walk by construction.
            by_regime[hop.regime or "walk"].append(record)
            estimator = service.speed_estimator
            if (
                estimator is not None
                and estimator.speed_mps is not None
                and hop.true_speed_mps is not None
                and hop.true_speed_mps > 0.0
            ):
                speed_errors.append(
                    estimator.speed_mps - hop.true_speed_mps
                )
    return {
        "records": records,
        "by_regime": dict(by_regime),
        "speed_errors": speed_errors,
    }


def _record(plan, true_id, fix, initial: bool) -> LocalizationRecord:
    error = plan.position_of(true_id).distance_to(
        plan.position_of(fix.location_id)
    )
    return LocalizationRecord(
        true_id=true_id,
        estimated_id=fix.location_id,
        error_m=error,
        used_motion=fix.used_motion,
        is_initial=initial,
    )


def _summary(records: List[LocalizationRecord]) -> Dict[str, Any]:
    errors = np.array([r.error_m for r in records])
    return {
        "n_fixes": len(records),
        "accuracy": sum(r.is_accurate for r in records) / len(records),
        "mean_error_m": float(errors.mean()),
        "max_error_m": float(errors.max()),
    }


def _system_cell(driven: Dict[str, Any], twins) -> Dict[str, Any]:
    speed_errors = driven["speed_errors"]
    return {
        **_summary(driven["records"]),
        "twin_confusion_rate": twin_confusion_rate(
            driven["records"], twins
        ),
        "per_regime": {
            regime: _summary(records)
            for regime, records in sorted(driven["by_regime"].items())
        },
        "speed_rmse_mps": (
            None
            if not speed_errors
            else float(np.sqrt(np.mean(np.square(speed_errors))))
        ),
        "speed_samples": len(speed_errors),
    }


def run_motion_bench(seed: int = 7, smoke: bool = False) -> Dict[str, Any]:
    """Sweep {fixed, speed-adaptive} x the named gait mixes.

    Returns the ``BENCH_motion.json`` document.  Every mix gets its own
    study (traces generated under that mix's gait schedule; survey and
    environment identical across mixes, so the twin census is shared),
    and both systems replay the *same* held-out walks through per-trace
    calibrated plain services — the only difference between the two
    columns is ``config.speed_adaptive``.
    """
    import time

    from ..sim.experiments import prepare_study

    n_training = 120
    n_test = 24
    n_hops = 15

    started = time.perf_counter()
    mixes: Dict[str, Any] = {}
    for mix in SMOKE_MIXES if smoke else BENCH_MIXES:
        # The database side reproduces the paper: surveyed and
        # crowdsourced by single-gait walkers.  Only the *served*
        # population walks the mix — the deployment story the subsystem
        # exists for.
        study = prepare_study(
            seed=seed,
            n_training_traces=n_training,
            n_test_traces=n_test,
            trace_config=gait_trace_config("paper-walk", n_hops=n_hops),
            test_trace_config=gait_trace_config(mix, n_hops=n_hops),
        )
        report = analyze_ambiguity(
            study.scenario.survey.database, study.scenario.plan
        )
        twins = report.twins
        fixed = _drive(
            _session_factory(study, study.config),
            study.test_traces,
            study.scenario.plan,
        )
        adaptive_config = dataclasses.replace(
            study.config, speed_adaptive=True
        )
        adaptive = _drive(
            _session_factory(study, adaptive_config),
            study.test_traces,
            study.scenario.plan,
        )
        mixes[mix] = {
            "n_twins": len(twins),
            "systems": {
                "fixed": _system_cell(fixed, twins),
                "speed_adaptive": _system_cell(adaptive, twins),
            },
        }

    gate_cell = mixes[GATE_MIX]["systems"]
    fixed_error = gate_cell["fixed"]["mean_error_m"]
    adaptive_error = gate_cell["speed_adaptive"]["mean_error_m"]
    fixed_twin = gate_cell["fixed"]["twin_confusion_rate"]
    adaptive_twin = gate_cell["speed_adaptive"]["twin_confusion_rate"]
    error_ok = adaptive_error <= GATE_ERROR_RATIO * fixed_error
    twin_ok = adaptive_twin < fixed_twin
    return {
        "report": "motion",
        "seed": seed,
        "smoke": smoke,
        "scale": {
            "n_training_traces": n_training,
            "n_test_traces": n_test,
            "trace_hops": n_hops,
            "n_aps": _N_APS,
        },
        "mixes": mixes,
        "gate": {
            "mix": GATE_MIX,
            "error_ratio_limit": GATE_ERROR_RATIO,
            "observed_error_ratio": (
                adaptive_error / fixed_error if fixed_error > 0 else None
            ),
            "twin_confusion_fixed": fixed_twin,
            "twin_confusion_adaptive": adaptive_twin,
            "error_ok": error_ok,
            "twin_ok": twin_ok,
            "passed": error_ok and twin_ok,
        },
        "limitations": [
            "cart-heavy is reported, not gated: wheeled hops emit no "
            "steps, so a step-frequency speed estimate cannot see the "
            "translation; the fixed and adaptive models both treat the "
            "hop as a dwell",
        ],
        "elapsed_s": time.perf_counter() - started,
    }


def validate_motion_document(document: Dict[str, Any]) -> List[str]:
    """Schema-check one motion document; return the problems found."""
    problems: List[str] = []
    if document.get("report") != "motion":
        problems.append(f"not a motion report: {document.get('report')!r}")
        return problems
    mixes = document.get("mixes", {})
    expected = SMOKE_MIXES if document.get("smoke") else BENCH_MIXES
    for mix in expected:
        if mix not in mixes:
            problems.append(f"mix {mix!r} is missing")
            continue
        systems = mixes[mix].get("systems", {})
        for system in ("fixed", "speed_adaptive"):
            cell = systems.get(system)
            if cell is None:
                problems.append(f"{mix}: system {system!r} is missing")
                continue
            if cell.get("n_fixes", 0) <= 0:
                problems.append(f"{mix}/{system}: no fixes recorded")
            # paper-walk runs the legacy generator (no gait labels, so
            # no ground-truth speed); cart-heavy hops may emit no steps.
            if system == "speed_adaptive" and mix == GATE_MIX:
                if cell.get("speed_rmse_mps") is None:
                    problems.append(
                        f"{mix}/{system}: no speed estimate recorded"
                    )
    gate = document.get("gate", {})
    if not gate.get("passed", False):
        problems.append(f"gate failed: {gate}")
    return problems
