"""Fingerprint-ambiguity analysis: find the twins in a database.

The paper's whole premise is that some location pairs are *fingerprint
twins* — far apart on the floor but close in signal space.  This module
quantifies that for any fingerprint database: every cross-location pair
is scored by its signal-space gap relative to its physical distance, and
pairs whose gap is small compared to the scan noise are reported as
twins.  Deployments use this to decide where more APs are needed; the
reproduction uses it to verify the simulated hall exhibits the paper's
phenomenon (e.g. its pairs 2/15, 10/27, 13/26).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..core.fingerprint import FingerprintDatabase
from ..env.floorplan import FloorPlan

__all__ = ["TwinPair", "AmbiguityReport", "analyze_ambiguity"]


@dataclass(frozen=True)
class TwinPair:
    """One cross-location pair scored for ambiguity.

    Attributes:
        location_a: Lower location id of the pair.
        location_b: Higher location id.
        signal_gap_db: Fingerprint dissimilarity (Eq. 1).
        physical_distance_m: Straight-line distance on the plan.
        confusion_risk: How confusable the pair is: physical distance per
            dB of signal gap.  High values mean a small signal
            perturbation causes a large localization error.
    """

    location_a: int
    location_b: int
    signal_gap_db: float
    physical_distance_m: float
    confusion_risk: float


@dataclass(frozen=True)
class AmbiguityReport:
    """The ambiguity analysis of one fingerprint database.

    Attributes:
        pairs: Every cross-location pair, most confusable first.
        twin_threshold_db: The signal-gap threshold used for
            :attr:`twins`.
    """

    pairs: List[TwinPair]
    twin_threshold_db: float

    @property
    def twins(self) -> List[TwinPair]:
        """Pairs whose signal gap is below the twin threshold."""
        return [p for p in self.pairs if p.signal_gap_db <= self.twin_threshold_db]

    def distant_twins(self, min_distance_m: float = 6.0) -> List[TwinPair]:
        """Twins that are also physically far apart — the dangerous ones.

        The paper's Fig. 8 threshold (errors over 6 m) is the default.
        """
        return [
            p for p in self.twins if p.physical_distance_m >= min_distance_m
        ]

    def risk_of(self, location_a: int, location_b: int) -> TwinPair:
        """The scored pair for two specific locations.

        Raises:
            KeyError: if the pair is not in the report.
        """
        a, b = min(location_a, location_b), max(location_a, location_b)
        for pair in self.pairs:
            if pair.location_a == a and pair.location_b == b:
                return pair
        raise KeyError(f"no pair ({location_a}, {location_b}) in report")


def analyze_ambiguity(
    database: FingerprintDatabase,
    plan: FloorPlan,
    twin_threshold_db: Optional[float] = None,
) -> AmbiguityReport:
    """Score every cross-location pair of a fingerprint database.

    Args:
        database: The fingerprint database to analyze.
        plan: Floor plan supplying physical distances.
        twin_threshold_db: Signal gap below which a pair counts as twins.
            Defaults to the median per-AP survey noise scaled to the
            vector norm (i.e. a gap indistinguishable from scan noise)
            when the database carries sample statistics, else 6 dB.

    Raises:
        ValueError: if the database has fewer than two locations.
    """
    ids = database.location_ids
    if len(ids) < 2:
        raise ValueError("ambiguity analysis needs at least two locations")

    if twin_threshold_db is None:
        twin_threshold_db = _default_threshold(database)

    pairs = []
    for a, b in itertools.combinations(ids, 2):
        gap = database.fingerprint_of(a).dissimilarity(database.fingerprint_of(b))
        distance = plan.distance_between(a, b)
        risk = distance / max(gap, 1e-9)
        pairs.append(
            TwinPair(
                location_a=a,
                location_b=b,
                signal_gap_db=gap,
                physical_distance_m=distance,
                confusion_risk=risk,
            )
        )
    pairs.sort(key=lambda p: (-p.confusion_risk, p.location_a, p.location_b))
    return AmbiguityReport(pairs=pairs, twin_threshold_db=twin_threshold_db)


def _default_threshold(database: FingerprintDatabase) -> float:
    """A twin threshold matched to the database's own scan noise."""
    stds = []
    for location_id in database.location_ids:
        try:
            stds.extend(database.std_of(location_id))
        except KeyError:
            return 6.0
    if not stds:
        return 6.0
    stds.sort()
    median_std = stds[len(stds) // 2]
    # Expected norm of a noise vector with per-AP std sigma is
    # sigma * sqrt(2 n) for the difference of two scans.
    return median_std * (2.0 * database.n_aps) ** 0.5
