"""Red-team sweep: adversarial attacks crossed with the trust defense.

The adversarial injectors in :mod:`repro.sim.adversary` forge what a
deployment actually sees — rogue BSSIDs, re-powered transmitters,
replayed scans, spoofed compasses — and this module replays the held-out
walks through each attack against three systems:

* ``plain`` — :class:`~repro.service.MoLocService`, no defenses at all;
* ``resilient`` — :class:`~repro.robustness.ResilientMoLocService`
  without a trust monitor (PR-4's sanitizer/watchdog stack only);
* ``defended`` — the resilient service with an
  :class:`~repro.robustness.ApTrustMonitor` wired in.

Each cell reports exact-location accuracy, mean error, and the
twin-confusion rate — the miss rate restricted to the fingerprint-twin
locations the paper's Fig. 8 extracts (where plain WiFi matching errs
beyond 6 m on clean data).  The headline gate: under a single rogue AP
appearing mid-walk, the defended mean error must stay within 1.5x the
clean baseline, while on fault-free walks the defense must cost nothing
— zero maskings, zero repairs, and a bitwise-identical fix stream.

The sweep is deliberately honest about what trust scoring cannot catch;
see ``limitations`` in the emitted document.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.baselines import WiFiFingerprintingLocalizer
from ..motion.pedestrian import BodyProfile
from ..robustness import ApTrustMonitor, FaultType, ResilientMoLocService
from ..service import MoLocService
from ..sim.adversary import (
    DEFAULT_ROGUE_DBM,
    inject_ap_repower,
    inject_imu_spoof,
    inject_rogue_ap,
    inject_scan_replay,
)
from ..sim.evaluation import (
    ambiguous_location_ids,
    evaluate_localizer,
    evaluate_service,
)

__all__ = ["run_redteam", "GATE_RATIO"]

#: The bench gate: defended mean error under the single-rogue-AP attack
#: must stay within this multiple of the clean defended baseline.
GATE_RATIO = 1.5

#: Counters the resilient service exposes for trust-layer activity.
_TRUST_COUNTERS = (
    "service.trust.masked_intervals",
    "service.trust.scan_demotions",
    "service.trust.repairs",
    "service.trust.quarantines",
    "service.trust.paroles",
)


class _Recorder:
    """Service wrapper tallying health faults and retaining the service."""

    def __init__(self, service, faults: Counter, services: list) -> None:
        self._service = service
        self._faults = faults
        services.append(service)

    def on_interval(self, scan, imu=None):
        fix = self._service.on_interval(scan, imu)
        self._faults.update(fix.health.faults)
        return fix


def _session_factory(
    study, cls, trust_factory=None, **kwargs
) -> Callable[[object], object]:
    fingerprint_db = study.fingerprint_db(6)
    motion_db, _ = study.motion_db(6)

    def make_session(trace):
        extra = dict(kwargs)
        if trust_factory is not None:
            # One monitor per session: trust state is per-user, and a
            # shared instance would leak quarantines across walks.
            extra["trust"] = trust_factory()
        service = cls(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=study.config,
            **extra,
        )
        service._stride.step_length_m = trace.estimated_step_length_m
        service.calibrate_heading(
            [
                (hop.imu.compass_readings, hop.imu.true_course_deg)
                for hop in trace.hops[:2]
            ]
        )
        return service

    return make_session


def _fix_stream(make_session, traces) -> List[tuple]:
    """Every observable field of every fix, for bitwise comparisons."""
    stream = []
    for trace in traces:
        service = make_session(trace)
        fix = service.on_interval(trace.initial_fingerprint.rss)
        stream.append(_fix_tuple(fix))
        for hop in trace.hops:
            fix = service.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            stream.append(_fix_tuple(fix))
    return stream


def _fix_tuple(fix) -> tuple:
    return (
        fix.location_id,
        fix.health.mode.value,
        tuple(fix.health.faults),
        fix.health.confidence,
        fix.health.masked_ap_ids,
        fix.health.recalibrated,
    )


def _twin_confusion_rate(result, twin_ids) -> Optional[float]:
    """Miss rate restricted to the fingerprint-twin locations."""
    at_twins = [r for r in result.records if r.true_id in twin_ids]
    if not at_twins:
        return None
    return sum(1 for r in at_twins if not r.is_accurate) / len(at_twins)


def _system_cell(result, twin_ids) -> Dict[str, object]:
    return {
        "accuracy": result.accuracy,
        "mean_error_m": result.mean_error_m,
        "max_error_m": result.max_error_m,
        "twin_confusion_rate": _twin_confusion_rate(result, twin_ids),
    }


def _conditions(traces, smoke: bool) -> List[Tuple[str, dict, list]]:
    """(label, attack description, degraded traces) per condition."""
    conditions = [
        ("clean", {"kind": "none"}, list(traces)),
        (
            "rogue_ap5_onset2",
            {
                "kind": "rogue_ap",
                "ap_id": 5,
                "onset_interval": 2,
                "forged_dbm": DEFAULT_ROGUE_DBM,
                "note": "gate scenario: forged BSSID appears mid-walk",
            },
            [inject_rogue_ap(t, 5, 2) for t in traces],
        ),
    ]
    if smoke:
        return conditions
    conditions += [
        (
            "rogue_ap0_onset2",
            {
                "kind": "rogue_ap",
                "ap_id": 0,
                "onset_interval": 2,
                "forged_dbm": DEFAULT_ROGUE_DBM,
                "note": "floor-adjacent forge; known partial blind spot",
            },
            [inject_rogue_ap(t, 0, 2) for t in traces],
        ),
        (
            "rogue_ap5_onset0",
            {
                "kind": "rogue_ap",
                "ap_id": 5,
                "onset_interval": 0,
                "forged_dbm": DEFAULT_ROGUE_DBM,
                "note": "cold capture: rogue present from the first scan",
            },
            [inject_rogue_ap(t, 5, 0) for t in traces],
        ),
        (
            "repower_ap5_shift20_onset2",
            {
                "kind": "ap_repower",
                "ap_id": 5,
                "onset_interval": 2,
                "shift_db": 20.0,
            },
            [inject_ap_repower(t, 5, 2, 20.0) for t in traces],
        ),
        (
            "replay_onset3",
            {
                "kind": "scan_replay",
                "onset_interval": 3,
                "source_interval": 0,
                "note": "self-consistent stale scans; trust-invisible",
            },
            [inject_scan_replay(t, 3, 0) for t in traces],
        ),
        (
            "imu_spoof_onset1",
            {
                "kind": "imu_spoof",
                "onset_hop": 1,
                "note": "caught by the heading-rate veto, not trust",
            },
            [inject_imu_spoof(t, 1) for t in traces],
        ),
    ]
    return conditions


def run_redteam(
    study,
    smoke: bool = False,
    traces: Optional[Sequence] = None,
) -> Dict[str, object]:
    """Sweep attacks x systems and return the report document.

    Args:
        study: A prepared :class:`~repro.sim.experiments.Study`.
        smoke: Restrict the sweep to the clean and gate conditions over a
            handful of walks, and check defense *mechanics* (clean walks
            untouched, rogue walks improved) instead of the calibrated
            1.5x gate, which only means something at full scale.
        traces: Override the evaluated walks (defaults to the study's
            held-out test set, or its first six in smoke mode).

    Returns:
        A JSON-plain document; see ``benchmarks/bench_adversarial.py``
        for the committed shape.
    """
    if traces is None:
        traces = study.test_traces[:6] if smoke else study.test_traces
    traces = list(traces)
    plan = study.scenario.plan
    fingerprint_db = study.fingerprint_db(6)

    # Fig. 8's convention: twin locations are where plain WiFi matching
    # errs beyond 6 m on clean walks.
    wifi_clean = evaluate_localizer(
        WiFiFingerprintingLocalizer(fingerprint_db), traces, plan
    )
    twin_ids = ambiguous_location_ids(wifi_clean, threshold_m=6.0)

    make_plain = _session_factory(study, MoLocService)
    make_resilient = _session_factory(
        study, ResilientMoLocService, plan=plan
    )

    def make_defended_factory():
        return _session_factory(
            study,
            ResilientMoLocService,
            plan=plan,
            trust_factory=lambda: ApTrustMonitor(fingerprint_db.n_aps),
        )

    defense = ApTrustMonitor(fingerprint_db.n_aps)
    document: Dict[str, object] = {
        "schema": 1,
        "smoke": smoke,
        "seed": study.scenario.seed,
        "n_traces": len(traces),
        "n_intervals": sum(1 + t.n_hops for t in traces),
        "n_twin_locations": len(twin_ids),
        "gate_ratio": GATE_RATIO,
        "defense": defense.config,
        "conditions": {},
        "limitations": [
            "A rogue AP present from the very first scan can capture the "
            "initial estimate; residual attribution then blames honest "
            "APs (rogue_ap5_onset0).",
            "Forging an AP whose honest readings sit near the RSS floor "
            "produces small residuals and evades the repair threshold "
            "(rogue_ap0_onset2).",
            "Replayed whole scans are self-consistent with some real "
            "location, so per-AP residuals stay small; trust scoring "
            "does not catch them (replay_onset3).",
            "Re-powering shifts under suspect_residual_db (~16 dB) are "
            "indistinguishable from honest drift by construction.",
        ],
    }

    clean_defended_mean: Optional[float] = None
    for label, attack, degraded in _conditions(traces, smoke):
        plain = evaluate_service(make_plain, degraded, plan)
        resilient = evaluate_service(make_resilient, degraded, plan)
        faults: Counter = Counter()
        services: list = []
        make_defended = make_defended_factory()
        defended = evaluate_service(
            lambda trace: _Recorder(make_defended(trace), faults, services),
            degraded,
            plan,
        )
        trust_events = {
            name.rsplit(".", 1)[1]: sum(
                s.metrics.counter(name).value for s in services
            )
            for name in _TRUST_COUNTERS
        }
        if label == "clean":
            clean_defended_mean = defended.mean_error_m
        cell = {
            "attack": attack,
            "systems": {
                "plain": _system_cell(plain, twin_ids),
                "resilient": _system_cell(resilient, twin_ids),
                "defended": _system_cell(defended, twin_ids),
            },
            "defended_rogue_masked_intervals": faults[
                FaultType.ROGUE_AP_MASKED
            ],
            "trust_events": trust_events,
            "defended_over_clean_ratio": (
                defended.mean_error_m / clean_defended_mean
                if clean_defended_mean
                else None
            ),
        }
        document["conditions"][label] = cell

    # Fault-free fast path: the trust layer must be a bitwise no-op.
    clean_cell = document["conditions"]["clean"]
    clean_events = clean_cell["trust_events"]
    clean_untouched = (
        clean_events["masked_intervals"] == 0
        and clean_events["repairs"] == 0
        and clean_events["quarantines"] == 0
        and clean_events["scan_demotions"] == 0
    )
    streams_identical = _fix_stream(
        make_resilient, traces
    ) == _fix_stream(make_defended_factory(), traces)
    document["clean_defense_untouched"] = clean_untouched
    document["clean_fix_stream_bitwise_identical"] = streams_identical

    gate_cell = document["conditions"]["rogue_ap5_onset2"]
    gate_ratio = gate_cell["defended_over_clean_ratio"]
    if smoke:
        # Mechanics only: the defense engages and helps at small scale.
        passed = (
            clean_untouched
            and streams_identical
            and gate_cell["defended_rogue_masked_intervals"] > 0
            and gate_cell["systems"]["defended"]["mean_error_m"]
            < gate_cell["systems"]["resilient"]["mean_error_m"]
        )
        document["gate"] = {
            "mode": "smoke",
            "passed": passed,
        }
    else:
        passed = (
            clean_untouched
            and streams_identical
            and gate_ratio is not None
            and gate_ratio <= GATE_RATIO
        )
        document["gate"] = {
            "mode": "full",
            "observed_ratio": gate_ratio,
            "threshold_ratio": GATE_RATIO,
            "passed": passed,
        }
    return document
