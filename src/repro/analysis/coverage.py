"""Deployment coverage analysis: is every location well served?

Complements the ambiguity report: ambiguity asks whether locations are
*distinguishable*, coverage asks whether they are *heard* at all.  For
each reference location the report computes the strongest and mean RSS
across the deployment's APs and how many APs are above a usable level;
the weakest locations are where fingerprints degenerate toward the
sensitivity floor and any localization method struggles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.fingerprint import FingerprintDatabase
from ..radio.propagation import SENSITIVITY_FLOOR_DBM

__all__ = ["LocationCoverage", "CoverageReport", "analyze_coverage"]


@dataclass(frozen=True)
class LocationCoverage:
    """Coverage at one reference location.

    Attributes:
        location_id: The location.
        strongest_rss_dbm: Best per-AP RSS in its fingerprint.
        mean_rss_dbm: Mean across APs.
        usable_aps: APs heard above the usable threshold.
    """

    location_id: int
    strongest_rss_dbm: float
    mean_rss_dbm: float
    usable_aps: int


@dataclass(frozen=True)
class CoverageReport:
    """The coverage analysis of one fingerprint database.

    Attributes:
        locations: Per-location coverage, weakest (by strongest RSS) first.
        usable_threshold_dbm: RSS above which an AP counts as usable.
    """

    locations: List[LocationCoverage]
    usable_threshold_dbm: float

    @property
    def weakest(self) -> LocationCoverage:
        """The worst-served location."""
        return self.locations[0]

    def underserved(self, min_usable_aps: int = 3) -> List[LocationCoverage]:
        """Locations heard by fewer than ``min_usable_aps`` usable APs."""
        return [c for c in self.locations if c.usable_aps < min_usable_aps]

    def coverage_of(self, location_id: int) -> LocationCoverage:
        """Coverage of a specific location.

        Raises:
            KeyError: if the location is not in the report.
        """
        for entry in self.locations:
            if entry.location_id == location_id:
                return entry
        raise KeyError(f"no location {location_id} in coverage report")


def analyze_coverage(
    database: FingerprintDatabase,
    usable_threshold_dbm: float = -85.0,
) -> CoverageReport:
    """Score every location's radio coverage from its fingerprint.

    Args:
        database: The surveyed fingerprint database.
        usable_threshold_dbm: RSS above which an AP meaningfully
            contributes to discrimination; readings near the sensitivity
            floor are mostly noise.

    Raises:
        ValueError: if the threshold is at or below the sensitivity floor.
    """
    if usable_threshold_dbm <= SENSITIVITY_FLOOR_DBM:
        raise ValueError(
            f"usable threshold must exceed the {SENSITIVITY_FLOOR_DBM} dBm floor"
        )
    locations = []
    for location_id in database.location_ids:
        rss = database.fingerprint_of(location_id).rss
        locations.append(
            LocationCoverage(
                location_id=location_id,
                strongest_rss_dbm=max(rss),
                mean_rss_dbm=sum(rss) / len(rss),
                usable_aps=sum(1 for v in rss if v > usable_threshold_dbm),
            )
        )
    locations.sort(key=lambda c: (c.strongest_rss_dbm, c.location_id))
    return CoverageReport(
        locations=locations, usable_threshold_dbm=usable_threshold_dbm
    )
