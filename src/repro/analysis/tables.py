"""Plain-text rendering of result tables and CDF series.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from .cdf import EmpiricalCdf

__all__ = ["format_table", "format_cdf_series"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A fixed-width text table with a header separator.

    Cells are stringified; floats keep two decimals.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rendered)) if rendered
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered
    )
    return "\n".join(lines)


def format_cdf_series(
    label: str, cdf: EmpiricalCdf, points: Sequence[float]
) -> str:
    """One labelled CDF series evaluated at the given x points.

    Mirrors how the paper's figures are read: "P(error <= x) at x = ...".
    """
    cells = "  ".join(
        f"{x:g}:{cdf.probability_at(x):.2f}" for x in points
    )
    return f"{label:>8s}  {cells}"
