"""Empirical cumulative distribution functions for the paper's CDF figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["EmpiricalCdf"]


@dataclass(frozen=True)
class EmpiricalCdf:
    """The empirical CDF of a sample.

    Attributes:
        values: Sorted sample values.
    """

    values: np.ndarray

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EmpiricalCdf":
        """Build the CDF of a non-empty sample."""
        array = np.asarray(samples, dtype=float)
        if array.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        return cls(values=np.sort(array))

    def probability_at(self, x: float) -> float:
        """``P(X <= x)`` under the empirical distribution."""
        return float(np.searchsorted(self.values, x, side="right")) / self.values.size

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) of the sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        """The sample median."""
        return self.quantile(0.5)

    @property
    def maximum(self) -> float:
        """The largest sample value."""
        return float(self.values[-1])

    def curve(self, n_points: int = 50) -> Tuple[np.ndarray, np.ndarray]:
        """``(x, P(X <= x))`` arrays for plotting or printing the CDF."""
        if n_points < 2:
            raise ValueError(f"need at least 2 curve points, got {n_points}")
        xs = np.linspace(0.0, self.maximum, n_points)
        ps = np.array([self.probability_at(x) for x in xs])
        return xs, ps
