"""The chaos harness: drive a serving engine through a fault schedule.

:class:`ChaosHarness` wraps a
:class:`~repro.serving.engine.BatchedServingEngine` and executes a
:class:`~repro.chaos.plan.FaultPlan` against it, tick by tick:

* **message faults** (drop / duplicate / reorder / corrupt / truncate)
  are applied to the event list *before* the engine sees it — the
  harness plays the flaky transport;
* **adversarial faults** (rogue-AP forgery, AP repower, scan replay,
  IMU spoofing) are applied the same way, but with *plausible* payload
  rewrites (see :mod:`repro.sim.adversary`) instead of garbage — the
  harness plays the attacker, and the defense under test is the trust
  layer, not the sanitizer;
* **database churn faults** (env-ap-die / env-ap-repower / env-drift)
  activate a persistent :class:`EnvironmentOverlay`: from the scheduled
  tick onward every session's honest scan is re-sampled from the
  *changed* field while the serving database still describes the old
  one — the harness plays a world that moved out from under the survey
  (the defense under test is epochal database refresh, not any
  per-session machinery);
* **phase faults** (raise / latency) are delivered through the engine's
  ``fault_injector`` hook, firing inside the targeted serving phase for
  the targeted session — the harness plays the failing dependency;
* **latency** is modeled by skewing the engine's injected clock forward
  instead of sleeping, so chaos runs are fast *and* deadline shedding
  triggers deterministically.

Every fault actually applied is counted in the engine's own metrics
registry (``chaos.injected.<kind>``), so one
``engine.metrics_snapshot()`` documents the storm and the response —
quarantines, sheds, evictions — side by side.  Every scheduled fault is
accounted for: one that never fires — its victim has no event, is
quarantined away, is scan-less, or its injection point is never reached
that tick (e.g. a match-phase RAISE for an interval with no matchable
fingerprint) — counts as ``chaos.skipped``, so the sum of
``chaos.injected.*`` and ``chaos.skipped`` equals the number of faults
the plan scheduled for the ticks served.

The harness never reaches into the engine's internals: everything runs
through the same public seams (events in, injector hook, clock) a
production transport would use, which is what makes the central chaos
invariant testable — *an engine under faults is never silently wrong*;
every affected answer is flagged degraded, quarantined, or absent.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.fingerprint import RSS_CEILING_DBM, RSS_FLOOR_DBM
from ..db.epochs import ApRemoved, ApRepowered, DriftDelta, Update
from ..observability import MetricsRegistry
from ..serving.engine import BatchedServingEngine, IntervalEvent, TickOutcome
from ..sim.adversary import forge_rogue_reading, shift_ap_reading, spoof_compass
from .plan import (
    ADVERSARY_KINDS,
    CLUSTER_KINDS,
    DB_CHURN_KINDS,
    MESSAGE_KINDS,
    PHASE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ChaosError",
    "ChaosHarness",
    "EnvironmentOverlay",
    "apply_transport_faults",
]


class ChaosError(RuntimeError):
    """The exception injected by RAISE faults (a session-scoped failure)."""


def _corrupt_scan(spec: FaultSpec, scan: Sequence[float]) -> List[float]:
    """Deterministic garbage of the original length.

    Mixes the three corruption classes the sanitizer distinguishes:
    non-finite readings, physically impossible powers, and
    below-the-floor values.  Seeded from the fault's identity, so the
    same plan corrupts the same way on every run.
    """
    rng = random.Random(f"{spec.tick}:{spec.session_id}:corrupt")
    garbage = (float("nan"), float("inf"), 20.0, -200.0)
    return [rng.choice(garbage) for _ in scan]


class EnvironmentOverlay:
    """Persistent field-truth changes accumulated by DB_CHURN faults.

    A churn fault does not rewrite one victim's payload; it changes the
    *environment* — from its scheduled tick onward, every session's
    honest scan reads the changed field while the serving database
    still describes the old one.  The overlay holds the active changes
    and applies them, in activation order, to each delivered scan.

    The overlay is also the churn's ground truth for repair:
    :meth:`repair_updates` maps each active change to the
    :mod:`repro.db.epochs` update that folds the same change into the
    database, so advancing an epoch with exactly those updates is the
    "a surveyor re-measured the changed field" experiment the staleness
    benchmark runs.
    """

    def __init__(self) -> None:
        self._churn: List[FaultSpec] = []

    def __len__(self) -> int:
        return len(self._churn)

    @property
    def active(self) -> Sequence[FaultSpec]:
        """The activated churn specs, in activation order."""
        return tuple(self._churn)

    def activate(self, spec: FaultSpec) -> None:
        """Make one scheduled churn fault part of the field truth.

        Raises:
            ValueError: for a spec that is not a DB_CHURN kind.
        """
        if spec.kind not in DB_CHURN_KINDS:
            raise ValueError(
                f"{spec.kind.value} is not a DB churn kind; the overlay "
                "only models environment-truth changes"
            )
        self._churn.append(spec)

    def apply_scan(self, scan: Sequence[float]) -> List[float]:
        """One honest scan as the *changed* field would produce it."""
        out = [float(v) for v in scan]
        for spec in self._churn:
            if spec.kind is FaultKind.ENV_AP_DIE:
                if 0 <= spec.ap_id < len(out):
                    out[spec.ap_id] = RSS_FLOOR_DBM
            elif spec.kind is FaultKind.ENV_AP_REPOWER:
                if 0 <= spec.ap_id < len(out):
                    out = shift_ap_reading(out, spec.ap_id, spec.magnitude)
            elif spec.kind is FaultKind.ENV_DRIFT:
                out = [
                    (
                        v
                        if v <= RSS_FLOOR_DBM
                        else min(
                            RSS_CEILING_DBM,
                            max(RSS_FLOOR_DBM, v + spec.magnitude),
                        )
                    )
                    for v in out
                ]
        return out

    def apply_event(self, event: IntervalEvent) -> IntervalEvent:
        """The event as delivered from the changed environment."""
        if event.scan is None or not self._churn:
            return event
        return IntervalEvent(
            session_id=event.session_id,
            scan=self.apply_scan(event.scan),
            imu=event.imu,
            sequence=event.sequence,
        )

    def repair_updates(self, n_aps: int) -> List[Update]:
        """The database updates that fold the active churn back in.

        Args:
            n_aps: The deployment's AP vector length (drift deltas are
                per-AP offset vectors).
        """
        updates: List[Update] = []
        for spec in self._churn:
            if spec.kind is FaultKind.ENV_AP_DIE:
                updates.append(ApRemoved(ap_id=spec.ap_id))
            elif spec.kind is FaultKind.ENV_AP_REPOWER:
                updates.append(
                    ApRepowered(ap_id=spec.ap_id, shift_db=spec.magnitude)
                )
            elif spec.kind is FaultKind.ENV_DRIFT:
                updates.append(
                    DriftDelta(offsets_db=[spec.magnitude] * n_aps)
                )
        return updates


def apply_transport_faults(
    plan: FaultPlan,
    tick_index: int,
    events: Sequence[IntervalEvent],
    pending: List[IntervalEvent],
    scan_history: Dict[str, List[float]],
    injected: Dict[FaultKind, object],
    skipped,
    overlay: Optional[EnvironmentOverlay] = None,
) -> List[IntervalEvent]:
    """Rewrite one tick's event batch per the plan's transport faults.

    The shared front door of both the engine-level and the cluster
    chaos harness: DB_CHURN specs scheduled for ``tick_index`` activate
    on the ``overlay`` (skipped when no overlay is given) and the
    changed field rewrites every *fresh* scan; then redeliveries from
    earlier duplicate/reorder faults join — carrying the bytes of their
    original delivery, a replayed wire message does not re-sample the
    field — and every MESSAGE_KINDS / ADVERSARY_KINDS spec rewrites (or
    removes, or re-queues) its victim's event.  ``pending`` and
    ``scan_history`` are mutated in place — they are harness state;
    ``scan_history`` feeds REPLAY_SCAN with each session's most recent
    previously *delivered* scan.  Every handled spec lands in exactly
    one of ``injected`` / ``skipped``, preserving the chaos accounting
    invariant.
    """
    for spec in plan.faults_at(tick_index):
        if spec.kind not in DB_CHURN_KINDS:
            continue
        if overlay is None:
            skipped.inc()
        else:
            overlay.activate(spec)
            injected[spec.kind].inc()
    if overlay is not None and len(overlay):
        mutable = [overlay.apply_event(event) for event in events]
    else:
        mutable = list(events)

    # Redeliveries from earlier duplicate/reorder faults join the
    # first tick whose batch has room for their session (one event
    # per session per tick).
    if pending:
        present = {event.session_id for event in mutable}
        still_pending: List[IntervalEvent] = []
        for event in pending:
            if event.session_id in present:
                still_pending.append(event)
            else:
                mutable.append(event)
                present.add(event.session_id)
        pending[:] = still_pending

    for spec in plan.faults_at(tick_index):
        if spec.kind not in MESSAGE_KINDS and spec.kind not in ADVERSARY_KINDS:
            continue
        slot = next(
            (
                index
                for index, event in enumerate(mutable)
                if event.session_id == spec.session_id
            ),
            None,
        )
        if slot is None:
            skipped.inc()
            continue
        event = mutable[slot]
        if spec.kind is FaultKind.DROP_MESSAGE:
            del mutable[slot]
        elif spec.kind is FaultKind.DUPLICATE_MESSAGE:
            pending.append(event)
        elif spec.kind is FaultKind.REORDER_MESSAGE:
            del mutable[slot]
            pending.append(event)
        elif spec.kind is FaultKind.CORRUPT_SCAN:
            if event.scan is None:
                skipped.inc()
                continue
            mutable[slot] = IntervalEvent(
                session_id=event.session_id,
                scan=_corrupt_scan(spec, event.scan),
                imu=event.imu,
                sequence=event.sequence,
            )
        elif spec.kind is FaultKind.TRUNCATE_SCAN:
            if event.scan is None:
                skipped.inc()
                continue
            scan = list(event.scan)
            mutable[slot] = IntervalEvent(
                session_id=event.session_id,
                scan=scan[: max(1, len(scan) // 2)],
                imu=event.imu,
                sequence=event.sequence,
            )
        elif spec.kind in (FaultKind.ROGUE_AP, FaultKind.AP_REPOWER):
            # The forged transmitter (or repowered AP) needs a scan to
            # strike and a slot that exists in it.
            if event.scan is None or not 0 <= spec.ap_id < len(event.scan):
                skipped.inc()
                continue
            rewrite = (
                forge_rogue_reading(event.scan, spec.ap_id, spec.magnitude)
                if spec.kind is FaultKind.ROGUE_AP
                else shift_ap_reading(event.scan, spec.ap_id, spec.magnitude)
            )
            mutable[slot] = IntervalEvent(
                session_id=event.session_id,
                scan=rewrite,
                imu=event.imu,
                sequence=event.sequence,
            )
        elif spec.kind is FaultKind.REPLAY_SCAN:
            # The attacker can only replay a capture that exists: the
            # victim must have had a scan delivered earlier, and must
            # carry a scan now for the replay to replace.
            captured = scan_history.get(spec.session_id)
            if event.scan is None or captured is None:
                skipped.inc()
                continue
            mutable[slot] = IntervalEvent(
                session_id=event.session_id,
                scan=list(captured),
                imu=event.imu,
                sequence=event.sequence,
            )
        elif spec.kind is FaultKind.SPOOF_IMU:
            if event.imu is None:
                skipped.inc()
                continue
            mutable[slot] = IntervalEvent(
                session_id=event.session_id,
                scan=event.scan,
                imu=spoof_compass(event.imu, spec.magnitude),
                sequence=event.sequence,
            )
        injected[spec.kind].inc()

    # Record what each session's scan looked like as delivered, so a
    # later REPLAY_SCAN replays what actually went over the wire.
    for event in mutable:
        if event.scan is not None:
            scan_history[event.session_id] = [float(v) for v in event.scan]
    return mutable


class ChaosHarness:
    """Runs an engine under a fault schedule.

    Args:
        engine: The engine under test.  The harness installs itself as
            the engine's ``fault_injector`` and wraps its ``clock``;
            both are restored by :meth:`uninstall`.
        plan: The fault schedule.  Tick indices in the plan are engine
            tick indices — a harness attached to a mid-life engine
            applies the faults scheduled for the ticks it actually
            serves.
        metrics: Registry for the injection counters; defaults to the
            *engine's* registry so the storm and the response share one
            ``metrics_snapshot`` document.

    Raises:
        ValueError: if the engine already has a fault injector.
    """

    def __init__(
        self,
        engine: BatchedServingEngine,
        plan: FaultPlan,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if engine.fault_injector is not None:
            raise ValueError(
                "engine already has a fault injector; refusing to overwrite"
            )
        self.engine = engine
        self.plan = plan
        self.metrics = metrics if metrics is not None else engine.metrics
        self._skew_s = 0.0
        self._pending: List[IntervalEvent] = []
        self._scan_history: Dict[str, List[float]] = {}
        #: The accumulated environment-truth changes (DB churn faults).
        #: Exposed so a driver can fold the matching repairs into an
        #: epoch advance (``overlay.repair_updates(n_aps)``).
        self.overlay = EnvironmentOverlay()
        #: The events the engine actually received last tick, after the
        #: message faults rewrote the batch.  The returned ``fixes``
        #: align with this list, not with the caller's original one.
        self.last_delivered: List[IntervalEvent] = []
        self._fired_phase_faults: set = set()
        self._base_clock = engine.clock
        engine.clock = self._clock
        engine.fault_injector = self._inject
        self._c_injected: Dict[FaultKind, object] = {
            kind: self.metrics.counter(f"chaos.injected.{kind.value}")
            for kind in FaultKind
        }
        self._c_skipped = self.metrics.counter("chaos.skipped")
        self._c_unroutable = self.metrics.counter("chaos.unroutable")

    @property
    def clock_skew_s(self) -> float:
        """Accumulated injected latency (seconds of clock skew)."""
        return self._skew_s

    @property
    def pending_redeliveries(self) -> int:
        """Events held for later delivery (duplicates and reorders)."""
        return len(self._pending)

    def uninstall(self) -> None:
        """Detach from the engine (restore its clock and injector)."""
        self.engine.clock = self._base_clock
        self.engine.fault_injector = None

    def _clock(self) -> float:
        return self._base_clock() + self._skew_s

    # ------------------------------------------------------------------
    # Phase faults (delivered through the engine's injector hook)
    # ------------------------------------------------------------------

    def _inject(self, phase: str, session_id: str) -> None:
        for spec in self.plan.faults_at(self.engine.tick_index):
            if spec.session_id != session_id or spec.phase != phase:
                continue
            if spec.kind is FaultKind.LATENCY:
                self._skew_s += spec.magnitude
                self._fired_phase_faults.add(spec)
                self._c_injected[spec.kind].inc()
            elif spec.kind is FaultKind.RAISE:
                self._fired_phase_faults.add(spec)
                self._c_injected[spec.kind].inc()
                raise ChaosError(
                    f"injected failure in {phase!r} for session "
                    f"{session_id!r} (tick {spec.tick})"
                )

    # ------------------------------------------------------------------
    # Message faults (applied to the event list before the tick)
    # ------------------------------------------------------------------

    def _apply_message_faults(
        self, tick_index: int, events: Sequence[IntervalEvent]
    ) -> List[IntervalEvent]:
        mutable = apply_transport_faults(
            self.plan,
            tick_index,
            events,
            self._pending,
            self._scan_history,
            self._c_injected,
            self._c_skipped,
            overlay=self.overlay,
        )

        # Events for sessions the engine no longer knows (evicted by an
        # earlier strike-out) are unroutable messages: the engine would
        # drop them too (TickOutcome.unroutable), but the transport
        # filters them here so the chaos report attributes them to the
        # storm rather than to an engine-side anomaly.
        routable = []
        for event in mutable:
            if event.session_id in self.engine.sessions:
                routable.append(event)
            else:
                self._c_unroutable.inc()
        return routable

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def tick(self, events: Sequence[IntervalEvent]) -> List[object]:
        """Serve one tick through the storm (see engine ``tick``)."""
        return self.tick_detailed(events).fixes

    def tick_detailed(self, events: Sequence[IntervalEvent]) -> TickOutcome:
        """Serve one tick through the storm, reporting the full outcome.

        Note the returned ``fixes`` align with the *post-fault* event
        list (drops and redeliveries change it), not the caller's
        input; correlate streams by session id, not by slot.
        """
        upcoming = self.engine.tick_index + 1
        faulted_events = self._apply_message_faults(upcoming, events)
        self.last_delivered = list(faulted_events)
        self._fired_phase_faults.clear()
        outcome = self.engine.tick_detailed(faulted_events)
        # Reconcile the plan: a scheduled phase fault whose injection
        # point was never reached this tick (victim quarantined, no
        # event, or no matchable fingerprint for a match-phase fault)
        # fired nowhere — count it, or the report undercounts the plan.
        # Cluster-level faults (worker kills) have no injection point in
        # a single-engine harness at all, so they reconcile as skipped
        # too: injected + skipped still sums exactly to the plan.
        for spec in self.plan.faults_at(upcoming):
            if spec.kind in CLUSTER_KINDS or (
                spec.kind in PHASE_KINDS
                and spec not in self._fired_phase_faults
            ):
                self._c_skipped.inc()
        return outcome
