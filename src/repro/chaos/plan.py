"""Deterministic fault schedules: what breaks, when, for whom.

A chaos run is only a test if it can be re-run: every fault the harness
injects is decided up front by a :class:`FaultPlan` — an explicit,
serializable schedule of :class:`FaultSpec` entries — never by a dice
roll at injection time.  :meth:`FaultPlan.random` *generates* schedules
pseudo-randomly, but from a seed and before serving starts, so the same
seed always yields the same storm; the CI chaos lane stores the plan
alongside the metrics artifact for exact reproduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(Enum):
    """One class of injectable fault."""

    RAISE = "raise"
    """Raise an exception inside one of the engine's serving phases for
    the victim session (exercises quarantine/backoff/eviction)."""

    LATENCY = "latency"
    """A latency spike while serving the victim: the engine's clock
    jumps forward by ``magnitude`` seconds (exercises the tick budget
    and deadline shedding, without real sleeps)."""

    CORRUPT_SCAN = "corrupt-scan"
    """The victim's scan values are overwritten with garbage — NaNs,
    out-of-range powers — of the original length (exercises the scan
    sanitizer; plain sessions raise and quarantine)."""

    TRUNCATE_SCAN = "truncate-scan"
    """The victim's scan loses its second half (malformed length:
    resilient sessions coast, plain sessions raise)."""

    DROP_MESSAGE = "drop-message"
    """The victim's event for the tick never arrives."""

    DUPLICATE_MESSAGE = "duplicate-message"
    """The victim's event is re-delivered on a later tick (same
    sequence number; exercises idempotent replay)."""

    REORDER_MESSAGE = "reorder-message"
    """The victim's event is delayed past its successor (the consumer
    sees a delivery gap, then a stale message)."""

    WORKER_KILL = "worker-kill"
    """The whole worker process hosting the victim's session dies
    before the tick (exercises supervised respawn and checkpoint + WAL
    recovery).  A cluster-level fault: only the
    :class:`~repro.cluster.chaos.ClusterChaosHarness` can apply it —
    the single-engine harness counts it as skipped."""

    ROGUE_AP = "rogue-ap"
    """An attacker forges the BSSID of AP ``ap_id`` and replays a
    stronger signal: the victim's scan reads ``magnitude`` dBm at that
    slot instead of the honest field value (exercises per-AP trust
    scoring — a rogue slot poisons every Eq. 1 dissimilarity the way a
    dead one does, but at full power instead of the floor)."""

    AP_REPOWER = "ap-repower"
    """AP ``ap_id`` was power-cycled and came back at a different
    transmit power: the victim's reading at that slot shifts by
    ``magnitude`` dB (clipped to physical range).  A benign field
    change that a trust monitor must treat exactly like an attack — the
    database is stale either way."""

    REPLAY_SCAN = "replay-scan"
    """An attacker replays a fingerprint captured earlier in the walk:
    the victim's scan is replaced wholesale with its most recent
    previously delivered scan (a relocation attack — the radio
    evidence says "you never moved")."""

    SPOOF_IMU = "spoof-imu"
    """The victim's compass stream is spoofed: readings oscillate by
    ``magnitude`` degrees at a rate no pedestrian can turn (exercises
    the heading-rate credibility check — a confidently lying IMU must
    be vetoed, not fused)."""

    ENV_AP_DIE = "env-ap-die"
    """AP ``ap_id``'s radio goes dark for good: from this tick on,
    *every* session's scan reads the floor at that slot.  A database
    churn fault — the environment truth changed and the serving
    database is now stale (distinct from the adversarial kinds, which
    rewrite one victim's payload while the field stays honest).  The
    spec's ``session_id`` is only the schedule key; the change is
    global."""

    ENV_AP_REPOWER = "env-ap-repower"
    """AP ``ap_id`` is replaced (or power-cycled) at a new transmit
    power: from this tick on, every session's reading at that slot
    shifts by ``magnitude`` dB (clipped to physical range; a dead slot
    stays dead).  Database churn: the persistent, all-sessions cousin
    of the transient single-victim :attr:`AP_REPOWER`."""

    ENV_DRIFT = "env-drift"
    """Seasonal propagation drift: from this tick on, every non-floored
    reading of every session's scan shifts by ``magnitude`` dB
    (humidity, furniture, crowd density — the slow environmental change
    a crowdsourced database must track)."""


# Kinds that target the message transport (applied to the event list
# before the tick) vs. the serving phases (applied via the engine's
# fault injector hook) vs. the cluster topology (applied by the cluster
# harness to whole workers) vs. adversarial payload rewrites (applied
# to scan/IMU contents in flight, by either harness).
MESSAGE_KINDS = (
    FaultKind.CORRUPT_SCAN,
    FaultKind.TRUNCATE_SCAN,
    FaultKind.DROP_MESSAGE,
    FaultKind.DUPLICATE_MESSAGE,
    FaultKind.REORDER_MESSAGE,
)
PHASE_KINDS = (FaultKind.RAISE, FaultKind.LATENCY)
CLUSTER_KINDS = (FaultKind.WORKER_KILL,)
ADVERSARY_KINDS = (
    FaultKind.ROGUE_AP,
    FaultKind.AP_REPOWER,
    FaultKind.REPLAY_SCAN,
    FaultKind.SPOOF_IMU,
)
# Persistent environment-truth changes (the database goes stale), as
# opposed to transient per-victim payload rewrites.  Applied by the
# harnesses' EnvironmentOverlay from the scheduled tick onward, to
# every session.
DB_CHURN_KINDS = (
    FaultKind.ENV_AP_DIE,
    FaultKind.ENV_AP_REPOWER,
    FaultKind.ENV_DRIFT,
)

# Kinds that strike one AP slot and therefore need ap_id.
AP_TARGETED_KINDS = (
    FaultKind.ROGUE_AP,
    FaultKind.AP_REPOWER,
    FaultKind.ENV_AP_DIE,
    FaultKind.ENV_AP_REPOWER,
)

# The default pool for FaultPlan.random: the engine-level kinds, in the
# enum's historical order.  WORKER_KILL, the adversarial kinds, and the
# DB churn kinds are deliberately excluded — opting a storm into
# cluster faults, attacks, or environment churn takes an explicit
# ``kinds=`` — and keeping the pool's length and order fixed keeps
# every pre-cluster seed generating the exact same plan it always did.
DEFAULT_RANDOM_KINDS = PHASE_KINDS + MESSAGE_KINDS

_PHASES = ("prepare", "match", "complete")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        tick: The 1-based engine tick index the fault strikes on
            (matching
            :attr:`~repro.serving.engine.BatchedServingEngine.tick_index`
            during the tick).
        session_id: The victim session.
        kind: What breaks.
        phase: For :attr:`FaultKind.RAISE` / :attr:`FaultKind.LATENCY`:
            which serving phase the injection fires in (``prepare`` /
            ``match`` / ``complete``).  Ignored for message faults.
        magnitude: Kind-specific size — seconds of latency for
            :attr:`FaultKind.LATENCY`, the forged dBm reading for
            :attr:`FaultKind.ROGUE_AP`, the dB power shift for
            :attr:`FaultKind.AP_REPOWER`, the heading-oscillation
            amplitude in degrees for :attr:`FaultKind.SPOOF_IMU`,
            unused otherwise.
        ap_id: The struck AP slot, required (and only meaningful) for
            :attr:`FaultKind.ROGUE_AP` / :attr:`FaultKind.AP_REPOWER`.
    """

    tick: int
    session_id: str
    kind: FaultKind
    phase: str = "prepare"
    magnitude: float = 0.0
    ap_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tick < 1:
            raise ValueError(f"tick must be >= 1, got {self.tick}")
        if self.kind in PHASE_KINDS and self.phase not in _PHASES:
            raise ValueError(
                f"phase must be one of {_PHASES}, got {self.phase!r}"
            )
        if self.kind is FaultKind.LATENCY and self.magnitude <= 0:
            raise ValueError(
                f"latency magnitude must be positive, got {self.magnitude}"
            )
        if self.kind in AP_TARGETED_KINDS:
            if self.ap_id is None or self.ap_id < 0:
                raise ValueError(
                    f"{self.kind.value} faults need a non-negative ap_id, "
                    f"got {self.ap_id}"
                )
        if (
            self.kind in (FaultKind.AP_REPOWER, FaultKind.ENV_AP_REPOWER)
            and self.magnitude == 0
        ):
            raise ValueError(
                f"{self.kind.value} magnitude must be a non-zero dB shift"
            )
        if self.kind is FaultKind.ENV_DRIFT and self.magnitude == 0:
            raise ValueError(
                "env-drift magnitude must be a non-zero dB shift"
            )
        if self.kind is FaultKind.SPOOF_IMU and self.magnitude <= 0:
            raise ValueError(
                f"spoof-imu magnitude must be a positive heading amplitude, "
                f"got {self.magnitude}"
            )


class FaultPlan:
    """An immutable schedule of faults, indexed by tick.

    Args:
        faults: The scheduled faults, any order; at most one fault per
            (tick, session) pair — chaos measures the system's response
            to a fault, and stacking two on the same victim in the same
            tick makes the response unattributable.
    """

    def __init__(self, faults: Sequence[FaultSpec] = ()) -> None:
        seen = set()
        for fault in faults:
            key = (fault.tick, fault.session_id)
            if key in seen:
                raise ValueError(
                    f"multiple faults scheduled for session "
                    f"{fault.session_id!r} on tick {fault.tick}"
                )
            seen.add(key)
        by_tick: Dict[int, List[FaultSpec]] = {}
        for fault in sorted(faults, key=lambda f: (f.tick, f.session_id)):
            by_tick.setdefault(fault.tick, []).append(fault)
        self._by_tick: Dict[int, Tuple[FaultSpec, ...]] = {
            tick: tuple(entries) for tick, entries in by_tick.items()
        }

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_tick.values())

    def __iter__(self) -> Iterator[FaultSpec]:
        for tick in sorted(self._by_tick):
            yield from self._by_tick[tick]

    def faults_at(self, tick: int) -> Tuple[FaultSpec, ...]:
        """The faults scheduled for one tick (possibly empty)."""
        return self._by_tick.get(tick, ())

    @classmethod
    def random(
        cls,
        seed: int,
        n_ticks: int,
        session_ids: Sequence[str],
        rate: float = 0.1,
        kinds: Optional[Sequence[FaultKind]] = None,
        phases: Sequence[str] = _PHASES,
        latency_s: float = 0.05,
        n_aps: Optional[int] = None,
        rogue_dbm: float = -30.0,
        repower_shift_db: float = 8.0,
        spoof_heading_deg: float = 90.0,
        drift_shift_db: float = 3.0,
    ) -> "FaultPlan":
        """A seeded storm: each (tick, session) faults with probability ``rate``.

        Deterministic in its arguments — the schedule is drawn from a
        private :class:`random.Random` seeded once, so the same call
        produces the same plan on every machine and run.  Adversarial
        draws consume extra randomness only when an adversarial kind is
        actually drawn, so pools without them generate the exact plans
        they always did.

        Args:
            seed: The storm's identity.
            n_ticks: Ticks 1..n_ticks are eligible.
            session_ids: The victim pool.
            rate: Per-(tick, session) fault probability.
            kinds: Fault kinds to draw from (default: all engine-level
                kinds; adversarial and cluster kinds are opt-in).
            phases: Phases RAISE/LATENCY faults may target.
            latency_s: Magnitude of LATENCY faults.
            n_aps: AP count to draw struck slots from; required when the
                pool contains ROGUE_AP or AP_REPOWER.
            rogue_dbm: Forged reading of ROGUE_AP faults.
            repower_shift_db: Power shift of AP_REPOWER and
                ENV_AP_REPOWER faults.
            spoof_heading_deg: Oscillation amplitude of SPOOF_IMU faults.
            drift_shift_db: Field shift of ENV_DRIFT faults.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if n_ticks < 1:
            raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
        pool = list(kinds) if kinds is not None else list(DEFAULT_RANDOM_KINDS)
        if not pool:
            raise ValueError("need at least one fault kind to draw from")
        if any(kind in AP_TARGETED_KINDS for kind in pool) and (
            n_aps is None or n_aps < 1
        ):
            raise ValueError(
                "n_aps must be given (>= 1) when the pool contains "
                "AP-targeted adversarial kinds"
            )
        magnitudes = {
            FaultKind.LATENCY: latency_s,
            FaultKind.ROGUE_AP: rogue_dbm,
            FaultKind.AP_REPOWER: repower_shift_db,
            FaultKind.SPOOF_IMU: spoof_heading_deg,
            FaultKind.ENV_AP_REPOWER: repower_shift_db,
            FaultKind.ENV_DRIFT: drift_shift_db,
        }
        rng = random.Random(seed)
        faults: List[FaultSpec] = []
        for tick in range(1, n_ticks + 1):
            for session_id in session_ids:
                if rng.random() >= rate:
                    continue
                kind = rng.choice(pool)
                faults.append(
                    FaultSpec(
                        tick=tick,
                        session_id=session_id,
                        kind=kind,
                        phase=rng.choice(list(phases)),
                        magnitude=magnitudes.get(kind, 0.0),
                        ap_id=(
                            rng.randrange(n_aps)
                            if kind in AP_TARGETED_KINDS
                            else None
                        ),
                    )
                )
        return cls(faults)

    def to_dict(self) -> Dict[str, object]:
        """Serialize the schedule (CI artifact / exact reproduction)."""
        return {
            "kind": "fault_plan",
            "format_version": 1,
            "faults": [
                {
                    "tick": fault.tick,
                    "session_id": fault.session_id,
                    "fault": fault.kind.value,
                    "phase": fault.phase,
                    "magnitude": fault.magnitude,
                    # ap_id only appears when set, so pre-adversarial
                    # plan documents are byte-for-byte unchanged.
                    **(
                        {"ap_id": fault.ap_id}
                        if fault.ap_id is not None
                        else {}
                    ),
                }
                for fault in self
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Rebuild a schedule written by :meth:`to_dict`."""
        if payload.get("kind") != "fault_plan":
            raise ValueError(
                f"expected a 'fault_plan' document, got {payload.get('kind')!r}"
            )
        return cls(
            [
                FaultSpec(
                    tick=int(entry["tick"]),
                    session_id=entry["session_id"],
                    kind=FaultKind(entry["fault"]),
                    phase=entry["phase"],
                    magnitude=float(entry["magnitude"]),
                    ap_id=(
                        None
                        if entry.get("ap_id") is None
                        else int(entry["ap_id"])
                    ),
                )
                for entry in payload["faults"]
            ]
        )
