"""Deterministic fault schedules: what breaks, when, for whom.

A chaos run is only a test if it can be re-run: every fault the harness
injects is decided up front by a :class:`FaultPlan` — an explicit,
serializable schedule of :class:`FaultSpec` entries — never by a dice
roll at injection time.  :meth:`FaultPlan.random` *generates* schedules
pseudo-randomly, but from a seed and before serving starts, so the same
seed always yields the same storm; the CI chaos lane stores the plan
alongside the metrics artifact for exact reproduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(Enum):
    """One class of injectable fault."""

    RAISE = "raise"
    """Raise an exception inside one of the engine's serving phases for
    the victim session (exercises quarantine/backoff/eviction)."""

    LATENCY = "latency"
    """A latency spike while serving the victim: the engine's clock
    jumps forward by ``magnitude`` seconds (exercises the tick budget
    and deadline shedding, without real sleeps)."""

    CORRUPT_SCAN = "corrupt-scan"
    """The victim's scan values are overwritten with garbage — NaNs,
    out-of-range powers — of the original length (exercises the scan
    sanitizer; plain sessions raise and quarantine)."""

    TRUNCATE_SCAN = "truncate-scan"
    """The victim's scan loses its second half (malformed length:
    resilient sessions coast, plain sessions raise)."""

    DROP_MESSAGE = "drop-message"
    """The victim's event for the tick never arrives."""

    DUPLICATE_MESSAGE = "duplicate-message"
    """The victim's event is re-delivered on a later tick (same
    sequence number; exercises idempotent replay)."""

    REORDER_MESSAGE = "reorder-message"
    """The victim's event is delayed past its successor (the consumer
    sees a delivery gap, then a stale message)."""

    WORKER_KILL = "worker-kill"
    """The whole worker process hosting the victim's session dies
    before the tick (exercises supervised respawn and checkpoint + WAL
    recovery).  A cluster-level fault: only the
    :class:`~repro.cluster.chaos.ClusterChaosHarness` can apply it —
    the single-engine harness counts it as skipped."""


# Kinds that target the message transport (applied to the event list
# before the tick) vs. the serving phases (applied via the engine's
# fault injector hook) vs. the cluster topology (applied by the cluster
# harness to whole workers).
MESSAGE_KINDS = (
    FaultKind.CORRUPT_SCAN,
    FaultKind.TRUNCATE_SCAN,
    FaultKind.DROP_MESSAGE,
    FaultKind.DUPLICATE_MESSAGE,
    FaultKind.REORDER_MESSAGE,
)
PHASE_KINDS = (FaultKind.RAISE, FaultKind.LATENCY)
CLUSTER_KINDS = (FaultKind.WORKER_KILL,)

# The default pool for FaultPlan.random: the engine-level kinds, in the
# enum's historical order.  WORKER_KILL is deliberately excluded —
# opting a storm into cluster faults takes an explicit ``kinds=`` — and
# keeping the pool's length and order fixed keeps every pre-cluster
# seed generating the exact same plan it always did.
DEFAULT_RANDOM_KINDS = PHASE_KINDS + MESSAGE_KINDS

_PHASES = ("prepare", "match", "complete")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        tick: The 1-based engine tick index the fault strikes on
            (matching
            :attr:`~repro.serving.engine.BatchedServingEngine.tick_index`
            during the tick).
        session_id: The victim session.
        kind: What breaks.
        phase: For :attr:`FaultKind.RAISE` / :attr:`FaultKind.LATENCY`:
            which serving phase the injection fires in (``prepare`` /
            ``match`` / ``complete``).  Ignored for message faults.
        magnitude: Kind-specific size — seconds of latency for
            :attr:`FaultKind.LATENCY`, unused otherwise.
    """

    tick: int
    session_id: str
    kind: FaultKind
    phase: str = "prepare"
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.tick < 1:
            raise ValueError(f"tick must be >= 1, got {self.tick}")
        if self.kind in PHASE_KINDS and self.phase not in _PHASES:
            raise ValueError(
                f"phase must be one of {_PHASES}, got {self.phase!r}"
            )
        if self.kind is FaultKind.LATENCY and self.magnitude <= 0:
            raise ValueError(
                f"latency magnitude must be positive, got {self.magnitude}"
            )


class FaultPlan:
    """An immutable schedule of faults, indexed by tick.

    Args:
        faults: The scheduled faults, any order; at most one fault per
            (tick, session) pair — chaos measures the system's response
            to a fault, and stacking two on the same victim in the same
            tick makes the response unattributable.
    """

    def __init__(self, faults: Sequence[FaultSpec] = ()) -> None:
        seen = set()
        for fault in faults:
            key = (fault.tick, fault.session_id)
            if key in seen:
                raise ValueError(
                    f"multiple faults scheduled for session "
                    f"{fault.session_id!r} on tick {fault.tick}"
                )
            seen.add(key)
        by_tick: Dict[int, List[FaultSpec]] = {}
        for fault in sorted(faults, key=lambda f: (f.tick, f.session_id)):
            by_tick.setdefault(fault.tick, []).append(fault)
        self._by_tick: Dict[int, Tuple[FaultSpec, ...]] = {
            tick: tuple(entries) for tick, entries in by_tick.items()
        }

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_tick.values())

    def __iter__(self) -> Iterator[FaultSpec]:
        for tick in sorted(self._by_tick):
            yield from self._by_tick[tick]

    def faults_at(self, tick: int) -> Tuple[FaultSpec, ...]:
        """The faults scheduled for one tick (possibly empty)."""
        return self._by_tick.get(tick, ())

    @classmethod
    def random(
        cls,
        seed: int,
        n_ticks: int,
        session_ids: Sequence[str],
        rate: float = 0.1,
        kinds: Optional[Sequence[FaultKind]] = None,
        phases: Sequence[str] = _PHASES,
        latency_s: float = 0.05,
    ) -> "FaultPlan":
        """A seeded storm: each (tick, session) faults with probability ``rate``.

        Deterministic in its arguments — the schedule is drawn from a
        private :class:`random.Random` seeded once, so the same call
        produces the same plan on every machine and run.

        Args:
            seed: The storm's identity.
            n_ticks: Ticks 1..n_ticks are eligible.
            session_ids: The victim pool.
            rate: Per-(tick, session) fault probability.
            kinds: Fault kinds to draw from (default: all).
            phases: Phases RAISE/LATENCY faults may target.
            latency_s: Magnitude of LATENCY faults.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if n_ticks < 1:
            raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
        pool = list(kinds) if kinds is not None else list(DEFAULT_RANDOM_KINDS)
        if not pool:
            raise ValueError("need at least one fault kind to draw from")
        rng = random.Random(seed)
        faults: List[FaultSpec] = []
        for tick in range(1, n_ticks + 1):
            for session_id in session_ids:
                if rng.random() >= rate:
                    continue
                kind = rng.choice(pool)
                faults.append(
                    FaultSpec(
                        tick=tick,
                        session_id=session_id,
                        kind=kind,
                        phase=rng.choice(list(phases)),
                        magnitude=(
                            latency_s if kind is FaultKind.LATENCY else 0.0
                        ),
                    )
                )
        return cls(faults)

    def to_dict(self) -> Dict[str, object]:
        """Serialize the schedule (CI artifact / exact reproduction)."""
        return {
            "kind": "fault_plan",
            "format_version": 1,
            "faults": [
                {
                    "tick": fault.tick,
                    "session_id": fault.session_id,
                    "fault": fault.kind.value,
                    "phase": fault.phase,
                    "magnitude": fault.magnitude,
                }
                for fault in self
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Rebuild a schedule written by :meth:`to_dict`."""
        if payload.get("kind") != "fault_plan":
            raise ValueError(
                f"expected a 'fault_plan' document, got {payload.get('kind')!r}"
            )
        return cls(
            [
                FaultSpec(
                    tick=int(entry["tick"]),
                    session_id=entry["session_id"],
                    kind=FaultKind(entry["fault"]),
                    phase=entry["phase"],
                    magnitude=float(entry["magnitude"]),
                )
                for entry in payload["faults"]
            ]
        )
