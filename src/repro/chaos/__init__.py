"""Seeded chaos engineering for the serving stack.

Production serving fails in ways clean evaluation never exercises:
dependencies throw, ticks stall, radios hand over garbage, transports
drop / duplicate / reorder messages.  This package makes those failures
*first-class, deterministic inputs*:

* :mod:`~repro.chaos.plan` — :class:`FaultPlan`, an explicit seeded
  schedule of :class:`FaultSpec` entries (:class:`FaultKind` taxonomy);
* :mod:`~repro.chaos.harness` — :class:`ChaosHarness`, which executes
  a plan against a :class:`~repro.serving.engine.BatchedServingEngine`
  through its public seams (event list, fault-injector hook, injected
  clock) and counts every applied fault in the metrics registry.

The invariant chaos runs defend (see ``docs/robustness.md``): under any
schedule, the engine is *never silently wrong* — faulted sessions are
answered degraded-and-flagged, quarantined, or not at all, and
untouched sessions' fix streams stay bitwise identical to a fault-free
run.

The ``repro chaos`` CLI subcommand runs a seeded storm end to end and
emits the metrics document the CI chaos lane archives.
"""

from .harness import ChaosError, ChaosHarness
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "ChaosError",
    "ChaosHarness",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
]
