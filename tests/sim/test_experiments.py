"""Tests for the per-figure experiment drivers (on the small study)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.step_counting import detect_step_times
from repro.sim.evaluation import evaluate_localizer
from repro.sim.experiments import (
    AP_COUNTS,
    convergence_table,
    evaluate_systems,
    large_error_comparison,
    make_localizer,
    motion_database_errors,
    step_signature,
)


class TestStepSignature:
    def test_fig4_ten_steps(self):
        signal, detected = step_signature(n_steps=10)
        assert len(signal.true_step_times) == 10
        assert len(detected) == 10

    def test_deterministic(self):
        a, _ = step_signature(seed=3)
        b, _ = step_signature(seed=3)
        np.testing.assert_array_equal(a.samples, b.samples)


class TestStudyArtifacts:
    def test_fingerprint_db_truncation(self, small_study):
        assert small_study.fingerprint_db(4).n_aps == 4
        assert small_study.fingerprint_db(6).n_aps == 6

    def test_fingerprint_db_cached(self, small_study):
        assert small_study.fingerprint_db(5) is small_study.fingerprint_db(5)

    def test_motion_db_cached_per_key(self, small_study):
        a, _ = small_study.motion_db(6)
        b, _ = small_study.motion_db(6)
        assert a is b
        c, _ = small_study.motion_db(6, counting="dsc")
        assert c is not a


class TestMotionDatabaseErrors:
    def test_fig6_error_shape(self, small_study):
        """Direction/offset errors far below the sanitation thresholds."""
        directions, offsets, spurious = motion_database_errors(small_study)
        assert len(directions) >= 35  # most of the 43 aisle hops covered
        assert float(np.median(directions)) < 6.0
        assert max(directions) < 20.0
        assert float(np.median(offsets)) < 0.4
        assert max(offsets) < 1.0
        assert spurious <= 2

    def test_offset_errors_below_step_size(self, small_study):
        """Paper Sec. VI-B1: max offset error below a normal step (~0.7 m)."""
        _, offsets, _ = motion_database_errors(small_study)
        assert float(np.median(offsets)) < 0.35


class TestMakeLocalizer:
    @pytest.mark.parametrize(
        "name", ["moloc", "wifi", "horus", "hmm", "naive-fusion"]
    )
    def test_known_names(self, small_study, name):
        fdb = small_study.fingerprint_db(6)
        mdb, _ = small_study.motion_db(6)
        localizer = make_localizer(name, fdb, mdb)
        assert hasattr(localizer, "locate")
        assert hasattr(localizer, "reset")

    def test_unknown_name(self, small_study):
        with pytest.raises(ValueError):
            make_localizer("gps", small_study.fingerprint_db(6), None)


class TestEvaluateSystems:
    def test_fig7_moloc_beats_wifi(self, small_study):
        results = evaluate_systems(small_study, n_aps=6)
        assert results["moloc"].accuracy > results["wifi"].accuracy
        assert results["moloc"].mean_error_m < results["wifi"].mean_error_m

    def test_all_baselines_run(self, small_study):
        results = evaluate_systems(
            small_study, n_aps=6, systems=("moloc", "wifi", "horus", "hmm")
        )
        assert set(results) == {"moloc", "wifi", "horus", "hmm"}

    def test_every_record_scored(self, small_study):
        results = evaluate_systems(small_study, n_aps=5)
        expected = sum(t.n_hops + 1 for t in small_study.test_traces)
        for result in results.values():
            assert len(result.records) == expected


class TestLargeErrors:
    def test_fig8_moloc_smaller_errors_at_twins(self, small_study):
        errors, ambiguous = large_error_comparison(small_study, n_aps=4)
        assert ambiguous, "no ambiguous locations found at 4 APs"
        assert float(errors["moloc"].mean()) < float(errors["wifi"].mean())

    def test_errors_restricted_to_ambiguous_set(self, small_study):
        errors, ambiguous = large_error_comparison(small_study, n_aps=4)
        results = evaluate_systems(small_study, n_aps=4)
        expected = sum(
            1 for r in results["wifi"].records if r.true_id in ambiguous
        )
        assert len(errors["wifi"]) == expected


class TestConvergenceTable:
    def test_table1_rows(self, small_study):
        rows = convergence_table(small_study, ap_counts=(6,))
        labels = [label for label, _ in rows]
        assert labels == ["6-AP WiFi", "6-AP MoLoc"]
        stats = dict(rows)
        assert stats["6-AP MoLoc"].accuracy > stats["6-AP WiFi"].accuracy
