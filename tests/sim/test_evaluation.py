"""Tests for the evaluation metrics and convergence statistics."""

from __future__ import annotations

import pytest

from repro.sim.evaluation import (
    ConvergenceStatistics,
    EvaluationResult,
    LocalizationRecord,
    TraceEvaluation,
    ambiguous_location_ids,
    convergence_statistics,
)


def record(true_id, estimated_id, error, initial=False) -> LocalizationRecord:
    return LocalizationRecord(
        true_id=true_id,
        estimated_id=estimated_id,
        error_m=error,
        used_motion=not initial,
        is_initial=initial,
    )


def result_from(*traces) -> EvaluationResult:
    return EvaluationResult(
        traces=[TraceEvaluation(user="u", records=list(t)) for t in traces]
    )


class TestAggregates:
    def test_accuracy(self):
        result = result_from(
            [record(1, 1, 0.0, initial=True), record(2, 3, 4.0), record(3, 3, 0.0)]
        )
        assert result.accuracy == pytest.approx(2 / 3)

    def test_mean_and_max_error(self):
        result = result_from([record(1, 2, 3.0, initial=True), record(2, 4, 9.0)])
        assert result.mean_error_m == pytest.approx(6.0)
        assert result.max_error_m == pytest.approx(9.0)

    def test_empty_result_accuracy_raises(self):
        with pytest.raises(ValueError):
            result_from([]).accuracy

    def test_errors_at_filters_by_true_location(self):
        result = result_from(
            [record(1, 2, 3.0, initial=True), record(5, 5, 0.0), record(1, 1, 0.0)]
        )
        errors = result.errors_at({1})
        assert list(errors) == [3.0, 0.0]


class TestAmbiguousLocations:
    def test_threshold_applied(self):
        result = result_from(
            [record(1, 9, 8.0, initial=True), record(2, 2, 0.0), record(3, 4, 5.0)]
        )
        assert ambiguous_location_ids(result, threshold_m=6.0) == {1}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ambiguous_location_ids(result_from([]), threshold_m=0.0)


class TestConvergence:
    def test_el_counts_erroneous_prefix(self):
        trace = [
            record(1, 9, 8.0, initial=True),  # wrong
            record(2, 7, 5.0),  # wrong
            record(3, 3, 0.0),  # first accurate (EL = 2)
            record(4, 4, 0.0),
            record(5, 9, 6.0),
        ]
        stats = convergence_statistics(result_from(trace))
        assert stats.mean_erroneous_localizations == pytest.approx(2.0)
        assert stats.n_traces == 1
        # Subsequent records: indexes 2..4 -> two accurate of three.
        assert stats.accuracy == pytest.approx(2 / 3)
        assert stats.mean_error_m == pytest.approx(2.0)
        assert stats.max_error_m == pytest.approx(6.0)

    def test_accurate_initial_traces_excluded(self):
        good = [record(1, 1, 0.0, initial=True), record(2, 9, 7.0)]
        bad = [record(1, 9, 8.0, initial=True), record(2, 2, 0.0)]
        stats = convergence_statistics(result_from(good, bad))
        assert stats.n_traces == 1
        assert stats.mean_erroneous_localizations == pytest.approx(1.0)

    def test_never_converging_trace_contributes_full_el(self):
        lost = [record(1, 9, 8.0, initial=True), record(2, 9, 7.0)]
        converging = [record(1, 9, 8.0, initial=True), record(2, 2, 0.0)]
        stats = convergence_statistics(result_from(lost, converging))
        assert stats.n_traces == 2
        assert stats.mean_erroneous_localizations == pytest.approx((2 + 1) / 2)

    def test_no_erroneous_traces_raises(self):
        good = [record(1, 1, 0.0, initial=True)]
        with pytest.raises(ValueError):
            convergence_statistics(result_from(good))

    def test_nothing_converges_raises(self):
        lost = [record(1, 9, 8.0, initial=True), record(2, 9, 7.0)]
        with pytest.raises(ValueError):
            convergence_statistics(result_from(lost))


class TestRecordProperties:
    def test_is_accurate(self):
        assert record(3, 3, 0.0).is_accurate
        assert not record(3, 4, 1.0).is_accurate

    def test_initial_accurate_flag(self):
        trace = TraceEvaluation(
            user="u", records=[record(1, 1, 0.0, initial=True)]
        )
        assert trace.initial_accurate
        empty = TraceEvaluation(user="u", records=[])
        assert not empty.initial_accurate
