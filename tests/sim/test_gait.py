"""Gait profiles, schedules, and hop recording.

The reproducibility properties mirror the :mod:`repro.env.procedural`
contract: a schedule is a pure function of ``(spec, seed)``, specs
round-trip through JSON, and hostile inputs fail loudly with the gait
names spelled out.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motion.step_counting import count_steps_csc, is_walking
from repro.motion.pedestrian import Pedestrian
from repro.env.geometry import Point
from repro.sim.crowdsource import TraceGenerationConfig
from repro.sim.gait import (
    GAIT_PROFILES,
    MOTION_MIXES,
    GaitProfile,
    GaitSchedule,
    GaitScheduleSpec,
    gait_trace_config,
    record_gait_hop,
    validate_gait_name,
)

_GAIT_NAMES = sorted(GAIT_PROFILES)


def _spec_strategy():
    """Random valid specs over the built-in registry."""

    def build(names, rows, min_dwell, extra_dwell, initial):
        n = len(names)
        transitions = tuple(
            tuple(v / sum(row[:n]) for v in row[:n]) for row in rows[:n]
        )
        return GaitScheduleSpec(
            regimes=tuple(names),
            transitions=transitions,
            min_dwell_hops=min_dwell,
            max_dwell_hops=min_dwell + extra_dwell,
            initial=initial % n,
        )

    row = st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=4, max_size=4
    )
    return st.builds(
        build,
        st.lists(
            st.sampled_from(_GAIT_NAMES), min_size=1, max_size=4, unique=True
        ),
        st.lists(row, min_size=4, max_size=4),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=100),
    )


class TestProfiles:
    def test_registry_covers_the_named_regimes(self):
        assert set(GAIT_PROFILES) == {
            "stand",
            "stroll",
            "walk",
            "brisk",
            "run",
            "cart",
        }

    def test_walk_matches_the_paper_survey_gait(self):
        walk = GAIT_PROFILES["walk"]
        assert walk.speed_mps == pytest.approx(1.35)
        assert walk.step_length_m == pytest.approx(0.702)

    def test_wheeled_profile_has_no_stride(self):
        cart = GAIT_PROFILES["cart"]
        assert cart.moving and not cart.stepped
        assert cart.step_length_m is None

    def test_invalid_profiles_fail_loudly(self):
        with pytest.raises(ValueError, match="step period"):
            GaitProfile(name="x", speed_mps=1.0, step_period_s=None)
        with pytest.raises(ValueError, match="wheeled"):
            GaitProfile(
                name="x", speed_mps=1.0, step_period_s=0.5, wheeled=True
            )

    def test_validate_gait_name_lists_known_gaits(self):
        with pytest.raises(ValueError, match="stroll"):
            validate_gait_name("moonwalk")
        assert validate_gait_name("run") == "run"


class TestScheduleSpec:
    @given(_spec_strategy())
    @settings(max_examples=40, deadline=None)
    def test_spec_round_trips_through_json(self, spec):
        import json

        document = json.loads(json.dumps(spec.to_dict()))
        assert GaitScheduleSpec.from_dict(document) == spec

    def test_bad_specs_fail_loudly(self):
        with pytest.raises(ValueError, match="sums to"):
            GaitScheduleSpec(
                regimes=("walk", "run"),
                transitions=((0.5, 0.4), (0.5, 0.5)),
            )
        with pytest.raises(ValueError, match="unknown gait"):
            GaitScheduleSpec(regimes=("glide",), transitions=((1.0,),))
        with pytest.raises(ValueError, match="dwell"):
            GaitScheduleSpec(
                regimes=("walk",),
                transitions=((1.0,),),
                min_dwell_hops=3,
                max_dwell_hops=2,
            )

    def test_unsupported_format_version_rejected(self):
        document = MOTION_MIXES["mixed-gait"].to_dict()
        document["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            GaitScheduleSpec.from_dict(document)


class TestScheduleReproducibility:
    @given(_spec_strategy(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_same_spec_and_seed_is_bitwise_identical(self, spec, seed):
        first = GaitSchedule(spec, seed)
        second = GaitSchedule(spec, seed)
        assert first.regimes(24) == second.regimes(24)
        assert first.segments(8) == second.segments(8)
        # Replay within one schedule is also stable: every call
        # re-derives from (spec, seed).
        assert first.regimes(24) == first.regimes(24)

    @given(_spec_strategy(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_dwell_segments_stay_within_bounds(self, spec, seed):
        schedule = GaitSchedule(spec, seed)
        for regime, dwell in schedule.segments(12):
            assert regime in spec.regimes
            assert spec.min_dwell_hops <= dwell <= spec.max_dwell_hops

    @given(
        _spec_strategy(),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_regimes_cover_exactly_n_hops(self, spec, seed, n_hops):
        regimes = GaitSchedule(spec, seed).regimes(n_hops)
        assert len(regimes) == n_hops
        assert set(regimes) <= set(spec.regimes)


def _sample_user(seed: int = 0) -> Pedestrian:
    return Pedestrian.sample("user-0", np.random.default_rng(seed))


class TestHopRecording:
    @pytest.fixture()
    def user(self):
        return _sample_user()

    @given(st.sampled_from(["stand", "cart"]), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_steplesss_profiles_never_emit_steps(self, name, seed):
        user = _sample_user()
        rng = np.random.default_rng(seed)
        segment, duration, speed = record_gait_hop(
            user, GAIT_PROFILES[name], Point(0.0, 0.0), Point(6.0, 0.0), rng
        )
        assert duration > 0
        assert not is_walking(segment.accel)
        assert speed == GAIT_PROFILES[name].speed_mps

    def test_stand_holds_position_with_quiescent_accel(self, user):
        rng = np.random.default_rng(3)
        segment, duration, speed = record_gait_hop(
            user,
            GAIT_PROFILES["stand"],
            Point(0.0, 0.0),
            Point(6.0, 0.0),
            rng,
            previous_course_deg=42.0,
        )
        assert speed == 0.0
        assert segment.true_distance_m == 0.0
        assert segment.true_course_deg == 42.0
        # Quiescent but never exactly flat: the sanitizer's flat-line
        # veto must not fire on a legitimate standing dwell.
        assert 0.0 < float(np.asarray(segment.accel.samples).std()) < 0.1

    def test_stepped_hop_counts_roughly_true_steps(self, user):
        rng = np.random.default_rng(5)
        profile = GAIT_PROFILES["run"]
        segment, duration, _ = record_gait_hop(
            user, profile, Point(0.0, 0.0), Point(9.0, 0.0), rng
        )
        assert is_walking(segment.accel)
        expected = duration / profile.step_period_s
        counted = count_steps_csc(segment.accel)
        assert counted == pytest.approx(expected, rel=0.25)


class TestTraceConfigWiring:
    def test_gait_selectors_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            TraceGenerationConfig(
                gait="run", gait_schedule=MOTION_MIXES["mixed-gait"]
            )
        with pytest.raises(ValueError, match="mutually exclusive"):
            TraceGenerationConfig(gait="run", user_gaits=("walk",))

    def test_unknown_gait_names_fail_loudly(self):
        with pytest.raises(ValueError, match="unknown gait"):
            TraceGenerationConfig(gait="moonwalk")
        with pytest.raises(ValueError, match="unknown gait"):
            TraceGenerationConfig(user_gaits=("walk", "moonwalk"))
        with pytest.raises(ValueError, match="at least one"):
            TraceGenerationConfig(user_gaits=())

    def test_paper_walk_mix_is_the_legacy_path(self):
        config = gait_trace_config("paper-walk", n_hops=10)
        assert config.gait_schedule is None
        assert not config.gait_active

    def test_unknown_mix_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown motion mix"):
            gait_trace_config("jog-heavy")
