"""Tests for crowdsourced trace generation and RLM derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import bearing_difference
from repro.sim.crowdsource import (
    TraceGenerationConfig,
    generate_trace,
    generate_traces,
    observations_from_traces,
)


class TestTraceGenerationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceGenerationConfig(n_hops=0)
        with pytest.raises(ValueError):
            TraceGenerationConfig(n_hops=5, calibration_hops=6)
        with pytest.raises(ValueError):
            TraceGenerationConfig(scan_time_jitter_s=-1.0)


class TestGenerateTrace:
    def test_trace_structure(self, scenario, rng):
        config = TraceGenerationConfig(n_hops=8)
        trace = generate_trace(scenario, scenario.users[0], rng, config=config)
        assert trace.n_hops == 8
        assert trace.user == scenario.users[0].name
        assert trace.initial_fingerprint.n_aps == 6
        for hop in trace.hops:
            assert hop.arrival_fingerprint.n_aps == 6

    def test_hops_follow_aisles(self, scenario, rng):
        trace = generate_trace(scenario, scenario.users[0], rng)
        for hop in trace.hops:
            assert scenario.graph.are_adjacent(hop.true_from, hop.true_to)

    def test_fixed_start(self, scenario, rng):
        trace = generate_trace(
            scenario, scenario.users[0], rng, start_id=14
        )
        assert trace.true_start == 14

    def test_placement_offset_estimated_close(self, scenario, rng):
        """Heading calibration lands within a few degrees of the true grip."""
        user = scenario.users[0]
        trace = generate_trace(scenario, user, rng)
        true_offset = (
            user.imu.compass.placement_offset_deg
            + user.imu.compass.device_bias_deg
        )
        gap = bearing_difference(
            trace.placement_offset_estimate_deg, true_offset
        )
        assert gap < 15.0

    def test_imu_duration_matches_hop(self, scenario, rng):
        user = scenario.users[0]
        trace = generate_trace(scenario, user, rng)
        hop = trace.hops[0]
        distance = scenario.graph.hop_distance(hop.true_from, hop.true_to)
        expected = user.hop_duration_s(distance)
        assert hop.imu.duration_s == pytest.approx(expected, abs=0.2)


class TestGenerateTraces:
    def test_count_and_user_cycling(self, scenario, rng):
        traces = generate_traces(scenario, 9, rng,
                                 config=TraceGenerationConfig(n_hops=3))
        assert len(traces) == 9
        users = [t.user for t in traces]
        assert users[0] == users[4]  # 4 users cycle
        assert len(set(users)) == 4

    def test_invalid_count(self, scenario, rng):
        with pytest.raises(ValueError):
            generate_traces(scenario, 0, rng)

    def test_deterministic_given_rng(self, scenario):
        config = TraceGenerationConfig(n_hops=4)
        a = generate_traces(scenario, 3, np.random.default_rng(5), config=config)
        b = generate_traces(scenario, 3, np.random.default_rng(5), config=config)
        for ta, tb in zip(a, b):
            assert ta.true_locations == tb.true_locations
            assert ta.initial_fingerprint == tb.initial_fingerprint


class TestObservationDerivation:
    def test_one_observation_per_hop_at_most(self, scenario, small_study):
        observations = observations_from_traces(
            small_study.training_traces[:5],
            scenario.survey.database,
        )
        total_hops = sum(t.n_hops for t in small_study.training_traces[:5])
        assert 0 < len(observations) <= total_hops

    def test_measurements_resemble_hops(self, scenario, small_study):
        """Most derived offsets are within a step of a grid hop length."""
        observations = observations_from_traces(
            small_study.training_traces[:10], scenario.survey.database
        )
        hop_lengths = {
            round(scenario.graph.hop_distance(i, j), 1)
            for i, j in scenario.graph.edge_list
        }
        close = sum(
            any(abs(obs.measurement.offset_m - h) < 0.8 for h in hop_lengths)
            for obs in observations
        )
        assert close / len(observations) > 0.8

    def test_truncated_database_changes_endpoints(self, scenario, small_study):
        """4-AP estimates differ from 6-AP estimates somewhere."""
        full = observations_from_traces(
            small_study.training_traces[:10], scenario.survey.database
        )
        truncated = observations_from_traces(
            small_study.training_traces[:10],
            scenario.survey.database.truncated(4),
        )
        endpoints_full = [(o.start_id, o.end_id) for o in full]
        endpoints_4ap = [(o.start_id, o.end_id) for o in truncated]
        assert endpoints_full != endpoints_4ap

    def test_dsc_offsets_are_step_multiples(self, scenario, small_study):
        trace = small_study.training_traces[0]
        observations = observations_from_traces(
            [trace], scenario.survey.database, counting="dsc"
        )
        for obs in observations:
            steps = obs.measurement.offset_m / trace.estimated_step_length_m
            assert steps == pytest.approx(round(steps), abs=1e-6)
