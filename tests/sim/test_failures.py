"""Tests for failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.radio.propagation import SENSITIVITY_FLOOR_DBM
from repro.sim.failures import (
    inject_ap_outage,
    inject_grip_shift,
    inject_imu_dropout,
    inject_step_length_bias,
    silence_ap,
)
from repro.motion.step_counting import count_steps_csc


@pytest.fixture()
def trace(small_study):
    return small_study.test_traces[0]


class TestSilenceAp:
    def test_reading_floored(self):
        fp = Fingerprint.from_values([-50.0, -60.0, -70.0])
        silenced = silence_ap(fp, 1)
        assert silenced.rss == (-50.0, SENSITIVITY_FLOOR_DBM, -70.0)

    def test_original_unchanged(self):
        fp = Fingerprint.from_values([-50.0, -60.0])
        silence_ap(fp, 0)
        assert fp.rss == (-50.0, -60.0)

    def test_out_of_range(self):
        fp = Fingerprint.from_values([-50.0])
        with pytest.raises(ValueError):
            silence_ap(fp, 1)
        with pytest.raises(ValueError):
            silence_ap(fp, -1)


class TestApOutage:
    def test_all_fingerprints_affected(self, trace):
        degraded = inject_ap_outage(trace, 3)
        assert degraded.initial_fingerprint.rss[3] == SENSITIVITY_FLOOR_DBM
        for hop in degraded.hops:
            assert hop.arrival_fingerprint.rss[3] == SENSITIVITY_FLOOR_DBM

    def test_other_aps_untouched(self, trace):
        degraded = inject_ap_outage(trace, 3)
        for original, modified in zip(trace.hops, degraded.hops):
            for ap in (0, 1, 2, 4, 5):
                assert (
                    modified.arrival_fingerprint.rss[ap]
                    == original.arrival_fingerprint.rss[ap]
                )

    def test_ground_truth_preserved(self, trace):
        degraded = inject_ap_outage(trace, 0)
        assert degraded.true_locations == trace.true_locations

    def test_original_trace_unchanged(self, trace):
        before = trace.initial_fingerprint.rss
        inject_ap_outage(trace, 0)
        assert trace.initial_fingerprint.rss == before


class TestGripShift:
    def test_later_hops_rotated(self, trace):
        shifted = inject_grip_shift(trace, after_hop=2, shift_deg=90.0)
        for index, (original, modified) in enumerate(
            zip(trace.hops, shifted.hops)
        ):
            if index <= 2:
                np.testing.assert_array_equal(
                    modified.imu.compass_readings, original.imu.compass_readings
                )
            else:
                expected = (original.imu.compass_readings + 90.0) % 360.0
                np.testing.assert_allclose(
                    modified.imu.compass_readings, expected
                )

    def test_offset_estimate_stays_stale(self, trace):
        shifted = inject_grip_shift(trace, 0, 45.0)
        assert (
            shifted.placement_offset_estimate_deg
            == trace.placement_offset_estimate_deg
        )

    def test_out_of_range(self, trace):
        with pytest.raises(ValueError):
            inject_grip_shift(trace, len(trace.hops), 10.0)


class TestStepLengthBias:
    def test_factor_applied(self, trace):
        biased = inject_step_length_bias(trace, 1.3)
        assert biased.estimated_step_length_m == pytest.approx(
            trace.estimated_step_length_m * 1.3
        )

    def test_invalid_factor(self, trace):
        with pytest.raises(ValueError):
            inject_step_length_bias(trace, 0.0)


class TestImuDropout:
    def test_dropped_hops_report_no_steps(self, trace):
        degraded = inject_imu_dropout(trace, [1, 3])
        assert count_steps_csc(degraded.hops[1].imu.accel) == 0.0
        assert count_steps_csc(degraded.hops[3].imu.accel) == 0.0
        assert count_steps_csc(degraded.hops[0].imu.accel) > 0.0

    def test_out_of_range(self, trace):
        with pytest.raises(ValueError):
            inject_imu_dropout(trace, [99])


class TestDegradationBehavior:
    """End-to-end: MoLoc degrades gracefully, never crashes."""

    def _accuracies(self, small_study, traces):
        from repro.core.localizer import MoLocLocalizer
        from repro.core.baselines import WiFiFingerprintingLocalizer
        from repro.sim.evaluation import evaluate_localizer

        fdb = small_study.fingerprint_db(6)
        mdb, _ = small_study.motion_db(6)
        plan = small_study.scenario.plan
        moloc = evaluate_localizer(
            MoLocLocalizer(fdb, mdb, small_study.config), traces, plan
        )
        wifi = evaluate_localizer(
            WiFiFingerprintingLocalizer(fdb), traces, plan
        )
        return moloc.accuracy, wifi.accuracy

    def test_ap_outage_degrades_but_moloc_still_wins(self, small_study):
        degraded = [
            inject_ap_outage(t, 5) for t in small_study.test_traces
        ]
        clean_moloc, _ = self._accuracies(small_study, small_study.test_traces)
        outage_moloc, outage_wifi = self._accuracies(small_study, degraded)
        assert outage_moloc <= clean_moloc + 0.02  # no free lunch
        assert outage_moloc > outage_wifi  # motion still helps

    def test_grip_shift_hurts_but_does_not_crash(self, small_study):
        degraded = [
            inject_grip_shift(t, 1, 120.0) for t in small_study.test_traces[:8]
        ]
        moloc_acc, wifi_acc = self._accuracies(small_study, degraded)
        clean_moloc, _ = self._accuracies(
            small_study, small_study.test_traces[:8]
        )
        assert moloc_acc < clean_moloc  # the fault genuinely hurts
        assert 0.0 <= moloc_acc <= 1.0

    def test_imu_dropout_falls_back_to_fingerprints(self, small_study):
        """With every IMU interval lost, MoLoc's fixes still complete."""
        degraded = [
            inject_imu_dropout(t, range(t.n_hops))
            for t in small_study.test_traces[:5]
        ]
        moloc_acc, wifi_acc = self._accuracies(small_study, degraded)
        assert 0.0 <= moloc_acc <= 1.0

    def test_step_length_bias_within_coarse_threshold_tolerated(
        self, small_study
    ):
        """A 5% step-length error moves offsets well within beta."""
        degraded = [
            inject_step_length_bias(t, 1.05) for t in small_study.test_traces
        ]
        biased_moloc, _ = self._accuracies(small_study, degraded)
        clean_moloc, _ = self._accuracies(small_study, small_study.test_traces)
        assert biased_moloc > clean_moloc - 0.1
