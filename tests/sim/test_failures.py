"""Tests for failure injection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.fingerprint import Fingerprint
from repro.radio.propagation import SENSITIVITY_FLOOR_DBM
from repro.sim.failures import (
    inject_ap_outage,
    inject_grip_shift,
    inject_imu_dropout,
    inject_step_length_bias,
    silence_ap,
)
from repro.motion.step_counting import count_steps_csc


@pytest.fixture()
def trace(small_study):
    return small_study.test_traces[0]


class TestSilenceAp:
    def test_reading_floored(self):
        fp = Fingerprint.from_values([-50.0, -60.0, -70.0])
        silenced = silence_ap(fp, 1)
        assert silenced.rss == (-50.0, SENSITIVITY_FLOOR_DBM, -70.0)

    def test_original_unchanged(self):
        fp = Fingerprint.from_values([-50.0, -60.0])
        silence_ap(fp, 0)
        assert fp.rss == (-50.0, -60.0)

    def test_out_of_range(self):
        fp = Fingerprint.from_values([-50.0])
        with pytest.raises(ValueError):
            silence_ap(fp, 1)
        with pytest.raises(ValueError):
            silence_ap(fp, -1)


class TestApOutage:
    def test_all_fingerprints_affected(self, trace):
        degraded = inject_ap_outage(trace, 3)
        assert degraded.initial_fingerprint.rss[3] == SENSITIVITY_FLOOR_DBM
        for hop in degraded.hops:
            assert hop.arrival_fingerprint.rss[3] == SENSITIVITY_FLOOR_DBM

    def test_other_aps_untouched(self, trace):
        degraded = inject_ap_outage(trace, 3)
        for original, modified in zip(trace.hops, degraded.hops):
            for ap in (0, 1, 2, 4, 5):
                assert (
                    modified.arrival_fingerprint.rss[ap]
                    == original.arrival_fingerprint.rss[ap]
                )

    def test_ground_truth_preserved(self, trace):
        degraded = inject_ap_outage(trace, 0)
        assert degraded.true_locations == trace.true_locations

    def test_original_trace_unchanged(self, trace):
        before = trace.initial_fingerprint.rss
        inject_ap_outage(trace, 0)
        assert trace.initial_fingerprint.rss == before


class TestGripShift:
    def test_later_hops_rotated(self, trace):
        shifted = inject_grip_shift(trace, after_hop=2, shift_deg=90.0)
        for index, (original, modified) in enumerate(
            zip(trace.hops, shifted.hops)
        ):
            if index <= 2:
                np.testing.assert_array_equal(
                    modified.imu.compass_readings, original.imu.compass_readings
                )
            else:
                expected = (original.imu.compass_readings + 90.0) % 360.0
                np.testing.assert_allclose(
                    modified.imu.compass_readings, expected
                )

    def test_offset_estimate_stays_stale(self, trace):
        shifted = inject_grip_shift(trace, 0, 45.0)
        assert (
            shifted.placement_offset_estimate_deg
            == trace.placement_offset_estimate_deg
        )

    def test_out_of_range(self, trace):
        with pytest.raises(ValueError):
            inject_grip_shift(trace, len(trace.hops), 10.0)


class TestStepLengthBias:
    def test_factor_applied(self, trace):
        biased = inject_step_length_bias(trace, 1.3)
        assert biased.estimated_step_length_m == pytest.approx(
            trace.estimated_step_length_m * 1.3
        )

    def test_invalid_factor(self, trace):
        with pytest.raises(ValueError):
            inject_step_length_bias(trace, 0.0)


class TestImuDropout:
    def test_dropped_hops_report_no_steps(self, trace):
        degraded = inject_imu_dropout(trace, [1, 3])
        assert count_steps_csc(degraded.hops[1].imu.accel) == 0.0
        assert count_steps_csc(degraded.hops[3].imu.accel) == 0.0
        assert count_steps_csc(degraded.hops[0].imu.accel) > 0.0

    def test_out_of_range(self, trace):
        with pytest.raises(ValueError):
            inject_imu_dropout(trace, [99])


class TestDegradationBehavior:
    """End-to-end: MoLoc degrades gracefully, never crashes."""

    def _accuracies(self, small_study, traces):
        from repro.core.localizer import MoLocLocalizer
        from repro.core.baselines import WiFiFingerprintingLocalizer
        from repro.sim.evaluation import evaluate_localizer

        fdb = small_study.fingerprint_db(6)
        mdb, _ = small_study.motion_db(6)
        plan = small_study.scenario.plan
        moloc = evaluate_localizer(
            MoLocLocalizer(fdb, mdb, small_study.config), traces, plan
        )
        wifi = evaluate_localizer(
            WiFiFingerprintingLocalizer(fdb), traces, plan
        )
        return moloc.accuracy, wifi.accuracy

    def test_ap_outage_degrades_but_moloc_still_wins(self, small_study):
        degraded = [
            inject_ap_outage(t, 5) for t in small_study.test_traces
        ]
        clean_moloc, _ = self._accuracies(small_study, small_study.test_traces)
        outage_moloc, outage_wifi = self._accuracies(small_study, degraded)
        assert outage_moloc <= clean_moloc + 0.02  # no free lunch
        assert outage_moloc > outage_wifi  # motion still helps

    def test_grip_shift_hurts_but_does_not_crash(self, small_study):
        degraded = [
            inject_grip_shift(t, 1, 120.0) for t in small_study.test_traces[:8]
        ]
        moloc_acc, wifi_acc = self._accuracies(small_study, degraded)
        clean_moloc, _ = self._accuracies(
            small_study, small_study.test_traces[:8]
        )
        assert moloc_acc < clean_moloc  # the fault genuinely hurts
        assert 0.0 <= moloc_acc <= 1.0

    def test_imu_dropout_falls_back_to_fingerprints(self, small_study):
        """With every IMU interval lost, MoLoc's fixes still complete."""
        degraded = [
            inject_imu_dropout(t, range(t.n_hops))
            for t in small_study.test_traces[:5]
        ]
        moloc_acc, wifi_acc = self._accuracies(small_study, degraded)
        assert 0.0 <= moloc_acc <= 1.0

    def test_step_length_bias_within_coarse_threshold_tolerated(
        self, small_study
    ):
        """A 5% step-length error moves offsets well within beta."""
        degraded = [
            inject_step_length_bias(t, 1.05) for t in small_study.test_traces
        ]
        biased_moloc, _ = self._accuracies(small_study, degraded)
        clean_moloc, _ = self._accuracies(small_study, small_study.test_traces)
        assert biased_moloc > clean_moloc - 0.1


@pytest.fixture()
def workload(small_study):
    from repro.sim.evaluation import multi_session_workload

    return multi_session_workload(
        small_study.test_traces, 4, corpus_size=2, stagger_ticks=1
    )


class TestMessageDuplication:
    def test_duplicate_lands_on_the_next_tick(self, workload):
        from repro.sim.failures import inject_message_duplication

        session_id = "user-0000"
        last = max(
            index
            for index, tick in enumerate(workload.ticks)
            if any(iv.session_id == session_id for iv in tick)
        )
        injected = inject_message_duplication(workload, session_id, last)
        original = next(
            iv for iv in injected.ticks[last] if iv.session_id == session_id
        )
        duplicate = next(
            iv
            for iv in injected.ticks[last + 1]
            if iv.session_id == session_id
        )
        assert duplicate is original  # same payload, same sequence number

    def test_refuses_a_colliding_next_tick(self, workload):
        from repro.sim.failures import inject_message_duplication

        # user-0000 has intervals on consecutive ticks from the start.
        with pytest.raises(ValueError, match="already has an interval"):
            inject_message_duplication(workload, "user-0000", 0)

    def test_out_of_range_and_unknown_session(self, workload):
        from repro.sim.failures import inject_message_duplication

        with pytest.raises(ValueError, match="out of range"):
            inject_message_duplication(workload, "user-0000", 999)
        with pytest.raises(ValueError, match="no interval"):
            inject_message_duplication(workload, "ghost", 0)


class TestMessageReorder:
    def test_adjacent_intervals_swap(self, workload):
        from repro.sim.failures import inject_message_reorder

        session_id = "user-0000"
        before_first = next(
            iv for iv in workload.ticks[2] if iv.session_id == session_id
        )
        before_second = next(
            iv for iv in workload.ticks[3] if iv.session_id == session_id
        )
        injected = inject_message_reorder(workload, session_id, 2)
        after_first = next(
            iv for iv in injected.ticks[2] if iv.session_id == session_id
        )
        after_second = next(
            iv for iv in injected.ticks[3] if iv.session_id == session_id
        )
        assert after_first is before_second
        assert after_second is before_first

    def test_other_sessions_untouched(self, workload):
        from repro.sim.failures import inject_message_reorder

        injected = inject_message_reorder(workload, "user-0000", 2)
        for tick_before, tick_after in zip(workload.ticks, injected.ticks):
            before = [
                iv for iv in tick_before if iv.session_id != "user-0000"
            ]
            after = [iv for iv in tick_after if iv.session_id != "user-0000"]
            assert [id(iv) for iv in before] == [id(iv) for iv in after]

    def test_missing_interval_raises(self, workload):
        from repro.sim.failures import inject_message_reorder

        with pytest.raises(ValueError):
            # Either the session is absent from the last tick or the
            # successor tick is out of range; both are rejected.
            inject_message_reorder(
                workload, "user-0000", len(workload.ticks) - 1
            )


class TestInjectorPurity:
    """Every injector is pure: new objects out, inputs never mutated.

    The chaos and robustness suites reuse one clean workload/trace set
    across many injections; a single mutating injector would silently
    poison every later measurement, so purity is asserted property-style
    across injectors and parameters, on snapshots of the raw float
    payloads (numpy arrays included).
    """

    @staticmethod
    def _trace_snapshot(trace):
        return (
            trace.user,
            trace.true_start,
            trace.initial_fingerprint.rss,
            trace.placement_offset_estimate_deg,
            trace.estimated_step_length_m,
            tuple(
                (
                    hop.arrival_fingerprint.rss,
                    hop.imu.accel.samples.tobytes(),
                    hop.imu.accel.true_step_times.tobytes(),
                    hop.imu.compass_readings.tobytes(),
                    hop.imu.true_course_deg,
                    hop.imu.true_distance_m,
                )
                for hop in trace.hops
            ),
        )

    @staticmethod
    def _workload_snapshot(workload):
        # Interval payloads are shared immutables; identity plus tick
        # shape pins the structure an injector could corrupt.
        return (
            tuple(sorted(workload.sessions)),
            tuple(tuple(id(iv) for iv in tick) for tick in workload.ticks),
        )

    @pytest.mark.parametrize(
        "inject",
        [
            lambda t: inject_ap_outage(t, 2),
            lambda t: inject_grip_shift(t, 1, 75.0),
            lambda t: inject_step_length_bias(t, 1.4),
            lambda t: inject_imu_dropout(t, [0, 2]),
        ],
        ids=["ap_outage", "grip_shift", "step_length_bias", "imu_dropout"],
    )
    def test_trace_injectors_do_not_mutate(self, trace, inject):
        before = self._trace_snapshot(trace)
        inject(trace)
        assert self._trace_snapshot(trace) == before

    @given(data=st.data())
    @settings(
        max_examples=25,
        deadline=None,
        # The fixture is shared across examples on purpose: not being
        # mutated by the injectors is exactly the property under test.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_message_injectors_do_not_mutate(self, workload, data):
        from repro.sim.failures import (
            inject_message_duplication,
            inject_message_reorder,
        )

        before = self._workload_snapshot(workload)
        session_id = data.draw(
            st.sampled_from(sorted(workload.sessions)), label="session"
        )
        tick = data.draw(
            st.integers(min_value=0, max_value=len(workload.ticks)),
            label="tick",
        )
        inject = data.draw(
            st.sampled_from(
                [inject_message_duplication, inject_message_reorder]
            ),
            label="injector",
        )
        try:
            injected = inject(workload, session_id, tick)
        except ValueError:
            injected = None  # invalid placements must also leave no trace
        assert self._workload_snapshot(workload) == before
        if injected is not None:
            # The result shares no tick-list objects with the input:
            # mutating it later cannot reach back either.
            assert injected.ticks is not workload.ticks
            for mine, theirs in zip(injected.ticks, workload.ticks):
                assert mine is not theirs
