"""Tests for adversarial injection (rogue AP, replay, IMU spoofing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fingerprint import RSS_CEILING_DBM, RSS_FLOOR_DBM
from repro.sim.adversary import (
    DEFAULT_ROGUE_DBM,
    forge_rogue_reading,
    inject_ap_repower,
    inject_imu_spoof,
    inject_rogue_ap,
    inject_scan_replay,
    shift_ap_reading,
    spoof_compass,
)


@pytest.fixture()
def trace(small_study):
    return small_study.test_traces[0]


class TestForgeRogueReading:
    def test_struck_slot_overwritten(self):
        forged = forge_rogue_reading([-50.0, -60.0, -70.0], 1)
        assert forged == [-50.0, DEFAULT_ROGUE_DBM, -70.0]

    def test_input_unchanged(self):
        scan = [-50.0, -60.0]
        forge_rogue_reading(scan, 0)
        assert scan == [-50.0, -60.0]

    def test_out_of_range_matches_silence_ap_shape(self):
        # Both injector families validate slots through _check_ap_slot,
        # so the error message shape is shared.
        with pytest.raises(ValueError, match="out of range"):
            forge_rogue_reading([-50.0], 1)
        with pytest.raises(ValueError, match="out of range"):
            forge_rogue_reading([-50.0], -1)


class TestShiftApReading:
    def test_shift_applied(self):
        assert shift_ap_reading([-50.0, -60.0], 1, 15.0) == [-50.0, -45.0]

    def test_clipped_to_physical_range(self):
        shifted = shift_ap_reading([-5.0, -98.0], 0, 50.0)
        assert shifted[0] == RSS_CEILING_DBM
        shifted = shift_ap_reading([-5.0, -98.0], 1, -50.0)
        assert shifted[1] == RSS_FLOOR_DBM

    def test_floored_slot_stays_floored(self):
        """A silent AP does not get louder by being power-cycled."""
        shifted = shift_ap_reading([RSS_FLOOR_DBM, -60.0], 0, 30.0)
        assert shifted[0] == RSS_FLOOR_DBM


class TestSpoofCompass:
    def test_oscillates_around_the_honest_stream(self, trace):
        imu = trace.hops[0].imu
        spoofed = spoof_compass(imu, 90.0)
        honest = np.asarray(imu.compass_readings)
        signs = np.where(np.arange(honest.size) % 2 == 0, 1.0, -1.0)
        np.testing.assert_allclose(
            spoofed.compass_readings, (honest + 90.0 * signs) % 360.0
        )

    def test_accel_and_truth_untouched(self, trace):
        imu = trace.hops[0].imu
        spoofed = spoof_compass(imu)
        assert spoofed.accel is imu.accel
        assert spoofed.true_course_deg == imu.true_course_deg

    def test_non_positive_amplitude_rejected(self, trace):
        with pytest.raises(ValueError, match="amplitude"):
            spoof_compass(trace.hops[0].imu, 0.0)


class TestInjectRogueAp:
    def test_onset_zero_strikes_every_interval(self, trace):
        attacked = inject_rogue_ap(trace, 5, 0)
        assert attacked.initial_fingerprint.rss[5] == DEFAULT_ROGUE_DBM
        for hop in attacked.hops:
            assert hop.arrival_fingerprint.rss[5] == DEFAULT_ROGUE_DBM

    def test_onset_semantics(self, trace):
        """Interval 0 is the initial scan; interval i is hop i-1."""
        attacked = inject_rogue_ap(trace, 5, 2)
        assert (
            attacked.initial_fingerprint.rss == trace.initial_fingerprint.rss
        )
        assert (
            attacked.hops[0].arrival_fingerprint.rss
            == trace.hops[0].arrival_fingerprint.rss
        )
        for hop in attacked.hops[1:]:
            assert hop.arrival_fingerprint.rss[5] == DEFAULT_ROGUE_DBM

    def test_other_slots_untouched(self, trace):
        attacked = inject_rogue_ap(trace, 5, 0)
        for original, forged in zip(trace.hops, attacked.hops):
            assert (
                forged.arrival_fingerprint.rss[:5]
                == original.arrival_fingerprint.rss[:5]
            )

    def test_ground_truth_preserved(self, trace):
        attacked = inject_rogue_ap(trace, 0, 0)
        assert attacked.true_locations == trace.true_locations

    def test_out_of_range_rejected(self, trace):
        with pytest.raises(ValueError, match="out of range"):
            inject_rogue_ap(trace, 99, 0)
        with pytest.raises(ValueError, match="onset_interval"):
            inject_rogue_ap(trace, 0, len(trace.hops) + 2)


class TestInjectApRepower:
    def test_shifts_from_onset_on(self, trace):
        attacked = inject_ap_repower(trace, 5, 1, 15.0)
        assert (
            attacked.initial_fingerprint.rss == trace.initial_fingerprint.rss
        )
        for original, shifted in zip(trace.hops, attacked.hops):
            expected = min(
                original.arrival_fingerprint.rss[5] + 15.0, RSS_CEILING_DBM
            )
            if original.arrival_fingerprint.rss[5] == RSS_FLOOR_DBM:
                expected = RSS_FLOOR_DBM
            assert shifted.arrival_fingerprint.rss[5] == expected

    def test_zero_shift_rejected(self, trace):
        with pytest.raises(ValueError, match="non-zero"):
            inject_ap_repower(trace, 5, 1, 0.0)


class TestInjectScanReplay:
    def test_scans_freeze_at_the_captured_interval(self, trace):
        attacked = inject_scan_replay(trace, 3, 0)
        captured = trace.initial_fingerprint
        for index, hop in enumerate(attacked.hops):
            if index + 1 < 3:
                assert (
                    hop.arrival_fingerprint.rss
                    == trace.hops[index].arrival_fingerprint.rss
                )
            else:
                assert hop.arrival_fingerprint.rss == captured.rss

    def test_capture_from_a_later_hop(self, trace):
        attacked = inject_scan_replay(trace, 4, 2)
        captured = trace.hops[1].arrival_fingerprint
        assert attacked.hops[5].arrival_fingerprint.rss == captured.rss

    def test_imu_left_honest(self, trace):
        attacked = inject_scan_replay(trace, 3, 0)
        for original, replayed in zip(trace.hops, attacked.hops):
            assert replayed.imu is original.imu

    def test_cannot_replay_the_future(self, trace):
        with pytest.raises(ValueError, match="must precede"):
            inject_scan_replay(trace, 2, 2)
        with pytest.raises(ValueError, match="must precede"):
            inject_scan_replay(trace, 2, 5)


class TestInjectImuSpoof:
    def test_spoofed_from_onset_hop(self, trace):
        attacked = inject_imu_spoof(trace, 2)
        for index, (original, spoofed) in enumerate(
            zip(trace.hops, attacked.hops)
        ):
            if index < 2:
                assert spoofed.imu is original.imu
            else:
                assert not np.array_equal(
                    spoofed.imu.compass_readings,
                    original.imu.compass_readings,
                )
                assert spoofed.imu.accel is original.imu.accel

    def test_step_replay_substitutes_the_donor_stride(self, trace):
        attacked = inject_imu_spoof(trace, 1, step_replay_hop=0)
        donor = trace.hops[0].imu.accel
        for hop in attacked.hops[1:]:
            assert hop.imu.accel is donor

    def test_scans_left_honest(self, trace):
        attacked = inject_imu_spoof(trace, 0)
        for original, spoofed in zip(trace.hops, attacked.hops):
            assert (
                spoofed.arrival_fingerprint.rss
                == original.arrival_fingerprint.rss
            )

    def test_out_of_range_rejected(self, trace):
        with pytest.raises(ValueError, match="onset_hop"):
            inject_imu_spoof(trace, len(trace.hops))
        with pytest.raises(ValueError, match="step_replay_hop"):
            inject_imu_spoof(trace, 0, step_replay_hop=99)


class TestInjectorPurity:
    """Adversarial injectors are pure: inputs never mutate."""

    @staticmethod
    def _trace_snapshot(trace):
        return (
            trace.initial_fingerprint.rss,
            tuple(
                (
                    hop.arrival_fingerprint.rss,
                    hop.imu.accel.samples.tobytes(),
                    hop.imu.compass_readings.tobytes(),
                )
                for hop in trace.hops
            ),
        )

    @pytest.mark.parametrize(
        "inject",
        [
            lambda t: inject_rogue_ap(t, 3, 1),
            lambda t: inject_ap_repower(t, 3, 1, 12.0),
            lambda t: inject_scan_replay(t, 2, 0),
            lambda t: inject_imu_spoof(t, 1, step_replay_hop=0),
        ],
        ids=["rogue_ap", "ap_repower", "scan_replay", "imu_spoof"],
    )
    def test_injectors_do_not_mutate(self, trace, inject):
        before = self._trace_snapshot(trace)
        inject(trace)
        assert self._trace_snapshot(trace) == before

    def test_injections_are_deterministic(self, trace):
        first = inject_rogue_ap(trace, 4, 2)
        second = inject_rogue_ap(trace, 4, 2)
        assert self._trace_snapshot(first) == self._trace_snapshot(second)
