"""Tests for scenario assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.scenario import build_scenario


class TestBuildScenario:
    def test_paper_protocol(self, scenario):
        assert len(scenario.plan) == 28
        assert scenario.environment.n_aps == 6
        assert len(scenario.users) == 4
        assert scenario.survey.database.n_aps == 6

    def test_survey_splits(self, scenario):
        for location_id in scenario.plan.location_ids:
            assert len(scenario.survey.holdout_at(location_id)) == 20

    def test_needs_at_least_one_user(self):
        with pytest.raises(ValueError):
            build_scenario(n_users=0)

    def test_users_have_distinct_compass_biases(self, scenario):
        biases = {u.imu.compass.device_bias_deg for u in scenario.users}
        assert len(biases) == len(scenario.users)

    def test_users_share_disturbance_field(self, scenario):
        fields = {id(u.imu.compass.disturbance) for u in scenario.users}
        assert len(fields) == 1

    def test_deterministic_given_seed(self):
        a = build_scenario(seed=3, samples_per_location=6, training_samples=4)
        b = build_scenario(seed=3, samples_per_location=6, training_samples=4)
        for lid in a.plan.location_ids:
            assert a.survey.database.fingerprint_of(
                lid
            ) == b.survey.database.fingerprint_of(lid)
        for ua, ub in zip(a.users, b.users):
            assert ua.body == ub.body
            assert ua.true_step_length_m == ub.true_step_length_m

    def test_different_seeds_differ(self):
        a = build_scenario(seed=3, samples_per_location=6, training_samples=4)
        b = build_scenario(seed=4, samples_per_location=6, training_samples=4)
        fp_a = a.survey.database.fingerprint_of(1)
        fp_b = b.survey.database.fingerprint_of(1)
        assert fp_a != fp_b
