"""Tests for scenario assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.scenario import build_scenario


class TestBuildScenario:
    def test_paper_protocol(self, scenario):
        assert len(scenario.plan) == 28
        assert scenario.environment.n_aps == 6
        assert len(scenario.users) == 4
        assert scenario.survey.database.n_aps == 6

    def test_survey_splits(self, scenario):
        for location_id in scenario.plan.location_ids:
            assert len(scenario.survey.holdout_at(location_id)) == 20

    def test_needs_at_least_one_user(self):
        with pytest.raises(ValueError):
            build_scenario(n_users=0)

    def test_users_have_distinct_compass_biases(self, scenario):
        biases = {u.imu.compass.device_bias_deg for u in scenario.users}
        assert len(biases) == len(scenario.users)

    def test_users_share_disturbance_field(self, scenario):
        fields = {id(u.imu.compass.disturbance) for u in scenario.users}
        assert len(fields) == 1

    def test_deterministic_given_seed(self):
        a = build_scenario(seed=3, samples_per_location=6, training_samples=4)
        b = build_scenario(seed=3, samples_per_location=6, training_samples=4)
        for lid in a.plan.location_ids:
            assert a.survey.database.fingerprint_of(
                lid
            ) == b.survey.database.fingerprint_of(lid)
        for ua, ub in zip(a.users, b.users):
            assert ua.body == ub.body
            assert ua.true_step_length_m == ub.true_step_length_m

    def test_different_seeds_differ(self):
        a = build_scenario(seed=3, samples_per_location=6, training_samples=4)
        b = build_scenario(seed=4, samples_per_location=6, training_samples=4)
        fp_a = a.survey.database.fingerprint_of(1)
        fp_b = b.survey.database.fingerprint_of(1)
        assert fp_a != fp_b


class TestScenarioInputValidation:
    """build_scenario fails fast with clear messages, not index errors."""

    def test_rejects_zero_samples_per_location(self):
        with pytest.raises(ValueError, match="samples_per_location"):
            build_scenario(samples_per_location=0)

    def test_rejects_training_samples_beyond_survey(self):
        with pytest.raises(ValueError, match="training_samples must be in"):
            build_scenario(samples_per_location=6, training_samples=7)

    def test_rejects_ap_count_beyond_mount_capacity(self):
        with pytest.raises(ValueError, match=r"n_aps must be in \[1, 6\]"):
            build_scenario(
                samples_per_location=6, training_samples=4, n_aps=7
            )

    def test_rejects_zero_ap_count(self):
        with pytest.raises(ValueError, match="n_aps must be in"):
            build_scenario(
                samples_per_location=6, training_samples=4, n_aps=0
            )

    def test_ap_subset_deploys_prefix(self):
        scenario = build_scenario(
            samples_per_location=6, training_samples=4, n_aps=4
        )
        assert scenario.survey.database.n_aps == 4


class TestGeneratedHall:
    """The identical pipeline runs over procedurally generated worlds."""

    def test_scenario_over_generated_environment(self):
        from repro.env.procedural import EnvironmentSpec, generate_environment

        spec = EnvironmentSpec(topology="warehouse", rows=4, cols=3,
                               floor_width_m=20.0, floor_height_m=18.0,
                               n_aps=4)
        env = generate_environment(spec, seed=3)
        scenario = build_scenario(
            seed=5, hall=env.hall, samples_per_location=6, training_samples=4
        )
        assert scenario.plan is env.plan
        assert scenario.survey.database.n_aps == 4
        assert set(scenario.survey.database.location_ids) == set(
            env.plan.location_ids
        )

    def test_capacity_error_names_the_generated_plan(self):
        from repro.env.procedural import EnvironmentSpec, generate_environment

        spec = EnvironmentSpec(topology="corridor", rows=3, cols=4,
                               floor_width_m=20.0, floor_height_m=12.0,
                               n_aps=3)
        env = generate_environment(spec, seed=3)
        with pytest.raises(ValueError, match="defines 3 AP mounts"):
            build_scenario(hall=env.hall, n_aps=4)
