"""Tests for the ASCII floor-plan renderer."""

from __future__ import annotations

import pytest

from repro.env.render import render_floorplan


class TestRendering:
    def test_all_location_ids_drawn(self, hall):
        drawing = render_floorplan(hall.plan)
        # Single-digit ids can collide with digits of larger ids, so test
        # the unambiguous two-digit ones.
        for location_id in (10, 15, 21, 28):
            assert str(location_id) in drawing

    def test_aps_drawn(self, hall):
        drawing = render_floorplan(hall.plan)
        assert drawing.count("*") == len(hall.plan.ap_positions)

    def test_aps_can_be_hidden(self, hall):
        drawing = render_floorplan(hall.plan, show_aps=False)
        assert "*" not in drawing

    def test_walls_drawn(self, hall):
        assert "#" in render_floorplan(hall.plan)

    def test_path_footsteps(self, hall):
        with_path = render_floorplan(hall.plan, path=[1, 2, 9])
        without = render_floorplan(hall.plan)
        assert with_path.count(".") > without.count(".")

    def test_bordered(self, hall):
        lines = render_floorplan(hall.plan, width_chars=60).splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert all(line.startswith(("|", "+")) for line in lines)
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_width_respected(self, hall):
        lines = render_floorplan(hall.plan, width_chars=50).splitlines()
        assert len(lines[0]) == 50

    def test_width_validation(self, hall):
        with pytest.raises(ValueError):
            render_floorplan(hall.plan, width_chars=10)

    def test_unknown_path_location(self, hall):
        with pytest.raises(KeyError):
            render_floorplan(hall.plan, path=[1, 99])

    def test_tall_narrow_plan(self):
        from repro.env.floorplan import FloorPlan, ReferenceLocation
        from repro.env.geometry import Point

        plan = FloorPlan(
            width=4.0,
            height=30.0,
            reference_locations=[ReferenceLocation(1, Point(2, 15))],
        )
        drawing = render_floorplan(plan, width_chars=24)
        assert "1" in drawing
