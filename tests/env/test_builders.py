"""Tests for the grid floor-plan builder."""

from __future__ import annotations

import pytest

from repro.env.builders import grid_floorplan
from repro.env.geometry import Point, Segment
from repro.env.office_hall import office_hall


class TestGridFloorplan:
    def test_basic_grid(self):
        hall = grid_floorplan(3, 5, width=25.0, height=12.0)
        assert len(hall.plan) == 15
        assert hall.graph.is_connected()
        # Full grid: 3*4 horizontal + 5*2 vertical edges.
        assert len(hall.graph.edge_list) == 12 + 10

    def test_row_major_numbering_top_first(self):
        hall = grid_floorplan(2, 3, width=12.0, height=8.0)
        assert hall.plan.position_of(1).y > hall.plan.position_of(4).y
        assert hall.plan.position_of(1).x < hall.plan.position_of(3).x

    def test_single_cell(self):
        hall = grid_floorplan(1, 1, width=5.0, height=5.0)
        assert len(hall.plan) == 1
        assert hall.graph.edge_list == []

    def test_blocked_hops_removed(self):
        hall = grid_floorplan(
            2, 2, width=10.0, height=10.0, blocked_hops=[(1, 2)]
        )
        assert not hall.graph.are_adjacent(1, 2)
        assert hall.graph.are_adjacent(1, 3)

    def test_non_adjacent_block_rejected(self):
        with pytest.raises(ValueError, match="not grid-adjacent"):
            grid_floorplan(2, 2, width=10, height=10, blocked_hops=[(1, 4)])

    def test_unknown_block_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            grid_floorplan(2, 2, width=10, height=10, blocked_hops=[(1, 9)])

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            grid_floorplan(0, 3, width=10, height=10)
        with pytest.raises(ValueError):
            grid_floorplan(2, 2, width=-1, height=10)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            grid_floorplan(2, 2, width=10, height=10, x_margin=6.0)

    def test_wall_across_open_aisle_rejected(self):
        wall = Segment(Point(0.0, 5.0), Point(10.0, 5.0))
        with pytest.raises(ValueError, match="crosses a wall"):
            grid_floorplan(2, 2, width=10.0, height=10.0, walls=[wall])

    def test_wall_across_blocked_hop_allowed(self):
        """Partition walls are legal exactly where hops are blocked."""
        hall = grid_floorplan(
            2,
            2,
            width=10.0,
            height=10.0,
            walls=[Segment(Point(1.5, 5.0), Point(3.5, 5.0))],
            blocked_hops=[(1, 3)],
        )
        assert not hall.graph.are_adjacent(1, 3)

    def test_ap_positions_carried(self):
        hall = grid_floorplan(
            2, 2, width=10, height=10, ap_positions=[Point(5, 5)]
        )
        assert hall.plan.ap_positions == (Point(5, 5),)

    def test_reproduces_office_hall_geometry(self):
        """The builder with the paper's parameters matches office_hall."""
        built = grid_floorplan(
            4,
            7,
            width=40.8,
            height=16.0,
            x_margin=3.4,
            y_margin=2.0,
            blocked_hops=[(10, 17), (12, 19)],
        )
        reference = office_hall()
        for lid in reference.plan.location_ids:
            assert built.plan.position_of(lid) == reference.plan.position_of(lid)
        assert built.graph.edge_list == reference.graph.edge_list


class TestInputValidation:
    """Clear up-front ValueErrors instead of downstream index errors."""

    def test_rejects_non_integer_rows(self):
        with pytest.raises(ValueError, match="rows must be an integer"):
            grid_floorplan(2.5, 3, width=10.0, height=10.0)

    def test_rejects_non_integer_cols(self):
        with pytest.raises(ValueError, match="cols must be an integer"):
            grid_floorplan(2, "3", width=10.0, height=10.0)

    def test_rejects_bool_dims(self):
        with pytest.raises(ValueError, match="must be an integer"):
            grid_floorplan(True, 3, width=10.0, height=10.0)

    def test_rejects_non_positive_dims(self):
        with pytest.raises(ValueError, match="grid must be at least 1x1"):
            grid_floorplan(0, 3, width=10.0, height=10.0)
        with pytest.raises(ValueError, match="grid must be at least 1x1"):
            grid_floorplan(2, -1, width=10.0, height=10.0)

    def test_rejects_non_positive_extents(self):
        with pytest.raises(ValueError, match="dimensions must be positive"):
            grid_floorplan(2, 2, width=0.0, height=10.0)
        with pytest.raises(ValueError, match="dimensions must be positive"):
            grid_floorplan(2, 2, width=10.0, height=-4.0)

    def test_rejects_out_of_bounds_ap_mounts(self):
        with pytest.raises(ValueError, match="outside the"):
            grid_floorplan(
                2, 2, width=10.0, height=10.0, ap_positions=[Point(11.0, 5.0)]
            )
        with pytest.raises(ValueError, match="outside the"):
            grid_floorplan(
                2, 2, width=10.0, height=10.0, ap_positions=[Point(5.0, -0.1)]
            )

    def test_boundary_ap_mounts_are_allowed(self):
        hall = grid_floorplan(
            2, 2, width=10.0, height=10.0,
            ap_positions=[Point(0.0, 0.0), Point(10.0, 10.0)],
        )
        assert len(hall.plan.selected_aps()) == 2
