"""Tests for the floor-plan model."""

from __future__ import annotations

import pytest

from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point, Segment


def simple_plan(**overrides) -> FloorPlan:
    defaults = dict(
        width=10.0,
        height=8.0,
        reference_locations=[
            ReferenceLocation(1, Point(2, 2)),
            ReferenceLocation(2, Point(8, 2)),
            ReferenceLocation(3, Point(2, 6)),
        ],
        walls=[Segment(Point(5, 0), Point(5, 4))],
        ap_positions=[Point(1, 1), Point(9, 7)],
    )
    defaults.update(overrides)
    return FloorPlan(**defaults)


class TestConstruction:
    def test_dimensions_must_be_positive(self):
        with pytest.raises(ValueError):
            simple_plan(width=0.0)
        with pytest.raises(ValueError):
            simple_plan(height=-1.0)

    def test_duplicate_location_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            simple_plan(
                reference_locations=[
                    ReferenceLocation(1, Point(1, 1)),
                    ReferenceLocation(1, Point(2, 2)),
                ]
            )

    def test_location_outside_bounds_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            simple_plan(
                reference_locations=[ReferenceLocation(1, Point(11, 1))]
            )

    def test_non_positive_location_id_rejected(self):
        with pytest.raises(ValueError):
            ReferenceLocation(0, Point(1, 1))


class TestLocationQueries:
    def test_location_ids_sorted(self):
        assert simple_plan().location_ids == [1, 2, 3]

    def test_len_and_contains(self):
        plan = simple_plan()
        assert len(plan) == 3
        assert 2 in plan
        assert 99 not in plan

    def test_unknown_location_raises_keyerror(self):
        with pytest.raises(KeyError):
            simple_plan().location(99)

    def test_position_of(self):
        assert simple_plan().position_of(2) == Point(8, 2)

    def test_distance_between(self):
        assert simple_plan().distance_between(1, 2) == pytest.approx(6.0)

    def test_nearest_location(self):
        plan = simple_plan()
        assert plan.nearest_location(Point(7.5, 2.5)).location_id == 2

    def test_nearest_ties_break_low_id(self):
        plan = FloorPlan(
            width=10,
            height=10,
            reference_locations=[
                ReferenceLocation(1, Point(2, 5)),
                ReferenceLocation(2, Point(8, 5)),
            ],
        )
        assert plan.nearest_location(Point(5, 5)).location_id == 1

    def test_nearest_on_empty_plan_raises(self):
        plan = FloorPlan(width=5, height=5, reference_locations=[])
        with pytest.raises(ValueError):
            plan.nearest_location(Point(1, 1))


class TestSpatialQueries:
    def test_contains_boundary_inclusive(self):
        plan = simple_plan()
        assert plan.contains(Point(0, 0))
        assert plan.contains(Point(10, 8))
        assert not plan.contains(Point(10.01, 4))

    def test_wall_count_blocked_path(self):
        plan = simple_plan()
        # Path from (2,2) to (8,2) crosses the wall at x=5 (wall spans y 0..4).
        assert plan.wall_count_between(Point(2, 2), Point(8, 2)) == 1

    def test_wall_count_clear_path(self):
        plan = simple_plan()
        # Path at y=6 passes above the wall.
        assert plan.wall_count_between(Point(2, 6), Point(8, 6)) == 0

    def test_line_of_sight(self):
        plan = simple_plan()
        assert not plan.has_line_of_sight(Point(2, 2), Point(8, 2))
        assert plan.has_line_of_sight(Point(2, 6), Point(8, 6))


class TestApSelection:
    def test_all_aps_by_default(self):
        assert len(simple_plan().selected_aps()) == 2

    def test_prefix_selection(self):
        plan = simple_plan()
        assert plan.selected_aps(1) == (Point(1, 1),)

    def test_too_many_aps_rejected(self):
        with pytest.raises(ValueError):
            simple_plan().selected_aps(3)

    def test_zero_aps_rejected(self):
        with pytest.raises(ValueError):
            simple_plan().selected_aps(0)


def test_repr_mentions_name_and_counts():
    text = repr(simple_plan())
    assert "3 locations" in text
    assert "1 walls" in text
