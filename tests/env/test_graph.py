"""Tests for the walkable aisle graph."""

from __future__ import annotations

import pytest

from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point, Segment
from repro.env.graph import WalkableGraph


@pytest.fixture()
def square_plan() -> FloorPlan:
    """Four locations on a square, a wall between 2 and 4."""
    return FloorPlan(
        width=10.0,
        height=10.0,
        reference_locations=[
            ReferenceLocation(1, Point(2, 2)),
            ReferenceLocation(2, Point(8, 2)),
            ReferenceLocation(3, Point(2, 8)),
            ReferenceLocation(4, Point(8, 8)),
        ],
        walls=[Segment(Point(6, 5), Point(10, 5))],
    )


@pytest.fixture()
def square_graph(square_plan) -> WalkableGraph:
    return WalkableGraph(
        square_plan, edges=[(1, 2), (1, 3), (3, 4)], validate_line_of_sight=True
    )


class TestConstruction:
    def test_self_loop_rejected(self, square_plan):
        with pytest.raises(ValueError, match="self-loop"):
            WalkableGraph(square_plan, edges=[(1, 1)])

    def test_unknown_location_rejected(self, square_plan):
        with pytest.raises(ValueError, match="unknown"):
            WalkableGraph(square_plan, edges=[(1, 9)])

    def test_edge_through_wall_rejected(self, square_plan):
        # 2 -> 4 crosses the wall at y=5 (x in [6, 10]).
        with pytest.raises(ValueError, match="crosses a wall"):
            WalkableGraph(square_plan, edges=[(2, 4)])

    def test_wall_validation_can_be_disabled(self, square_plan):
        graph = WalkableGraph(
            square_plan, edges=[(2, 4)], validate_line_of_sight=False
        )
        assert graph.are_adjacent(2, 4)


class TestStructure:
    def test_neighbors_sorted(self, square_graph):
        assert square_graph.neighbors(1) == [2, 3]

    def test_neighbors_of_unknown_location(self, square_graph):
        with pytest.raises(KeyError):
            square_graph.neighbors(99)

    def test_adjacency_symmetric(self, square_graph):
        assert square_graph.are_adjacent(1, 3)
        assert square_graph.are_adjacent(3, 1)
        assert not square_graph.are_adjacent(2, 3)

    def test_degree(self, square_graph):
        assert square_graph.degree(1) == 2
        assert square_graph.degree(4) == 1

    def test_edge_list_normalized(self, square_graph):
        assert square_graph.edge_list == [(1, 2), (1, 3), (3, 4)]

    def test_connected(self, square_graph):
        assert square_graph.is_connected()

    def test_disconnected_graph_detected(self, square_plan):
        graph = WalkableGraph(square_plan, edges=[(1, 2)])
        assert not graph.is_connected()


class TestHopMeasurements:
    def test_hop_distance(self, square_graph):
        assert square_graph.hop_distance(1, 2) == pytest.approx(6.0)

    def test_hop_distance_non_adjacent_raises(self, square_graph):
        with pytest.raises(KeyError):
            square_graph.hop_distance(2, 3)

    def test_hop_bearing_east(self, square_graph):
        assert square_graph.hop_bearing(1, 2) == pytest.approx(90.0)

    def test_hop_bearing_reverse_is_mirrored(self, square_graph):
        forward = square_graph.hop_bearing(1, 2)
        backward = square_graph.hop_bearing(2, 1)
        assert (forward + 180.0) % 360.0 == pytest.approx(backward)

    def test_hop_bearing_non_adjacent_raises(self, square_graph):
        with pytest.raises(KeyError):
            square_graph.hop_bearing(1, 4)


class TestPaths:
    def test_shortest_path_avoids_missing_edges(self, square_graph):
        # 2 -> 4 must detour through 1 and 3.
        assert square_graph.shortest_path(2, 4) == [2, 1, 3, 4]

    def test_walking_distance(self, square_graph):
        assert square_graph.walking_distance(2, 4) == pytest.approx(18.0)

    def test_walking_distance_single_hop_is_straight(self, square_graph):
        assert square_graph.walking_distance(1, 2) == pytest.approx(6.0)
