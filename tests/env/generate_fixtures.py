"""Regenerate the golden environment fixtures in ``tests/env/fixtures/``.

Run from the repo root after an *intentional* change to the generator or
to any numerical stage of the pipeline (survey, ambiguity, serving):

    PYTHONPATH=src:tests/env python tests/env/generate_fixtures.py

Each fixture pins a generated world plus bit-level checksums of the full
pipeline over it (radio map, twin census, 8-session serving run); the
suite in ``tests/integration/test_matrix_golden.py`` requires exact
reproduction.
"""

from __future__ import annotations

import json

from fixture_worlds import FIXTURE_SPECS, FIXTURES_DIR, build_record, fixture_path


def main() -> None:
    FIXTURES_DIR.mkdir(exist_ok=True)
    for name in FIXTURE_SPECS:
        record = build_record(name)
        path = fixture_path(name)
        path.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        census = record["twin_census"]
        print(
            f"wrote {path} ({census['n_twins']} twins, "
            f"fix checksum {record['fix_checksum'][:12]}...)"
        )


if __name__ == "__main__":
    main()
