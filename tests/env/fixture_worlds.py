"""The three golden generated environments and their pipeline records.

Shared between ``tests/integration/test_matrix_golden.py`` and
``generate_fixtures.py`` (the regeneration script), so the fixtures on
disk and the assertions in the suite can never disagree about what a
world contains.

Each fixture pins one small generated environment (the same specs the
matrix smoke profile sweeps) and the bit-level checksums of the full
pipeline run over it: the serialized plan, the surveyed radio map, the
twin census, and an 8-session batched serving run's fix streams.
Floats ride through JSON ``repr`` (bit-exact) or ``float.hex``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Tuple

from repro.analysis.ambiguity import analyze_ambiguity
from repro.core.config import MoLocConfig
from repro.env.procedural import (
    EnvironmentSpec,
    GeneratedEnvironment,
    environment_checksum,
    generate_environment,
)
from repro.io.serialize import (
    fingerprint_db_to_dict,
    floorplan_to_dict,
    graph_to_dict,
)
from repro.serving import (
    BatchedServingEngine,
    build_session_services,
    serve_batched,
    workload_checksum,
)
from repro.sim.crowdsource import TraceGenerationConfig
from repro.sim.evaluation import multi_session_workload
from repro.sim.experiments import Study, prepare_study

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
STUDY_SEED = 7
N_SESSIONS = 8

FIXTURE_SPECS: Dict[str, Tuple[int, EnvironmentSpec]] = {
    "tower": (101, EnvironmentSpec(topology="tower", floors=2, rows=2, cols=3,
                                   floor_width_m=24.0, floor_height_m=10.0,
                                   n_aps=5, placement="grid")),
    "mall": (202, EnvironmentSpec(topology="mall", rows=4, cols=4,
                                  floor_width_m=28.0, floor_height_m=16.0,
                                  n_aps=5, placement="perimeter")),
    "warehouse": (303, EnvironmentSpec(topology="warehouse", rows=4, cols=3,
                                       floor_width_m=20.0, floor_height_m=18.0,
                                       n_aps=4, placement="sparse-adversarial")),
}
"""The matrix smoke profile's environments, pinned as golden worlds."""


def build_world(name: str) -> Tuple[GeneratedEnvironment, Study]:
    """Generate one golden world and prepare its (smoke-scale) study."""
    env_seed, spec = FIXTURE_SPECS[name]
    environment = generate_environment(spec, seed=env_seed)
    study = prepare_study(
        seed=STUDY_SEED,
        n_training_traces=24,
        n_test_traces=8,
        trace_config=TraceGenerationConfig(n_hops=6),
        config=MoLocConfig(),
        hall=environment.hall,
        samples_per_location=12,
        training_samples=8,
    )
    return environment, study


def _canonical_checksum(payload: object) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def serve_world(environment: GeneratedEnvironment, study: Study) -> str:
    """The 8-session batched serving run; returns the fix checksum."""
    n_aps = environment.spec.n_aps
    fingerprint_db = study.fingerprint_db(n_aps)
    motion_db, _ = study.motion_db(n_aps)
    workload = multi_session_workload(
        study.test_traces, N_SESSIONS, corpus_size=4, stagger_ticks=1
    )
    services = build_session_services(
        workload,
        fingerprint_db,
        motion_db,
        study.config,
        resilient=True,
        plan=study.scenario.plan,
    )
    engine = BatchedServingEngine(fingerprint_db, motion_db, study.config)
    return workload_checksum(serve_batched(engine, workload, services))


def build_record(name: str) -> Dict[str, object]:
    """The full golden record for one world: spec, plan, and checksums."""
    env_seed, spec = FIXTURE_SPECS[name]
    environment, study = build_world(name)
    report = analyze_ambiguity(
        study.scenario.survey.database, study.scenario.plan
    )
    twins = report.twins
    return {
        "kind": "environment_golden",
        "name": name,
        "env_seed": env_seed,
        "study_seed": STUDY_SEED,
        "spec": spec.to_dict(),
        "environment_checksum": environment_checksum(environment),
        "floorplan": floorplan_to_dict(environment.plan),
        "graph": graph_to_dict(environment.graph),
        "radio_map_checksum": _canonical_checksum(
            fingerprint_db_to_dict(study.scenario.survey.database)
        ),
        "twin_census": {
            "twin_threshold_db_hex": report.twin_threshold_db.hex(),
            "n_twins": len(twins),
            "n_distant_twins": len(report.distant_twins(6.0)),
            "twin_free": not twins,
        },
        "fix_checksum": serve_world(environment, study),
    }


def fixture_path(name: str) -> Path:
    return FIXTURES_DIR / f"{name}.json"


def load_fixture(name: str) -> Dict[str, object]:
    return json.loads(fixture_path(name).read_text())
