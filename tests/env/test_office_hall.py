"""Tests for the paper's office-hall environment (Fig. 5)."""

from __future__ import annotations

import pytest

from repro.env.geometry import bearing_difference
from repro.env.office_hall import GRID_COLS, GRID_ROWS, office_hall


class TestDimensions:
    def test_paper_dimensions(self, hall):
        assert hall.plan.width == pytest.approx(40.8)
        assert hall.plan.height == pytest.approx(16.0)

    def test_28_reference_locations(self, hall):
        assert len(hall.plan) == GRID_ROWS * GRID_COLS == 28
        assert hall.plan.location_ids == list(range(1, 29))

    def test_six_ap_sites(self, hall):
        assert len(hall.plan.ap_positions) == 6

    def test_aps_inside_plan(self, hall):
        for ap in hall.plan.ap_positions:
            assert hall.plan.contains(ap)


class TestGridNumbering:
    def test_row_major_ids(self, hall):
        """IDs 1..7 on the top row, 22..28 on the bottom (Fig. 5)."""
        top_left = hall.plan.position_of(1)
        top_right = hall.plan.position_of(7)
        bottom_left = hall.plan.position_of(22)
        assert top_left.y == pytest.approx(top_right.y)
        assert top_left.x < top_right.x
        assert bottom_left.y < top_left.y
        assert bottom_left.x == pytest.approx(top_left.x)

    def test_rows_evenly_spaced(self, hall):
        ys = sorted({hall.plan.position_of(i).y for i in range(1, 29)}, reverse=True)
        assert len(ys) == GRID_ROWS
        gaps = [a - b for a, b in zip(ys, ys[1:])]
        assert all(g == pytest.approx(gaps[0]) for g in gaps)

    def test_columns_evenly_spaced(self, hall):
        xs = sorted({hall.plan.position_of(i).x for i in range(1, 29)})
        assert len(xs) == GRID_COLS
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert all(g == pytest.approx(gaps[0]) for g in gaps)


class TestAisleGraph:
    def test_connected(self, hall):
        assert hall.graph.is_connected()

    def test_blocked_hops_are_not_adjacent(self, hall):
        """Partition boards sever 10-17 and 12-19 (consistency principle)."""
        assert not hall.graph.are_adjacent(10, 17)
        assert not hall.graph.are_adjacent(12, 19)

    def test_blocked_hops_have_no_line_of_sight(self, hall):
        for i, j in ((10, 17), (12, 19)):
            assert not hall.plan.has_line_of_sight(
                hall.plan.position_of(i), hall.plan.position_of(j)
            )

    def test_open_grid_hops_are_adjacent(self, hall):
        assert hall.graph.are_adjacent(1, 2)
        assert hall.graph.are_adjacent(1, 8)
        assert hall.graph.are_adjacent(9, 16)
        assert hall.graph.are_adjacent(27, 28)

    def test_edge_count(self, hall):
        """Full 4x7 grid has 45 edges; two vertical hops are blocked."""
        horizontal = GRID_ROWS * (GRID_COLS - 1)
        vertical = GRID_COLS * (GRID_ROWS - 1)
        assert len(hall.graph.edge_list) == horizontal + vertical - 2 == 43

    def test_no_diagonal_edges(self, hall):
        for i, j in hall.graph.edge_list:
            row_i, col_i = divmod(i - 1, GRID_COLS)
            row_j, col_j = divmod(j - 1, GRID_COLS)
            assert abs(row_i - row_j) + abs(col_i - col_j) == 1

    def test_hop_bearings_are_cardinal(self, hall):
        """Grid hops run along the axes: bearings are multiples of 90."""
        for i, j in hall.graph.edge_list:
            bearing = hall.graph.hop_bearing(i, j)
            assert min(
                bearing_difference(bearing, c) for c in (0.0, 90.0, 180.0, 270.0)
            ) == pytest.approx(0.0, abs=1e-6)

    def test_detour_around_partition(self, hall):
        """The blocked 10-17 hop forces a two-extra-hop detour."""
        path = hall.graph.shortest_path(10, 17)
        assert len(path) >= 4
        assert path[0] == 10 and path[-1] == 17


class TestDeterminism:
    def test_two_builds_are_identical(self):
        a, b = office_hall(), office_hall()
        assert a.plan.location_ids == b.plan.location_ids
        assert a.graph.edge_list == b.graph.edge_list
        for lid in a.plan.location_ids:
            assert a.plan.position_of(lid) == b.plan.position_of(lid)
