"""Property-based tests for the procedural environment generator.

For all ``(seed, spec)``: walls never intersect reference locations,
every reference location is graph-reachable, AP mounts lie in bounds,
regeneration from the same seed is bitwise identical, and the spec
round-trips through JSON to an equal plan.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, settings, strategies as st

from repro.env.procedural import (
    PLACEMENT_POLICIES,
    EnvironmentSpec,
    environment_checksum,
    generate_environment,
)
from repro.io.serialize import floorplan_to_dict

seeds = st.integers(min_value=0, max_value=2**31 - 1)
placements = st.sampled_from(sorted(PLACEMENT_POLICIES))


@st.composite
def environment_specs(draw):
    """Any valid spec, kept small enough for fast generation."""
    topology = draw(st.sampled_from(
        ["tower", "mall", "warehouse", "stadium", "corridor"]
    ))
    if topology == "tower":
        floors = draw(st.integers(min_value=1, max_value=4))
        rows = draw(st.integers(min_value=2, max_value=5))
        cols = draw(st.integers(min_value=2, max_value=6))
    elif topology == "mall":
        floors, rows = 1, 4
        cols = draw(st.integers(min_value=2, max_value=8))
    elif topology == "warehouse":
        floors = 1
        rows = draw(st.integers(min_value=3, max_value=7))
        cols = draw(st.integers(min_value=2, max_value=6))
    elif topology == "stadium":
        floors = 1
        rows = draw(st.integers(min_value=2, max_value=4))
        cols = draw(st.integers(min_value=8, max_value=16))
    else:  # corridor
        floors = 1
        rows = draw(st.integers(min_value=1, max_value=6))
        cols = draw(st.integers(min_value=2, max_value=8))
    # Generous per-cell spacing keeps every topology's extent valid.
    width = cols * draw(st.floats(min_value=3.0, max_value=8.0))
    height = rows * draw(st.floats(min_value=3.0, max_value=8.0))
    if topology == "stadium":
        extent = max(width, height, rows * 10.0)
        width = height = extent
    return EnvironmentSpec(
        topology=topology,
        floors=floors,
        rows=rows,
        cols=cols,
        floor_width_m=width,
        floor_height_m=height,
        n_aps=draw(st.integers(min_value=1, max_value=12)),
        placement=draw(placements),
        ap_clusters=draw(st.integers(min_value=1, max_value=4)),
    )


def _point_segment_distance(point, segment) -> float:
    ax, ay = segment.start.x, segment.start.y
    bx, by = segment.end.x, segment.end.y
    dx, dy = bx - ax, by - ay
    norm_sq = dx * dx + dy * dy
    if norm_sq == 0.0:
        return point.distance_to(segment.start)
    t = max(0.0, min(1.0, ((point.x - ax) * dx + (point.y - ay) * dy) / norm_sq))
    return math.hypot(point.x - (ax + t * dx), point.y - (ay + t * dy))


@settings(max_examples=40, deadline=None)
@given(spec=environment_specs(), seed=seeds)
def test_walls_never_intersect_reference_locations(spec, seed):
    env = generate_environment(spec, seed=seed)
    for location in env.plan.locations:
        for wall in env.plan.walls:
            assert _point_segment_distance(location.position, wall) > 0.05, (
                f"wall {wall} touches location {location.location_id}"
            )


@settings(max_examples=40, deadline=None)
@given(spec=environment_specs(), seed=seeds)
def test_every_reference_location_is_reachable(spec, seed):
    env = generate_environment(spec, seed=seed)
    assert env.graph.is_connected()
    # Connectivity covers every node only if every node has an edge.
    for location_id in env.plan.location_ids:
        assert env.graph.neighbors(location_id), (
            f"location {location_id} is isolated"
        )


@settings(max_examples=40, deadline=None)
@given(spec=environment_specs(), seed=seeds)
def test_ap_mounts_lie_in_bounds(spec, seed):
    env = generate_environment(spec, seed=seed)
    assert len(env.plan.selected_aps()) == spec.n_aps
    for position in env.plan.selected_aps():
        assert env.plan.contains(position), f"AP at {position} out of bounds"


@settings(max_examples=25, deadline=None)
@given(spec=environment_specs(), seed=seeds)
def test_same_seed_regeneration_is_bitwise_identical(spec, seed):
    first = generate_environment(spec, seed=seed)
    second = generate_environment(spec, seed=seed)
    assert environment_checksum(first) == environment_checksum(second)
    assert floorplan_to_dict(first.plan) == floorplan_to_dict(second.plan)
    assert first.graph.edge_list == second.graph.edge_list


@settings(max_examples=25, deadline=None)
@given(spec=environment_specs(), seed=seeds)
def test_spec_json_round_trips_to_an_equal_plan(spec, seed):
    payload = json.loads(json.dumps(spec.to_dict()))
    restored = EnvironmentSpec.from_dict(payload)
    assert restored == spec
    original = generate_environment(spec, seed=seed)
    rebuilt = generate_environment(restored, seed=seed)
    assert floorplan_to_dict(original.plan) == floorplan_to_dict(rebuilt.plan)
    assert environment_checksum(original) == environment_checksum(rebuilt)
