"""Direct tests for the procedural generator: topologies, placement, spec."""

from __future__ import annotations

import pytest

from repro.env.geometry import Point
from repro.env.procedural import (
    PLACEMENT_POLICIES,
    TOPOLOGIES,
    EnvironmentSpec,
    environment_checksum,
    generate_environment,
    register_placement_policy,
)


class TestEnvironmentSpec:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            EnvironmentSpec(topology="dungeon")

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="unknown placement"):
            EnvironmentSpec(placement="random")

    def test_rejects_non_integer_grid(self):
        with pytest.raises(ValueError, match="rows must be an integer"):
            EnvironmentSpec(rows=3.5)

    def test_rejects_multi_floor_mall(self):
        with pytest.raises(ValueError, match="only towers stack floors"):
            EnvironmentSpec(topology="mall", floors=2)

    def test_rejects_non_four_row_mall(self):
        with pytest.raises(ValueError, match="rows must be 4"):
            EnvironmentSpec(topology="mall", rows=3)

    def test_rejects_tiny_stadium_ring(self):
        with pytest.raises(ValueError, match="at least 8 locations"):
            EnvironmentSpec(topology="stadium", rows=2, cols=5,
                            floor_width_m=30.0, floor_height_m=30.0)

    def test_rejects_excessive_ap_count(self):
        with pytest.raises(ValueError, match="n_aps must be in"):
            EnvironmentSpec(n_aps=501)

    def test_rejects_undersized_floor(self):
        with pytest.raises(ValueError, match="too small"):
            EnvironmentSpec(topology="warehouse", rows=20, cols=20,
                            floor_width_m=5.0, floor_height_m=5.0)

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="environment_spec"):
            EnvironmentSpec.from_dict({"kind": "floorplan"})

    def test_from_dict_rejects_unknown_version(self):
        payload = EnvironmentSpec().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            EnvironmentSpec.from_dict(payload)

    def test_display_name_defaults_and_override(self):
        assert "tower" in EnvironmentSpec(topology="tower").display_name
        named = EnvironmentSpec(name="HQ building")
        assert named.display_name == "HQ building"
        assert generate_environment(named, seed=1).plan.name == "HQ building"


class TestTopologies:
    def test_tower_inter_floor_edges_exist(self):
        spec = EnvironmentSpec(topology="tower", floors=3, rows=2, cols=3)
        env = generate_environment(spec, seed=1)
        per_floor = spec.rows * spec.cols
        cross_floor = [
            (a, b) for a, b in env.graph.edge_list
            if (a - 1) // per_floor != (b - 1) // per_floor
        ]
        # Two vertical links (stairs + elevator) per floor boundary.
        assert len(cross_floor) == 2 * (spec.floors - 1)

    def test_tower_slab_walls_separate_floors(self):
        spec = EnvironmentSpec(topology="tower", floors=2, rows=2, cols=3)
        env = generate_environment(spec, seed=1)
        # Column 1 is neither the stair (col 0) nor the elevator (last
        # col), so the slab between floors has no opening above it.
        low = env.plan.location(2).position            # floor 0
        high = env.plan.location(spec.rows * spec.cols + 2).position  # floor 1
        assert env.plan.wall_count_between(low, high) >= 1

    def test_mall_corridors_join_only_at_cross_aisles(self):
        spec = EnvironmentSpec(topology="mall", rows=4, cols=7,
                               floor_width_m=44.0, floor_height_m=18.0)
        env = generate_environment(spec, seed=1)
        corridor_links = [
            (a, b) for a, b in env.graph.edge_list
            if (a - 1) // spec.cols == 1 and (b - 1) // spec.cols == 2
        ]
        cross_cols = {0, spec.cols - 1} | {c for c in range(spec.cols) if c % 3 == 0}
        assert len(corridor_links) == len(cross_cols)

    def test_warehouse_horizontal_hops_only_at_end_aisles(self):
        spec = EnvironmentSpec(topology="warehouse", rows=5, cols=4,
                               floor_width_m=24.0, floor_height_m=25.0)
        env = generate_environment(spec, seed=1)
        for a, b in env.graph.edge_list:
            row_a, row_b = (a - 1) // spec.cols, (b - 1) // spec.cols
            if row_a == row_b:  # horizontal hop
                assert row_a in (0, spec.rows - 1)

    def test_stadium_rings_are_closed_loops(self):
        spec = EnvironmentSpec(topology="stadium", rows=2, cols=10,
                               floor_width_m=36.0, floor_height_m=36.0)
        env = generate_environment(spec, seed=1)
        first_ring = list(range(1, spec.cols + 1))
        for index, location_id in enumerate(first_ring):
            neighbor = first_ring[(index + 1) % spec.cols]
            assert env.graph.are_adjacent(location_id, neighbor)

    def test_corridor_is_a_single_serpentine_path(self):
        spec = EnvironmentSpec(topology="corridor", rows=4, cols=5,
                               floor_width_m=25.0, floor_height_m=16.0)
        env = generate_environment(spec, seed=1)
        # A serpentine path over N nodes has exactly N - 1 edges.
        assert len(env.graph.edge_list) == spec.n_locations - 1
        assert env.graph.is_connected()

    def test_all_topologies_emit_standard_types(self):
        for topology in TOPOLOGIES:
            spec = _small_spec(topology)
            env = generate_environment(spec, seed=5)
            assert len(env.plan) == spec.n_locations
            assert env.hall.plan is env.plan
            assert env.graph.is_connected()


class TestPlacement:
    def test_sparse_adversarial_sits_on_the_symmetry_axis(self):
        spec = EnvironmentSpec(topology="warehouse", rows=4, cols=3,
                               floor_width_m=20.0, floor_height_m=16.0,
                               n_aps=5, placement="sparse-adversarial")
        env = generate_environment(spec, seed=2)
        for position in env.plan.selected_aps():
            assert position.y == pytest.approx(8.0)

    def test_clustered_differs_across_seeds(self):
        spec = EnvironmentSpec(topology="warehouse", rows=4, cols=3,
                               floor_width_m=20.0, floor_height_m=16.0,
                               n_aps=6, placement="clustered")
        a = generate_environment(spec, seed=1)
        b = generate_environment(spec, seed=2)
        assert environment_checksum(a) != environment_checksum(b)

    def test_grid_and_perimeter_are_seed_independent(self):
        for placement in ("grid", "perimeter", "sparse-adversarial"):
            spec = EnvironmentSpec(topology="corridor", rows=3, cols=4,
                                   floor_width_m=20.0, floor_height_m=12.0,
                                   n_aps=4, placement=placement)
            a = generate_environment(spec, seed=1)
            b = generate_environment(spec, seed=99)
            assert [p.as_tuple() for p in a.plan.selected_aps()] == [
                p.as_tuple() for p in b.plan.selected_aps()
            ]

    def test_register_placement_policy(self):
        def center_stack(spec, width, height, bands, rng):
            return [Point(width / 2.0, height / 2.0)] * spec.n_aps

        register_placement_policy("center-stack", center_stack)
        try:
            spec = EnvironmentSpec(topology="corridor", rows=2, cols=3,
                                   floor_width_m=15.0, floor_height_m=8.0,
                                   n_aps=3, placement="center-stack")
            env = generate_environment(spec, seed=0)
            assert all(
                p.as_tuple() == (7.5, 4.0) for p in env.plan.selected_aps()
            )
            with pytest.raises(ValueError, match="already registered"):
                register_placement_policy("center-stack", center_stack)
        finally:
            del PLACEMENT_POLICIES["center-stack"]

    def test_wrong_mount_count_is_rejected(self):
        def short_changer(spec, width, height, bands, rng):
            return [Point(1.0, 1.0)]

        register_placement_policy("short-changer", short_changer)
        try:
            spec = EnvironmentSpec(topology="corridor", rows=2, cols=3,
                                   floor_width_m=15.0, floor_height_m=8.0,
                                   n_aps=3, placement="short-changer")
            with pytest.raises(ValueError, match="returned 1 mounts"):
                generate_environment(spec, seed=0)
        finally:
            del PLACEMENT_POLICIES["short-changer"]

    def test_out_of_bounds_mount_is_rejected(self):
        def escapee(spec, width, height, bands, rng):
            return [Point(width + 5.0, 1.0)] * spec.n_aps

        register_placement_policy("escapee", escapee)
        try:
            spec = EnvironmentSpec(topology="corridor", rows=2, cols=3,
                                   floor_width_m=15.0, floor_height_m=8.0,
                                   n_aps=2, placement="escapee")
            with pytest.raises(ValueError, match="outside the"):
                generate_environment(spec, seed=0)
        finally:
            del PLACEMENT_POLICIES["escapee"]


class TestChecksum:
    def test_checksum_distinguishes_seeds_only_when_rng_used(self):
        spec = _small_spec("tower")
        same = environment_checksum(generate_environment(spec, seed=4))
        again = environment_checksum(generate_environment(spec, seed=4))
        assert same == again

    def test_checksum_distinguishes_specs(self):
        a = generate_environment(_small_spec("tower"), seed=4)
        b = generate_environment(_small_spec("warehouse"), seed=4)
        assert environment_checksum(a) != environment_checksum(b)


def _small_spec(topology: str) -> EnvironmentSpec:
    if topology == "tower":
        return EnvironmentSpec(topology="tower", floors=2, rows=2, cols=3)
    if topology == "mall":
        return EnvironmentSpec(topology="mall", rows=4, cols=4,
                               floor_width_m=28.0, floor_height_m=16.0)
    if topology == "warehouse":
        return EnvironmentSpec(topology="warehouse", rows=4, cols=3,
                               floor_width_m=20.0, floor_height_m=18.0)
    if topology == "stadium":
        return EnvironmentSpec(topology="stadium", rows=2, cols=10,
                               floor_width_m=36.0, floor_height_m=36.0)
    return EnvironmentSpec(topology="corridor", rows=3, cols=4,
                           floor_width_m=20.0, floor_height_m=12.0)
