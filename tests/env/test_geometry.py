"""Unit and property tests for the geometry primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.env.geometry import (
    Point,
    Segment,
    bearing_between,
    bearing_difference,
    circular_mean,
    circular_std,
    normalize_bearing,
    polyline_length,
    reverse_bearing,
    segments_intersect,
)

finite_coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
bearings = st.floats(
    min_value=-720.0, max_value=720.0, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -1.0)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_iter_and_tuple(self):
        assert tuple(Point(1.5, 2.5)) == (1.5, 2.5)
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    @given(finite_coords, finite_coords, finite_coords, finite_coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite_coords, finite_coords, finite_coords, finite_coords)
    def test_distance_non_negative(self, x1, y1, x2, y2):
        assert Point(x1, y1).distance_to(Point(x2, y2)) >= 0.0


class TestBearings:
    @pytest.mark.parametrize(
        "target, expected",
        [
            (Point(0, 1), 0.0),  # north
            (Point(1, 0), 90.0),  # east
            (Point(0, -1), 180.0),  # south
            (Point(-1, 0), 270.0),  # west
            (Point(1, 1), 45.0),
        ],
    )
    def test_compass_convention(self, target, expected):
        assert bearing_between(Point(0, 0), target) == pytest.approx(expected)

    def test_coincident_points_raise(self):
        with pytest.raises(ValueError):
            bearing_between(Point(1, 1), Point(1, 1))

    @given(bearings)
    def test_normalize_range(self, angle):
        normalized = normalize_bearing(angle)
        assert 0.0 <= normalized < 360.0

    @given(bearings)
    def test_reverse_twice_is_identity(self, angle):
        assert reverse_bearing(reverse_bearing(angle)) == pytest.approx(
            normalize_bearing(angle), abs=1e-9
        )

    @given(bearings, bearings)
    def test_difference_symmetric_and_bounded(self, a, b):
        d = bearing_difference(a, b)
        assert 0.0 <= d <= 180.0
        assert d == pytest.approx(bearing_difference(b, a))

    def test_difference_wraps_around(self):
        assert bearing_difference(350.0, 10.0) == pytest.approx(20.0)

    @given(bearings)
    def test_reverse_is_180_away(self, angle):
        assert bearing_difference(angle, reverse_bearing(angle)) == pytest.approx(
            180.0
        )


class TestCircularStatistics:
    def test_mean_of_single_bearing(self):
        assert circular_mean([42.0]) == pytest.approx(42.0)

    def test_mean_handles_wraparound(self):
        assert circular_mean([350.0, 10.0]) == pytest.approx(0.0, abs=1e-9)

    def test_mean_of_cluster(self):
        assert circular_mean([88.0, 90.0, 92.0]) == pytest.approx(90.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            circular_mean([])

    def test_opposed_bearings_raise(self):
        with pytest.raises(ValueError):
            circular_mean([0.0, 180.0])

    def test_std_of_identical_bearings_is_zero(self):
        assert circular_std([77.0, 77.0, 77.0]) == pytest.approx(0.0, abs=1e-6)

    def test_std_matches_linear_for_tight_cluster(self):
        values = [10.0, 12.0, 8.0, 11.0, 9.0]
        linear_std = math.sqrt(
            sum((v - 10.0) ** 2 for v in values) / len(values)
        )
        assert circular_std(values) == pytest.approx(linear_std, rel=0.05)

    def test_std_wraparound_cluster_is_small(self):
        assert circular_std([358.0, 0.0, 2.0]) < 5.0

    def test_empty_std_raises(self):
        with pytest.raises(ValueError):
            circular_std([])

    @given(st.lists(st.floats(min_value=0.0, max_value=359.0), min_size=1, max_size=20))
    def test_mean_in_range(self, values):
        try:
            mean = circular_mean(values)
        except ValueError:
            return  # opposed bearings — legitimately undefined
        assert 0.0 <= mean < 360.0

    @given(
        st.floats(min_value=0.0, max_value=359.0),
        st.lists(
            st.floats(min_value=-5.0, max_value=5.0), min_size=1, max_size=20
        ),
    )
    def test_mean_of_tight_cluster_near_center(self, center, deltas):
        values = [normalize_bearing(center + d) for d in deltas]
        mean = circular_mean(values)
        assert bearing_difference(mean, center) <= 5.0 + 1e-6


class TestSegments:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == pytest.approx(5.0)

    def test_crossing_segments_intersect(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert segments_intersect(a, b)
        assert a.intersects(b)

    def test_parallel_segments_do_not_intersect(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert not segments_intersect(a, b)

    def test_touching_endpoints_intersect(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(1, 1), Point(2, 0))
        assert segments_intersect(a, b)

    def test_collinear_overlapping(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(1, 0), Point(3, 0))
        assert segments_intersect(a, b)

    def test_collinear_disjoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 0), Point(3, 0))
        assert not segments_intersect(a, b)

    def test_t_junction(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(1, -1), Point(1, 0))
        assert segments_intersect(a, b)

    @given(
        finite_coords, finite_coords, finite_coords, finite_coords,
        finite_coords, finite_coords, finite_coords, finite_coords,
    )
    def test_intersection_symmetric(self, ax, ay, bx, by, cx, cy, dx, dy):
        s1 = Segment(Point(ax, ay), Point(bx, by))
        s2 = Segment(Point(cx, cy), Point(dx, dy))
        assert segments_intersect(s1, s2) == segments_intersect(s2, s1)


class TestPolyline:
    def test_empty_polyline(self):
        assert polyline_length([]) == 0.0

    def test_single_point(self):
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_l_shaped(self):
        points = [Point(0, 0), Point(3, 0), Point(3, 4)]
        assert polyline_length(points) == pytest.approx(7.0)
