"""Tests for the site survey."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.sampler import RadioEnvironment
from repro.radio.survey import run_site_survey


@pytest.fixture()
def environment(hall) -> RadioEnvironment:
    return RadioEnvironment.for_plan(hall.plan, seed=7)


class TestProtocol:
    def test_database_covers_all_locations(self, environment, rng):
        result = run_site_survey(environment, rng, samples_per_location=12,
                                 training_samples=8)
        assert result.database.location_ids == environment.plan.location_ids

    def test_split_sizes(self, environment, rng):
        result = run_site_survey(
            environment, rng, samples_per_location=12, training_samples=8
        )
        for location_id in environment.plan.location_ids:
            assert len(result.holdout_at(location_id)) == 4

    def test_invalid_split_rejected(self, environment, rng):
        with pytest.raises(ValueError):
            run_site_survey(
                environment, rng, samples_per_location=10, training_samples=11
            )
        with pytest.raises(ValueError):
            run_site_survey(
                environment, rng, samples_per_location=10, training_samples=0
            )

    def test_holdout_unknown_location_raises(self, environment, rng):
        result = run_site_survey(environment, rng, samples_per_location=6,
                                 training_samples=4)
        with pytest.raises(KeyError):
            result.holdout_at(999)

    def test_fingerprint_length_matches_ap_count(self, environment, rng):
        result = run_site_survey(environment, rng, samples_per_location=6,
                                 training_samples=4)
        assert result.database.n_aps == environment.n_aps


class TestQuality:
    def test_database_is_deterministic_given_rng(self, environment):
        a = run_site_survey(environment, np.random.default_rng(5),
                            samples_per_location=8, training_samples=6)
        b = run_site_survey(environment, np.random.default_rng(5),
                            samples_per_location=8, training_samples=6)
        for lid in environment.plan.location_ids:
            assert a.database.fingerprint_of(lid) == b.database.fingerprint_of(lid)

    def test_mean_fingerprint_near_static_truth(self, environment, rng):
        """With many samples the survey mean approaches the static RSS."""
        result = run_site_survey(
            environment, rng, samples_per_location=60, training_samples=50
        )
        location = environment.plan.locations[0]
        surveyed = result.database.fingerprint_of(location.location_id).as_array()
        truth = environment.static_rss(location.position)
        # Drift (std 3 dB) and noise survive averaging only partially.
        assert np.max(np.abs(surveyed - truth)) < 6.0

    def test_nearest_self_match_in_quiet_channel(self, hall, rng):
        """With no randomness, a location's own scan matches itself."""
        from repro.radio.sampler import RadioParameters

        quiet = RadioEnvironment.for_plan(
            hall.plan,
            parameters=RadioParameters(
                shadowing_std_db=0.0, drift_std_db=0.0, noise_std_db=0.0
            ),
        )
        result = run_site_survey(quiet, rng, samples_per_location=4,
                                 training_samples=2)
        for location in hall.plan.locations:
            query = result.holdout_at(location.location_id)[0]
            assert result.database.nearest(query) == location.location_id
