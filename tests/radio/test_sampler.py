"""Tests for the RSS sampler / radio environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point
from repro.radio.access_point import AccessPoint, deploy_aps
from repro.radio.propagation import SENSITIVITY_FLOOR_DBM
from repro.radio.sampler import RadioEnvironment, RadioParameters


@pytest.fixture()
def plan() -> FloorPlan:
    return FloorPlan(
        width=40,
        height=20,
        reference_locations=[ReferenceLocation(1, Point(20, 10))],
        ap_positions=[Point(5, 10), Point(35, 10), Point(20, 18)],
    )


@pytest.fixture()
def quiet_parameters() -> RadioParameters:
    return RadioParameters(
        shadowing_std_db=0.0, drift_std_db=0.0, noise_std_db=0.0
    )


class TestConstruction:
    def test_needs_at_least_one_ap(self, plan):
        with pytest.raises(ValueError):
            RadioEnvironment(plan, [])

    def test_ap_ids_must_be_sequential(self, plan):
        aps = [AccessPoint(ap_id=1, position=Point(5, 10))]
        with pytest.raises(ValueError, match="AP ids"):
            RadioEnvironment(plan, aps)

    def test_ap_outside_plan_rejected(self, plan):
        aps = [AccessPoint(ap_id=0, position=Point(100, 100))]
        with pytest.raises(ValueError, match="outside"):
            RadioEnvironment(plan, aps)

    def test_for_plan_uses_prefix(self, plan):
        env = RadioEnvironment.for_plan(plan, n_aps=2)
        assert env.n_aps == 2
        assert env.aps[0].position == Point(5, 10)

    def test_for_plan_all_aps_by_default(self, plan):
        assert RadioEnvironment.for_plan(plan).n_aps == 3


class TestStaticRss:
    def test_noiseless_static_equals_mean(self, plan, quiet_parameters):
        env = RadioEnvironment.for_plan(plan, parameters=quiet_parameters)
        static = env.static_rss(Point(20, 10))
        for ap in env.aps:
            expected = env.path_loss.mean_rss_dbm(ap, Point(20, 10), plan)
            assert static[ap.ap_id] == pytest.approx(expected)

    def test_static_is_time_invariant(self, plan):
        env = RadioEnvironment.for_plan(plan, seed=3)
        a = env.static_rss(Point(12, 7))
        b = env.static_rss(Point(12, 7))
        np.testing.assert_array_equal(a, b)

    def test_closer_ap_is_stronger(self, plan, quiet_parameters):
        env = RadioEnvironment.for_plan(plan, parameters=quiet_parameters)
        static = env.static_rss(Point(7, 10))  # near AP 0
        assert static[0] > static[1]


class TestScan:
    def test_scan_outside_plan_rejected(self, plan, rng):
        env = RadioEnvironment.for_plan(plan)
        with pytest.raises(ValueError, match="outside"):
            env.scan(Point(-1, 5), 0.0, rng)

    def test_scan_vector_length(self, plan, rng):
        env = RadioEnvironment.for_plan(plan, n_aps=2)
        assert env.scan(Point(20, 10), 0.0, rng).shape == (2,)

    def test_noiseless_scan_equals_static(self, plan, quiet_parameters, rng):
        env = RadioEnvironment.for_plan(plan, parameters=quiet_parameters)
        np.testing.assert_allclose(
            env.scan(Point(20, 10), 50.0, rng), env.static_rss(Point(20, 10))
        )

    def test_scans_respect_sensitivity_floor(self, plan, rng):
        env = RadioEnvironment.for_plan(
            plan, parameters=RadioParameters(noise_std_db=50.0)
        )
        for _ in range(50):
            scan = env.scan(Point(20, 10), 0.0, rng)
            assert (scan >= SENSITIVITY_FLOOR_DBM).all()

    def test_scan_noise_varies(self, plan, rng):
        env = RadioEnvironment.for_plan(plan)
        a = env.scan(Point(20, 10), 0.0, rng)
        b = env.scan(Point(20, 10), 0.0, rng)
        assert not np.array_equal(a, b)

    def test_same_seed_environments_agree(self, plan):
        a = RadioEnvironment.for_plan(plan, seed=9)
        b = RadioEnvironment.for_plan(plan, seed=9)
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        np.testing.assert_array_equal(
            a.scan(Point(10, 10), 5.0, rng_a), b.scan(Point(10, 10), 5.0, rng_b)
        )

    def test_scan_noise_magnitude(self, plan):
        parameters = RadioParameters(
            shadowing_std_db=0.0, drift_std_db=0.0, noise_std_db=3.0
        )
        env = RadioEnvironment.for_plan(plan, parameters=parameters)
        rng = np.random.default_rng(0)
        static = env.static_rss(Point(20, 10))
        deviations = [
            env.scan(Point(20, 10), 0.0, rng)[0] - static[0] for _ in range(1000)
        ]
        assert 2.5 < float(np.std(deviations)) < 3.5


class TestDeployAps:
    def test_ids_in_order(self):
        aps = deploy_aps([Point(0, 0), Point(1, 1)])
        assert [ap.ap_id for ap in aps] == [0, 1]

    def test_tx_power_applied(self):
        aps = deploy_aps([Point(0, 0)], tx_power_dbm=-25.0)
        assert aps[0].tx_power_dbm == -25.0

    def test_negative_ap_id_rejected(self):
        with pytest.raises(ValueError):
            AccessPoint(ap_id=-1, position=Point(0, 0))
