"""Tests for AP placement planning."""

from __future__ import annotations

import pytest

from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point
from repro.radio.planning import greedy_ap_placement, predicted_min_separation


@pytest.fixture()
def line_plan() -> FloorPlan:
    """Three locations on a line; candidate AP sites on and off the line."""
    return FloorPlan(
        width=30.0,
        height=20.0,
        reference_locations=[
            ReferenceLocation(1, Point(5.0, 10.0)),
            ReferenceLocation(2, Point(15.0, 10.0)),
            ReferenceLocation(3, Point(25.0, 10.0)),
        ],
    )


class TestMinSeparation:
    def test_symmetric_ap_creates_twins(self, line_plan):
        """An AP equidistant from 1 and 3 yields zero separation for them."""
        separation = predicted_min_separation(line_plan, [Point(15.0, 18.0)])
        assert separation == pytest.approx(0.0, abs=1e-9)

    def test_offset_ap_separates(self, line_plan):
        separation = predicted_min_separation(line_plan, [Point(3.0, 10.0)])
        assert separation > 1.0

    def test_more_aps_never_reduce_separation(self, line_plan):
        one = predicted_min_separation(line_plan, [Point(3.0, 10.0)])
        two = predicted_min_separation(
            line_plan, [Point(3.0, 10.0), Point(27.0, 10.0)]
        )
        assert two >= one - 1e-9

    def test_validation(self, line_plan):
        with pytest.raises(ValueError):
            predicted_min_separation(line_plan, [])


class TestGreedyPlacement:
    @pytest.fixture()
    def candidates(self):
        return [
            Point(15.0, 18.0),  # symmetric trap: zero separation alone
            Point(3.0, 10.0),
            Point(27.0, 10.0),
            Point(15.0, 2.0),  # also symmetric
        ]

    def test_avoids_symmetric_trap_first(self, line_plan, candidates):
        chosen, separation = greedy_ap_placement(line_plan, candidates, 1)
        assert chosen[0] in (Point(3.0, 10.0), Point(27.0, 10.0))
        assert separation > 1.0

    def test_separation_monotone_in_ap_count(self, line_plan, candidates):
        separations = [
            greedy_ap_placement(line_plan, candidates, k)[1] for k in (1, 2, 3)
        ]
        assert separations[0] <= separations[1] <= separations[2] + 1e-9

    def test_validation(self, line_plan, candidates):
        with pytest.raises(ValueError):
            greedy_ap_placement(line_plan, candidates, 0)
        with pytest.raises(ValueError):
            greedy_ap_placement(line_plan, candidates, 9)
        with pytest.raises(ValueError):
            greedy_ap_placement(line_plan, [Point(99.0, 99.0)], 1)


class TestOnPaperHall:
    def test_planned_beats_paper_default_at_4_aps(self, hall):
        """The hall's (deliberately ambiguous) first four AP sites are
        beaten by a planned selection from a site grid."""
        default = predicted_min_separation(hall.plan, hall.plan.selected_aps(4))
        candidates = [
            Point(x, y)
            for x in (4.0, 13.0, 20.4, 28.0, 37.0)
            for y in (2.0, 8.0, 14.0)
        ]
        _, planned = greedy_ap_placement(hall.plan, candidates, 4)
        assert planned > default
