"""Fingerprint-twin existence: the phenomenon the paper is about.

These tests verify that the simulated office hall actually *produces*
fingerprint ambiguity at sparse AP counts — distant location pairs whose
fingerprints are closer than typical same-location scan noise — and that
ambiguity decreases as APs are added (the premise of Fig. 7's AP sweep).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest


def _closest_cross_pairs(database, plan, n_pairs=5):
    """The location pairs with the most similar fingerprints."""
    ids = database.location_ids
    scored = sorted(
        (
            database.fingerprint_of(i).dissimilarity(database.fingerprint_of(j)),
            plan.distance_between(i, j),
            i,
            j,
        )
        for i, j in itertools.combinations(ids, 2)
    )
    return scored[:n_pairs]


class TestTwinExistence:
    def test_distant_twins_exist_at_4_aps(self, scenario):
        """Some pair >= 2 grid hops apart has a tiny fingerprint gap."""
        db = scenario.survey.database.truncated(4)
        pairs = _closest_cross_pairs(db, scenario.plan, n_pairs=8)
        distant_similar = [
            (d, dist) for d, dist, _, _ in pairs if dist > 7.0 and d < 8.0
        ]
        assert distant_similar, f"no distant twins among {pairs}"

    def test_twin_gap_below_scan_noise(self, scenario, rng):
        """The closest pair's gap is smaller than same-spot scan spread."""
        db = scenario.survey.database.truncated(4)
        gap = _closest_cross_pairs(db, scenario.plan, n_pairs=1)[0][0]

        location = scenario.plan.locations[0]
        scans = [
            scenario.environment.scan(location.position, t, rng)[:4]
            for t in np.linspace(0, 100, 30)
        ]
        spreads = [
            float(np.linalg.norm(a - b))
            for a, b in itertools.combinations(scans, 2)
        ]
        assert gap < np.median(spreads)

    def test_more_aps_reduce_ambiguity(self, scenario):
        """Median cross-location gap grows with AP count."""
        full = scenario.survey.database
        medians = []
        for n_aps in (4, 5, 6):
            db = full.truncated(n_aps) if n_aps < full.n_aps else full
            gaps = [
                db.fingerprint_of(i).dissimilarity(db.fingerprint_of(j))
                for i, j in itertools.combinations(db.location_ids, 2)
            ]
            medians.append(float(np.median(gaps)))
        assert medians[0] < medians[1] < medians[2]

    def test_wifi_confusions_happen_at_twins(self, scenario, rng):
        """Nearest-fingerprint matching actually mislocalizes across twins."""
        db = scenario.survey.database.truncated(4)
        plan = scenario.plan
        confusions = 0
        large_confusions = 0
        for location in plan.locations:
            for t in (5000.0, 5200.0):
                scan = scenario.environment.scan(location.position, t, rng)
                from repro.core.fingerprint import Fingerprint

                estimate = db.nearest(Fingerprint.from_values(scan[:4]))
                if estimate != location.location_id:
                    confusions += 1
                    if plan.distance_between(estimate, location.location_id) > 6.0:
                        large_confusions += 1
        assert confusions > 5
        assert large_confusions >= 1
