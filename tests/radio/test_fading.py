"""Tests for shadowing fields and temporal fading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import Point
from repro.radio.fading import ShadowingField, TemporalFading


class TestShadowingField:
    def test_negative_std_rejected(self, rng):
        with pytest.raises(ValueError):
            ShadowingField(std_db=-1.0, correlation_length=3.0, rng=rng)

    def test_non_positive_correlation_rejected(self, rng):
        with pytest.raises(ValueError):
            ShadowingField(std_db=2.0, correlation_length=0.0, rng=rng)

    def test_zero_std_field_is_flat(self, rng):
        field = ShadowingField(std_db=0.0, correlation_length=3.0, rng=rng)
        assert field.value_at(Point(1, 2)) == 0.0
        assert field.value_at(Point(30, 10)) == 0.0

    def test_deterministic_at_a_point(self, rng):
        field = ShadowingField(std_db=4.0, correlation_length=3.0, rng=rng)
        p = Point(12.3, 4.5)
        assert field.value_at(p) == field.value_at(p)

    def test_same_seed_same_field(self):
        a = ShadowingField(4.0, 3.0, np.random.default_rng(1))
        b = ShadowingField(4.0, 3.0, np.random.default_rng(1))
        for p in (Point(0, 0), Point(10, 5), Point(40, 15)):
            assert a.value_at(p) == b.value_at(p)

    def test_different_seeds_differ(self):
        a = ShadowingField(4.0, 3.0, np.random.default_rng(1))
        b = ShadowingField(4.0, 3.0, np.random.default_rng(2))
        assert a.value_at(Point(10, 5)) != b.value_at(Point(10, 5))

    def test_spatial_std_roughly_matches(self):
        """Field std across many points should approximate std_db."""
        field = ShadowingField(4.0, 3.0, np.random.default_rng(3), n_components=256)
        grid = np.random.default_rng(4)
        values = [
            field.value_at(Point(float(x), float(y)))
            for x, y in grid.uniform(0, 200, size=(800, 2))
        ]
        assert 2.0 < float(np.std(values)) < 6.5

    def test_nearby_points_correlated(self):
        field = ShadowingField(4.0, 5.0, np.random.default_rng(5))
        a = field.value_at(Point(10.0, 10.0))
        b = field.value_at(Point(10.2, 10.0))
        assert abs(a - b) < 1.5


class TestTemporalFading:
    def test_negative_magnitudes_rejected(self, rng):
        with pytest.raises(ValueError):
            TemporalFading(drift_std_db=-1.0, noise_std_db=1.0, rng=rng)
        with pytest.raises(ValueError):
            TemporalFading(drift_std_db=1.0, noise_std_db=-1.0, rng=rng)

    def test_invalid_period_range_rejected(self, rng):
        with pytest.raises(ValueError):
            TemporalFading(1.0, 1.0, rng, period_range=(100.0, 50.0))
        with pytest.raises(ValueError):
            TemporalFading(1.0, 1.0, rng, period_range=(0.0, 50.0))

    def test_zero_drift_is_flat(self, rng):
        fading = TemporalFading(drift_std_db=0.0, noise_std_db=1.0, rng=rng)
        assert fading.drift_at(0.0) == 0.0
        assert fading.drift_at(500.0) == 0.0

    def test_drift_deterministic_in_time(self, rng):
        fading = TemporalFading(2.0, 1.0, rng)
        assert fading.drift_at(123.0) == fading.drift_at(123.0)

    def test_drift_bounded(self, rng):
        fading = TemporalFading(drift_std_db=2.0, noise_std_db=0.0, rng=rng)
        values = [fading.drift_at(t) for t in np.linspace(0, 3600, 500)]
        # Sum of 4 cosines with total amplitude 2*sqrt(2/4) each.
        bound = 2.0 * np.sqrt(2.0 / 4.0) * 4
        assert max(abs(v) for v in values) <= bound + 1e-9

    def test_drift_varies_over_time(self, rng):
        fading = TemporalFading(2.0, 0.0, rng)
        values = {round(fading.drift_at(t), 6) for t in (0.0, 100.0, 200.0, 300.0)}
        assert len(values) > 1

    def test_zero_noise(self, rng):
        fading = TemporalFading(1.0, 0.0, rng)
        assert fading.scan_noise(rng) == 0.0

    def test_noise_statistics(self, rng):
        fading = TemporalFading(0.0, 2.0, rng)
        draws = [fading.scan_noise(rng) for _ in range(2000)]
        assert abs(float(np.mean(draws))) < 0.2
        assert 1.7 < float(np.std(draws)) < 2.3
