"""Tests for the deterministic propagation model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point, Segment
from repro.radio.access_point import AccessPoint
from repro.radio.propagation import SENSITIVITY_FLOOR_DBM, PathLossModel


@pytest.fixture()
def open_plan() -> FloorPlan:
    return FloorPlan(width=50, height=50, reference_locations=[])


@pytest.fixture()
def walled_plan() -> FloorPlan:
    return FloorPlan(
        width=50,
        height=50,
        reference_locations=[],
        walls=[Segment(Point(10, 0), Point(10, 50))],
    )


class TestValidation:
    def test_non_positive_exponent_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel(exponent=0.0)

    def test_negative_wall_loss_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel(wall_loss_db=-1.0)

    def test_non_positive_reference_distance_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel(reference_distance=0.0)


class TestPathLoss:
    def test_zero_loss_at_reference_distance(self):
        model = PathLossModel(exponent=2.5)
        assert model.path_loss_db(1.0) == 0.0

    def test_loss_clamped_in_near_field(self):
        model = PathLossModel()
        assert model.path_loss_db(0.01) == 0.0

    def test_ten_n_db_per_decade(self):
        model = PathLossModel(exponent=3.0)
        assert model.path_loss_db(10.0) == pytest.approx(30.0)
        assert model.path_loss_db(100.0) == pytest.approx(60.0)

    @given(st.floats(min_value=1.0, max_value=1e4), st.floats(min_value=1.0, max_value=1e4))
    def test_loss_monotone_in_distance(self, d1, d2):
        model = PathLossModel()
        if d1 <= d2:
            assert model.path_loss_db(d1) <= model.path_loss_db(d2) + 1e-9
        else:
            assert model.path_loss_db(d1) >= model.path_loss_db(d2) - 1e-9


class TestMeanRss:
    def test_free_space_rss(self, open_plan):
        model = PathLossModel(exponent=2.0)
        ap = AccessPoint(ap_id=0, position=Point(0, 0), tx_power_dbm=-30.0)
        rss = model.mean_rss_dbm(ap, Point(10, 0), open_plan)
        assert rss == pytest.approx(-30.0 - 20.0)

    def test_wall_attenuation_applied(self, walled_plan):
        model = PathLossModel(exponent=2.0, wall_loss_db=5.0)
        ap = AccessPoint(ap_id=0, position=Point(5, 25))
        through_wall = model.mean_rss_dbm(ap, Point(15, 25), walled_plan)
        # Same distance on the AP's side of the wall.
        clear = model.mean_rss_dbm(ap, Point(5, 35), walled_plan)
        assert clear - through_wall == pytest.approx(5.0)

    def test_rss_clipped_at_sensitivity_floor(self, open_plan):
        model = PathLossModel(exponent=6.0)
        ap = AccessPoint(ap_id=0, position=Point(0, 0), tx_power_dbm=-30.0)
        rss = model.mean_rss_dbm(ap, Point(49, 49), open_plan)
        assert rss == SENSITIVITY_FLOOR_DBM

    def test_clip(self):
        model = PathLossModel()
        assert model.clip(-120.0) == SENSITIVITY_FLOOR_DBM
        assert model.clip(-40.0) == -40.0

    def test_rss_decreases_with_distance(self, open_plan):
        model = PathLossModel()
        ap = AccessPoint(ap_id=0, position=Point(0, 0))
        values = [
            model.mean_rss_dbm(ap, Point(d, 0), open_plan) for d in (2, 5, 10, 20, 40)
        ]
        assert values == sorted(values, reverse=True)
