"""Epoch flips through the ingress front doors.

Both ingress paths expose the cluster's two-phase epoch flip — the
synchronous :meth:`IngressDriver.advance_epoch` (between drains on the
deterministic timeline) and the TCP server's ``advance_epoch`` op
(serialized through the per-shard executors, mid-serving).  Under test:
the flip lands on every shard with the locally-compacted checksum, the
flipped deployment keeps serving, and the served streams stay bitwise
identical across shard counts and across the two front doors.
"""

from __future__ import annotations

import asyncio

import pytest
from cluster_helpers import checksums, make_shards
from repro.cluster import encode_message, decode_message, fresh_session_entry
from repro.db.epochs import (
    ApRepowered,
    DriftDelta,
    apply_updates,
    database_checksum,
    update_to_dict,
)
from repro.ingress import IngressConfig, IngressDriver, replay_schedule
from repro.ingress.server import IngressServer
from repro.io.serialize import fix_from_dict
from repro.serving import build_session_services, fix_stream_checksum
from repro.sim.evaluation import open_loop_schedule


@pytest.fixture(scope="module")
def updates(world):
    fingerprint_db, _, _, _ = world
    return [
        ApRepowered(ap_id=0, shift_db=-6.0),
        DriftDelta(offsets_db=(1.0,) * fingerprint_db.n_aps),
    ]


@pytest.fixture(scope="module")
def flipped_checksum(world, updates):
    fingerprint_db, _, _, _ = world
    return database_checksum(apply_updates(fingerprint_db, updates))


def make_schedule(world):
    _, _, _, workload = world
    return open_loop_schedule(workload, mean_rate_hz=8.0, seed=11)


def make_driver(world, tmp_path, n_shards):
    fingerprint_db, motion_db, cfg, workload = world
    driver = IngressDriver(
        make_shards(world, tmp_path, n_shards, epochal=True),
        config=IngressConfig(),
    )
    services = build_session_services(
        workload, fingerprint_db, motion_db, cfg, resilient=True
    )
    for session_id in sorted(services):
        driver.add_session(
            fresh_session_entry(session_id, services[session_id])
        )
    return driver


def drive_with_midway_flip(world, tmp_path, n_shards, updates, schedule):
    """Drain half the schedule, flip, drain the rest."""
    driver = make_driver(world, tmp_path, n_shards)
    arrivals = sorted(schedule.arrivals, key=lambda a: a.t_s)
    half = len(arrivals) // 2
    first = driver.run(arrivals[:half])
    flip = driver.advance_epoch(updates)
    second = driver.run(arrivals[half:])
    fixes = {
        sid: first.fixes.get(sid, []) + second.fixes.get(sid, [])
        for sid in set(first.fixes) | set(second.fixes)
    }
    return flip, fixes


class TestDriverFlip:
    def test_flip_lands_with_the_compacted_checksum(
        self, world, updates, flipped_checksum, tmp_path
    ):
        driver = make_driver(world, tmp_path, 2)
        result = driver.advance_epoch(updates)
        assert result == {"epoch": 1, "checksum": flipped_checksum}
        # A second flip proves every shard really adopted epoch 1
        # (a lagging shard would refuse to prepare epoch 2).
        assert driver.advance_epoch([])["epoch"] == 2

    def test_midway_flip_is_bitwise_identical_across_shard_counts(
        self, world, updates, tmp_path
    ):
        schedule = make_schedule(world)
        flip_1, fixes_1 = drive_with_midway_flip(
            world, tmp_path / "one", 1, updates, schedule
        )
        flip_2, fixes_2 = drive_with_midway_flip(
            world, tmp_path / "two", 2, updates, schedule
        )
        assert flip_1 == flip_2
        assert checksums(fixes_1) == checksums(fixes_2)
        assert any(fixes_1.values()), "nothing was served"


class TestServerFlip:
    def _flip_then_serve(self, world, tmp_path, n_shards, updates, schedule):
        fingerprint_db, motion_db, cfg, workload = world
        serialized = [update_to_dict(update) for update in updates]
        services = build_session_services(
            workload, fingerprint_db, motion_db, cfg, resilient=True
        )

        async def main():
            server = IngressServer(
                make_shards(world, tmp_path, n_shards, epochal=True),
                config=IngressConfig(batch_window_s=0.01, max_batch=8),
            )
            await server.start()
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)

                async def roundtrip(payload):
                    writer.write((encode_message(payload) + "\n").encode())
                    await writer.drain()
                    return decode_message((await reader.readline()).decode())

                for session_id in sorted(services):
                    reply = await roundtrip(
                        {
                            "op": "add_session",
                            "entry": fresh_session_entry(
                                session_id, services[session_id]
                            ),
                        }
                    )
                    assert reply["ok"], reply
                flip = await roundtrip(
                    {"op": "advance_epoch", "updates": serialized}
                )
                writer.close()
                replies = await replay_schedule(
                    host, port, schedule.arrivals, time_scale=0.0
                )
                return flip, replies
            finally:
                await server.stop()

        return asyncio.run(main())

    def test_flip_over_tcp_then_serving_stays_bitwise(
        self, world, updates, flipped_checksum, tmp_path
    ):
        """The wire op flips the deployment, and post-flip serving is
        identical across shard counts — through real sockets."""
        schedule = make_schedule(world)
        results = {}
        for n_shards in (1, 2):
            flip, replies = self._flip_then_serve(
                world, tmp_path / str(n_shards), n_shards, updates, schedule
            )
            assert flip["ok"], flip
            assert flip["epoch"] == 1
            assert flip["checksum"] == flipped_checksum
            assert len(replies) == schedule.n_arrivals
            streams = {}
            for arrival, reply in zip(
                sorted(schedule.arrivals, key=lambda a: a.t_s), replies
            ):
                assert reply["ok"], reply
                if reply["status"] in ("rejected", "dropped"):
                    continue
                fix = reply["fix"]
                streams.setdefault(
                    arrival.interval.session_id, []
                ).append(None if fix is None else fix_from_dict(fix))
            results[n_shards] = {
                session_id: fix_stream_checksum(stream)
                for session_id, stream in streams.items()
            }
        assert results[1] == results[2]
