"""Ingress suite fixtures: the cluster suite's small world, reused.

The async ingress path is gated against the same bitwise yardsticks the
cluster suite established — the lockstep coordinator and the single
engine — so the fixtures are shared wholesale.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "cluster"))

from cluster_helpers import single_engine_fixes, small_world  # noqa: E402


@pytest.fixture(scope="session")
def world(small_study):
    """``(fingerprint_db, motion_db, config, workload)`` for ingress tests."""
    return small_world(small_study)


@pytest.fixture(scope="session")
def baseline_fixes(world):
    """Single-engine fix streams over the same world (the bitwise yardstick)."""
    return single_engine_fixes(world)
