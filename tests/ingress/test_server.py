"""The asyncio TCP front door: protocol, backpressure, equality over wire.

Every test drives a real ``asyncio.start_server`` socket on loopback —
the events cross TCP as versioned JSON lines, fixes come back the same
way, and the reassembled per-session streams are held to the lockstep
coordinator's checksums, so the wire itself is inside the bitwise gate.
"""

from __future__ import annotations

import asyncio

import pytest
from cluster_helpers import checksums, make_shards
from repro.cluster import (
    ClusterCoordinator,
    encode_message,
    decode_message,
    fresh_session_entry,
)
from repro.ingress import (
    IngressConfig,
    IngressServer,
    lockstep_fix_streams,
    replay_schedule,
)
from repro.io.serialize import fix_from_dict
from repro.serving import build_session_services, fix_stream_checksum
from repro.sim.evaluation import open_loop_schedule


def make_schedule(world, **overrides):
    _, _, _, workload = world
    kwargs = dict(mean_rate_hz=8.0, seed=11)
    kwargs.update(overrides)
    return open_loop_schedule(workload, **kwargs)


def session_services(world):
    fingerprint_db, motion_db, config, workload = world
    return build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )


def run_server(world, tmp_path, n_shards, config, client):
    """Start a server over fresh shards, run ``client(server)``, stop."""

    async def main():
        server = IngressServer(
            make_shards(world, tmp_path, n_shards), config=config
        )
        await server.start()
        for session_id, service in sorted(session_services(world).items()):
            entry = fresh_session_entry(session_id, service)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                (
                    encode_message({"op": "add_session", "entry": entry})
                    + "\n"
                ).encode()
            )
            await writer.drain()
            reply = decode_message((await reader.readline()).decode())
            assert reply["ok"], reply
            writer.close()
        try:
            return await client(server)
        finally:
            await server.stop()

    return asyncio.run(main())


def stream_checksums(arrivals, replies):
    """Rebuild per-session fix streams from wire replies, in served order.

    Refused events (rejected/dropped) never produce a stream entry;
    answered ones slot in per-session arrival order, exactly as the
    driver's :class:`~repro.ingress.IngressResult` records them.
    """
    streams = {}
    for arrival, reply in zip(
        sorted(arrivals, key=lambda a: a.t_s), replies
    ):
        assert reply["ok"], reply
        if reply["status"] in ("rejected", "dropped"):
            continue
        fix = reply["fix"]
        streams.setdefault(arrival.interval.session_id, []).append(
            None if fix is None else fix_from_dict(fix)
        )
    return {
        session_id: fix_stream_checksum(stream)
        for session_id, stream in streams.items()
    }


class TestServedOverTcp:
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_wire_streams_match_lockstep(self, world, tmp_path, n_shards):
        schedule = make_schedule(world)
        config = IngressConfig(batch_window_s=0.01, max_batch=8)

        async def client(server):
            host, port = server.address
            return await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )

        replies = run_server(
            world, tmp_path / "serve", n_shards, config, client
        )
        assert len(replies) == schedule.n_arrivals
        assert all(r["status"] != "rejected" for r in replies)

        fingerprint_db, motion_db, cfg, workload = world
        coordinator = ClusterCoordinator(
            make_shards(world, tmp_path / "lockstep", n_shards)
        )
        for session_id, service in sorted(session_services(world).items()):
            coordinator.add_session(fresh_session_entry(session_id, service))
        want = checksums(
            lockstep_fix_streams(coordinator, schedule.arrivals)
        )
        assert stream_checksums(schedule.arrivals, replies) == want

    def test_latency_histogram_fills(self, world, tmp_path):
        schedule = make_schedule(world)
        config = IngressConfig(batch_window_s=0.01, max_batch=8)

        async def client(server):
            host, port = server.address
            await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )
            return server.latency_quantiles((0.5, 0.99))

        quantiles = run_server(world, tmp_path, 2, config, client)
        assert quantiles["p50"] is not None
        assert 0.0 <= quantiles["p50"] <= quantiles["p99"]


class TestBackpressureOverTcp:
    def test_full_queue_rejects_immediately(self, world, tmp_path):
        schedule = make_schedule(world)
        # One shard, a 2-deep queue, and a window long enough that the
        # flood outruns serving: refusals must come back anyway.
        config = IngressConfig(
            batch_window_s=0.25, max_batch=None, admission_capacity=2
        )

        async def client(server):
            host, port = server.address
            return await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )

        replies = run_server(world, tmp_path, 1, config, client)
        statuses = [r["status"] for r in replies]
        assert "rejected" in statuses
        assert all(r["fix"] is None for r in replies if r["status"] == "rejected")

    def test_drop_oldest_answers_displaced_clients(self, world, tmp_path):
        schedule = make_schedule(world)
        config = IngressConfig(
            batch_window_s=0.25,
            max_batch=None,
            admission_capacity=2,
            admission_policy="drop-oldest",
        )

        async def client(server):
            host, port = server.address
            return await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )

        replies = run_server(world, tmp_path, 1, config, client)
        statuses = [r["status"] for r in replies]
        assert "dropped" in statuses
        assert "rejected" not in statuses
        # Every arrival was answered — no client left hanging.
        assert len(replies) == schedule.n_arrivals


class TestProtocol:
    def test_ping_metrics_and_unknown_op(self, world, tmp_path):
        config = IngressConfig(batch_window_s=0.01)

        async def client(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)

            async def roundtrip(payload):
                writer.write((encode_message(payload) + "\n").encode())
                await writer.drain()
                return decode_message((await reader.readline()).decode())

            ping = await roundtrip({"op": "ping", "id": 7})
            metrics = await roundtrip({"op": "metrics"})
            bogus = await roundtrip({"op": "frobnicate"})
            writer.close()
            return ping, metrics, bogus

        ping, metrics, bogus = run_server(world, tmp_path, 2, config, client)
        assert ping["ok"] and ping["id"] == 7
        assert sorted(ping["shards"]) == ["shard-0", "shard-1"]
        assert metrics["ok"]
        assert "ingress" in metrics["metrics"]
        assert set(metrics["metrics"]["shards"]) == {"shard-0", "shard-1"}
        assert not bogus["ok"]
        assert "frobnicate" in bogus["error"]

    def test_shutdown_op_stops_the_server(self, world, tmp_path):
        config = IngressConfig(batch_window_s=0.01)

        async def client(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((encode_message({"op": "shutdown"}) + "\n").encode())
            await writer.drain()
            reply = decode_message((await reader.readline()).decode())
            writer.close()
            await asyncio.wait_for(server.wait_stopped(), timeout=5.0)
            return reply

        reply = run_server(world, tmp_path, 1, config, client)
        assert reply["ok"] and reply["bye"]
