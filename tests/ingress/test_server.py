"""The asyncio TCP front door: protocol, backpressure, equality over wire.

Every test drives a real ``asyncio.start_server`` socket on loopback —
the events cross TCP as versioned JSON lines, fixes come back the same
way, and the reassembled per-session streams are held to the lockstep
coordinator's checksums, so the wire itself is inside the bitwise gate.
"""

from __future__ import annotations

import asyncio

import pytest
from cluster_helpers import checksums, make_shards
from repro.cluster import (
    ClusterCoordinator,
    encode_message,
    decode_message,
    fresh_session_entry,
)
from repro.ingress import (
    IngressConfig,
    IngressServer,
    lockstep_fix_streams,
    replay_schedule,
)
from repro.ingress.loops import event_of
from repro.io.serialize import fix_from_dict
from repro.serving import build_session_services, fix_stream_checksum
from repro.serving.checkpoint import event_to_dict
from repro.sim.evaluation import open_loop_schedule


def make_schedule(world, **overrides):
    _, _, _, workload = world
    kwargs = dict(mean_rate_hz=8.0, seed=11)
    kwargs.update(overrides)
    return open_loop_schedule(workload, **kwargs)


def session_services(world):
    fingerprint_db, motion_db, config, workload = world
    return build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )


def run_server(world, tmp_path, n_shards, config, client):
    """Start a server over fresh shards, run ``client(server)``, stop."""

    async def main():
        server = IngressServer(
            make_shards(world, tmp_path, n_shards), config=config
        )
        await server.start()
        for session_id, service in sorted(session_services(world).items()):
            entry = fresh_session_entry(session_id, service)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                (
                    encode_message({"op": "add_session", "entry": entry})
                    + "\n"
                ).encode()
            )
            await writer.drain()
            reply = decode_message((await reader.readline()).decode())
            assert reply["ok"], reply
            writer.close()
        try:
            return await client(server)
        finally:
            await server.stop()

    return asyncio.run(main())


def stream_checksums(arrivals, replies):
    """Rebuild per-session fix streams from wire replies, in served order.

    Refused events (rejected/dropped) never produce a stream entry;
    answered ones slot in per-session arrival order, exactly as the
    driver's :class:`~repro.ingress.IngressResult` records them.
    """
    streams = {}
    for arrival, reply in zip(
        sorted(arrivals, key=lambda a: a.t_s), replies
    ):
        assert reply["ok"], reply
        if reply["status"] in ("rejected", "dropped"):
            continue
        fix = reply["fix"]
        streams.setdefault(arrival.interval.session_id, []).append(
            None if fix is None else fix_from_dict(fix)
        )
    return {
        session_id: fix_stream_checksum(stream)
        for session_id, stream in streams.items()
    }


class TestServedOverTcp:
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_wire_streams_match_lockstep(self, world, tmp_path, n_shards):
        schedule = make_schedule(world)
        config = IngressConfig(batch_window_s=0.01, max_batch=8)

        async def client(server):
            host, port = server.address
            return await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )

        replies = run_server(
            world, tmp_path / "serve", n_shards, config, client
        )
        assert len(replies) == schedule.n_arrivals
        assert all(r["status"] != "rejected" for r in replies)

        fingerprint_db, motion_db, cfg, workload = world
        coordinator = ClusterCoordinator(
            make_shards(world, tmp_path / "lockstep", n_shards)
        )
        for session_id, service in sorted(session_services(world).items()):
            coordinator.add_session(fresh_session_entry(session_id, service))
        want = checksums(
            lockstep_fix_streams(coordinator, schedule.arrivals)
        )
        assert stream_checksums(schedule.arrivals, replies) == want

    def test_latency_histogram_fills(self, world, tmp_path):
        schedule = make_schedule(world)
        config = IngressConfig(batch_window_s=0.01, max_batch=8)

        async def client(server):
            host, port = server.address
            await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )
            return server.latency_quantiles((0.5, 0.99))

        quantiles = run_server(world, tmp_path, 2, config, client)
        assert quantiles["p50"] is not None
        assert 0.0 <= quantiles["p50"] <= quantiles["p99"]


class TestBackpressureOverTcp:
    def test_full_queue_rejects_immediately(self, world, tmp_path):
        schedule = make_schedule(world)
        # One shard, a 2-deep queue, and a window long enough that the
        # flood outruns serving: refusals must come back anyway.
        config = IngressConfig(
            batch_window_s=0.25, max_batch=None, admission_capacity=2
        )

        async def client(server):
            host, port = server.address
            return await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )

        replies = run_server(world, tmp_path, 1, config, client)
        statuses = [r["status"] for r in replies]
        assert "rejected" in statuses
        assert all(r["fix"] is None for r in replies if r["status"] == "rejected")

    def test_drop_oldest_answers_displaced_clients(self, world, tmp_path):
        schedule = make_schedule(world)
        config = IngressConfig(
            batch_window_s=0.25,
            max_batch=None,
            admission_capacity=2,
            admission_policy="drop-oldest",
        )

        async def client(server):
            host, port = server.address
            return await replay_schedule(
                host, port, schedule.arrivals, time_scale=0.0
            )

        replies = run_server(world, tmp_path, 1, config, client)
        statuses = [r["status"] for r in replies]
        assert "dropped" in statuses
        assert "rejected" not in statuses
        # Every arrival was answered — no client left hanging.
        assert len(replies) == schedule.n_arrivals


class TestProtocol:
    def test_ping_metrics_and_unknown_op(self, world, tmp_path):
        config = IngressConfig(batch_window_s=0.01)

        async def client(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)

            async def roundtrip(payload):
                writer.write((encode_message(payload) + "\n").encode())
                await writer.drain()
                return decode_message((await reader.readline()).decode())

            ping = await roundtrip({"op": "ping", "id": 7})
            metrics = await roundtrip({"op": "metrics"})
            bogus = await roundtrip({"op": "frobnicate"})
            writer.close()
            return ping, metrics, bogus

        ping, metrics, bogus = run_server(world, tmp_path, 2, config, client)
        assert ping["ok"] and ping["id"] == 7
        assert sorted(ping["shards"]) == ["shard-0", "shard-1"]
        assert metrics["ok"]
        assert "ingress" in metrics["metrics"]
        assert set(metrics["metrics"]["shards"]) == {"shard-0", "shard-1"}
        assert not bogus["ok"]
        assert "frobnicate" in bogus["error"]

    def test_metrics_op_interleaves_with_serving(self, world, tmp_path):
        """Pipelined metrics requests ride the per-shard executors.

        A metrics snapshot taken while ticks are in flight must never
        interleave with a shard's tick conversation on the transport:
        every serve reply keeps its disposition, every metrics reply
        carries a snapshot, and all ids match up.
        """
        schedule = make_schedule(world)
        config = IngressConfig(batch_window_s=0.01, max_batch=4)

        async def client(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            requests = []
            for slot, arrival in enumerate(
                sorted(schedule.arrivals, key=lambda a: a.t_s)
            ):
                requests.append(
                    {
                        "op": "serve",
                        "id": f"serve-{slot}",
                        "event": event_to_dict(event_of(arrival)),
                    }
                )
                if slot % 3 == 0:
                    requests.append(
                        {"op": "metrics", "id": f"metrics-{slot}"}
                    )
            for request in requests:
                writer.write((encode_message(request) + "\n").encode())
            await writer.drain()
            replies = {}
            for _ in requests:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=30.0
                )
                reply = decode_message(line.decode())
                replies[reply["id"]] = reply
            writer.close()
            return replies

        replies = run_server(world, tmp_path, 2, config, client)
        serves = {
            key: reply
            for key, reply in replies.items()
            if key.startswith("serve-")
        }
        metrics = {
            key: reply
            for key, reply in replies.items()
            if key.startswith("metrics-")
        }
        assert serves and metrics
        assert len(serves) + len(metrics) == len(replies)
        for reply in serves.values():
            assert reply["ok"], reply
            assert "status" in reply
        for reply in metrics.values():
            assert reply["ok"], reply
            assert set(reply["metrics"]["shards"]) == {"shard-0", "shard-1"}

    def test_add_session_op_counts_recoveries(self, world, tmp_path):
        """A respawn under the add_session wire op lands in the metrics.

        The supervised request path respawns a crashed worker either
        way; the wire op must count it exactly as the synchronous
        ``admit_session`` path does.
        """
        config = IngressConfig(batch_window_s=0.01)
        shards = make_shards(world, tmp_path, 1)
        session_id = sorted(session_services(world))[0]
        service = session_services(world)[session_id]

        async def main():
            server = IngressServer(shards, config=config)
            host, port = await server.start()
            try:
                shards[0].kill()
                reader, writer = await asyncio.open_connection(host, port)
                entry = fresh_session_entry(session_id, service)
                writer.write(
                    (
                        encode_message({"op": "add_session", "entry": entry})
                        + "\n"
                    ).encode()
                )
                await writer.drain()
                reply = decode_message((await reader.readline()).decode())
                writer.close()
                snapshot = await server.metrics_snapshot_async()
                return reply, snapshot
            finally:
                await server.stop()

        reply, snapshot = asyncio.run(main())
        assert reply["ok"], reply
        assert snapshot["ingress"]["counters"]["ingress.recoveries"] == 1

    def test_shutdown_op_stops_the_server(self, world, tmp_path):
        config = IngressConfig(batch_window_s=0.01)

        async def client(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((encode_message({"op": "shutdown"}) + "\n").encode())
            await writer.drain()
            reply = decode_message((await reader.readline()).decode())
            writer.close()
            await asyncio.wait_for(server.wait_stopped(), timeout=5.0)
            return reply

        reply = run_server(world, tmp_path, 1, config, client)
        assert reply["ok"] and reply["bye"]


class TestStopFlush:
    def test_stop_answers_in_flight_requests_before_eof(
        self, world, tmp_path
    ):
        """The documented guarantee: answer all in flight, then close.

        A request still waiting out its batch window when :meth:`stop`
        runs must read a "server stopped" reply line — not bare EOF
        from a transport closed before the reply flushed.
        """
        schedule = make_schedule(world)
        # A window far longer than the test: the event stays queued
        # until stop()'s pending sweep answers it.
        config = IngressConfig(batch_window_s=30.0, max_batch=None)

        async def client(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            arrival = sorted(schedule.arrivals, key=lambda a: a.t_s)[0]
            writer.write(
                (
                    encode_message(
                        {
                            "op": "serve",
                            "id": 1,
                            "event": event_to_dict(event_of(arrival)),
                        }
                    )
                    + "\n"
                ).encode()
            )
            await writer.drain()
            # Let the event reach the admission queue before stopping.
            await asyncio.sleep(0.05)
            await server.stop()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            assert line, "reply dropped: client saw bare EOF at stop()"
            reply = decode_message(line.decode())
            writer.close()
            return reply

        reply = run_server(world, tmp_path, 1, config, client)
        assert reply["ok"] is False
        assert "stopped" in reply["error"]
        assert reply["id"] == 1


class TestReplayClient:
    def test_replay_fails_fast_on_lost_replies(self, world):
        """A dead connection fails its waiting arrivals, never hangs.

        A server that answers every request but one and then closes the
        connection must leave :func:`replay_schedule` with one error
        reply in place — not a gather that waits forever.
        """
        schedule = make_schedule(world)
        n_arrivals = schedule.n_arrivals

        async def main():
            async def answer_all_but_first(reader, writer):
                lines = [await reader.readline() for _ in range(n_arrivals)]
                for line in lines[1:]:
                    request = decode_message(line.decode())
                    writer.write(
                        (
                            encode_message(
                                {
                                    "ok": True,
                                    "status": "served",
                                    "fix": None,
                                    "id": request["id"],
                                }
                            )
                            + "\n"
                        ).encode()
                    )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(
                answer_all_but_first, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            try:
                return await asyncio.wait_for(
                    replay_schedule(
                        host,
                        port,
                        schedule.arrivals,
                        time_scale=0.0,
                        connections=1,
                    ),
                    timeout=15.0,
                )
            finally:
                server.close()
                await server.wait_closed()

        replies = asyncio.run(main())
        assert len(replies) == n_arrivals
        unanswered = [reply for reply in replies if not reply["ok"]]
        assert len(unanswered) == 1
        assert "connection closed" in unanswered[0]["error"]
        assert all(
            reply["status"] == "served" for reply in replies if reply["ok"]
        )
