"""The ingress driver: bitwise equality, determinism, backpressure.

The load-bearing assertions of the event-driven ingress layer:

* per-shard loops ticking on their own schedules produce per-session
  fix streams byte-identical to the lockstep coordinator — and to one
  engine — at 1, 2, and 4 shards;
* the whole interleaving is deterministic: two runs of one schedule
  agree on every disposition, latency, and tick count;
* admission is exact: every arrival reaches exactly one terminal
  state, and the queue's counters account for all of them.
"""

from __future__ import annotations

import pytest
from cluster_helpers import checksums, make_shards
from repro.cluster import ClusterCoordinator, fresh_session_entry
from repro.ingress import IngressConfig, IngressDriver, lockstep_fix_streams
from repro.serving import build_session_services
from repro.sim.evaluation import open_loop_schedule

TERMINAL = {
    "served",
    "duplicate",
    "stale",
    "shed",
    "quarantined",
    "faulted",
    "evicted",
    "unroutable",
    "rejected",
    "dropped",
}


def make_schedule(world, **overrides):
    _, _, _, workload = world
    kwargs = dict(
        mean_rate_hz=8.0,
        seed=11,
        diurnal_amplitude=0.5,
        diurnal_period_s=3.0,
    )
    kwargs.update(overrides)
    return open_loop_schedule(workload, **kwargs)


def make_driver(world, tmp_path, n_shards, config=None, **spec_kwargs):
    """A driver over fresh shards with every workload session admitted."""
    fingerprint_db, motion_db, cfg, workload = world
    driver = IngressDriver(
        make_shards(world, tmp_path, n_shards, **spec_kwargs),
        config=config if config is not None else IngressConfig(),
    )
    services = build_session_services(
        workload, fingerprint_db, motion_db, cfg, resilient=True
    )
    for session_id in sorted(services):
        driver.add_session(fresh_session_entry(session_id, services[session_id]))
    return driver


def lockstep_checksums(world, tmp_path, schedule, n_shards=2):
    fingerprint_db, motion_db, cfg, workload = world
    coordinator = ClusterCoordinator(
        make_shards(world, tmp_path / "lockstep", n_shards)
    )
    services = build_session_services(
        workload, fingerprint_db, motion_db, cfg, resilient=True
    )
    for session_id in sorted(services):
        coordinator.add_session(
            fresh_session_entry(session_id, services[session_id])
        )
    return checksums(lockstep_fix_streams(coordinator, schedule.arrivals))


class TestBitwiseEquality:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_async_loops_match_lockstep(self, world, tmp_path, n_shards):
        """The tentpole gate: event-driven == lockstep, bit for bit."""
        schedule = make_schedule(world)
        driver = make_driver(world, tmp_path / "async", n_shards)
        result = driver.run(schedule.arrivals)
        assert checksums(result.fixes) == lockstep_checksums(
            world, tmp_path, schedule
        )

    def test_async_loops_match_single_engine(
        self, world, tmp_path, baseline_fixes
    ):
        """A clean schedule reduces all the way to the one-engine answer.

        Without storms or jitter every session's events arrive in
        sequence order, so the async cluster's streams must equal the
        single engine's — the PR 5 contract carried through the new
        front door.
        """
        schedule = make_schedule(world)
        assert schedule.n_redeliveries == 0
        driver = make_driver(world, tmp_path, 2)
        result = driver.run(schedule.arrivals)
        assert checksums(result.fixes) == checksums(baseline_fixes)

    def test_reconnect_storms_and_jitter_match_lockstep(
        self, world, tmp_path
    ):
        """Redelivered and reordered arrivals: the idempotence gate.

        Storm re-sends (duplicate sequence numbers) must be answered
        from the cache and jitter-reordered events dropped as stale —
        identically on independent shard loops and in lockstep.
        """
        schedule = make_schedule(
            world, reconnect_storms=3, storm_fraction=0.5, jitter_s=0.4
        )
        assert schedule.n_redeliveries > 0
        driver = make_driver(world, tmp_path / "async", 2)
        result = driver.run(schedule.arrivals)
        # A re-send lands as a duplicate (sequence == last served) or,
        # when later events overtook it in flight, as a stale drop —
        # either way the gate below proves it changed nothing.
        assert result.count("duplicate") + result.count("stale") > 0
        assert checksums(result.fixes) == lockstep_checksums(
            world, tmp_path, schedule
        )

    def test_sequence_gating_out_of_order_is_idempotent(
        self, world, tmp_path
    ):
        """Heavy jitter: stale drops surface, equality still holds."""
        schedule = make_schedule(world, jitter_s=1.5, seed=5)
        driver = make_driver(world, tmp_path / "async", 4)
        result = driver.run(schedule.arrivals)
        assert result.count("stale") > 0
        assert checksums(result.fixes) == lockstep_checksums(
            world, tmp_path, schedule, n_shards=4
        )


class TestDeterminism:
    def test_identical_runs_are_identical(self, world, tmp_path):
        schedule = make_schedule(world, reconnect_storms=2, jitter_s=0.2)
        results = []
        for run in ("a", "b"):
            driver = make_driver(world, tmp_path / run, 2)
            results.append(driver.run(schedule.arrivals))
        first, second = results
        assert checksums(first.fixes) == checksums(second.fixes)
        assert first.ticks_by_shard == second.ticks_by_shard
        assert [
            (d.session_id, d.status, d.arrival_s, d.done_s)
            for d in first.dispositions
        ] == [
            (d.session_id, d.status, d.arrival_s, d.done_s)
            for d in second.dispositions
        ]

    def test_schedule_itself_is_deterministic(self, world):
        one = make_schedule(world, reconnect_storms=2, jitter_s=0.3)
        two = make_schedule(world, reconnect_storms=2, jitter_s=0.3)
        assert [
            (a.t_s, a.interval.session_id, a.interval.sequence, a.redelivery)
            for a in one.arrivals
        ] == [
            (a.t_s, a.interval.session_id, a.interval.sequence, a.redelivery)
            for a in two.arrivals
        ]

    def test_shards_tick_independently(self, world, tmp_path):
        """Loops diverge: shard tick counts differ (no lockstep padding)."""
        driver = make_driver(
            world,
            tmp_path,
            4,
            config=IngressConfig(batch_window_s=0.01, max_batch=4),
        )
        result = driver.run(make_schedule(world).arrivals)
        counts = sorted(result.ticks_by_shard.values())
        assert sum(counts) > 0
        assert counts[0] != counts[-1]


class TestBackpressure:
    def test_every_arrival_reaches_one_terminal_state(self, world, tmp_path):
        schedule = make_schedule(world, reconnect_storms=2, jitter_s=0.2)
        driver = make_driver(
            world,
            tmp_path,
            2,
            config=IngressConfig(admission_capacity=4, max_batch=2),
        )
        result = driver.run(schedule.arrivals)
        assert len(result.dispositions) == schedule.n_arrivals
        assert all(d.status in TERMINAL for d in result.dispositions)
        assert all(d.done_s is not None for d in result.dispositions)
        answered = sum(len(s) for s in result.fixes.values())
        refused = result.count("rejected") + result.count("dropped")
        assert answered + refused == schedule.n_arrivals

    def test_reject_newest_refuses_at_capacity(self, world, tmp_path):
        driver = make_driver(
            world,
            tmp_path,
            1,
            config=IngressConfig(
                batch_window_s=10.0, admission_capacity=3, max_batch=None
            ),
        )
        result = driver.run(make_schedule(world).arrivals)
        assert result.count("rejected") > 0
        snapshot = driver.metrics.snapshot()["counters"]
        assert snapshot["ingress.rejected"] == result.count("rejected")

    def test_drop_oldest_answers_the_displaced(self, world, tmp_path):
        driver = make_driver(
            world,
            tmp_path,
            1,
            config=IngressConfig(
                batch_window_s=10.0,
                admission_capacity=3,
                max_batch=None,
                admission_policy="drop-oldest",
            ),
        )
        result = driver.run(make_schedule(world).arrivals)
        dropped = [d for d in result.dispositions if d.status == "dropped"]
        assert dropped
        assert all(d.done_s is not None for d in dropped)
        assert result.count("rejected") == 0

    def test_latencies_are_nonnegative_and_bounded_by_window(
        self, world, tmp_path
    ):
        config = IngressConfig(batch_window_s=0.05, max_batch=None)
        driver = make_driver(world, tmp_path, 2, config=config)
        result = driver.run(make_schedule(world).arrivals)
        latencies = result.latencies_s
        assert latencies
        assert all(lat >= 0.0 for lat in latencies)
        # On the logical timeline serving is instantaneous, so queueing
        # latency is bounded by one batch window per queued predecessor
        # (held-back same-session events wait extra whole windows).
        assert min(latencies) <= config.batch_window_s


class TestDeterministicShedding:
    def test_logical_clock_makes_shedding_reproducible(
        self, world, tmp_path
    ):
        """With logical shard clocks, deadline shed is schedule-pure."""
        schedule = make_schedule(world)
        shed_runs = []
        for run in ("a", "b"):
            driver = make_driver(
                world,
                tmp_path / run,
                2,
                clock="logical",
                clock_auto_advance_s=0.005,
                tick_budget_s=0.012,
            )
            result = driver.run(schedule.arrivals)
            shed_runs.append(
                [
                    (d.session_id, d.sequence)
                    for d in result.dispositions
                    if d.status == "shed"
                ]
            )
        assert shed_runs[0] == shed_runs[1]
        assert shed_runs[0]  # the budget actually bit
