"""Tests for the command-line interface.

CLI commands that need the paper-scale study are exercised through
``main()`` directly (same process) so the session fixtures stay warm.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_parses(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.seed == 7

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "3", "demo"])
        assert args.seed == 3

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_build_db_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build-db"])


@pytest.mark.slow
class TestCommands:
    def test_demo_prints_table(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "6-AP moloc" in out
        assert "accuracy" in out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "detected step times" in out

    def test_experiment_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "direction errors" in out
        assert "offset errors" in out

    def test_experiment_fig7(self, capsys):
        assert main(
            ["--training-traces", "60", "--test-traces", "6",
             "experiment", "fig7"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig. 7 4-AP" in out and "moloc" in out

    def test_experiment_fig8(self, capsys):
        assert main(
            ["--training-traces", "60", "--test-traces", "6",
             "experiment", "fig8"]
        ) == 0
        out = capsys.readouterr().out
        assert "twin locations" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "6-AP MoLoc" in out
        assert "EL" in out

    def test_build_db_writes_artifacts(self, capsys, tmp_path):
        assert main(["build-db", "--output", str(tmp_path), "--n-aps", "5"]) == 0
        for name in ("floorplan", "graph", "fingerprint_db", "motion_db"):
            path = tmp_path / f"{name}.json"
            assert path.exists(), f"{name}.json missing"
            payload = json.loads(path.read_text())
            assert payload["format_version"] == 1

    def test_evaluate_from_saved_databases(self, capsys, tmp_path):
        main(["build-db", "--output", str(tmp_path), "--n-aps", "5"])
        capsys.readouterr()
        assert main(
            [
                "evaluate",
                "--n-aps",
                "5",
                "--databases",
                str(tmp_path),
                "--systems",
                "moloc",
                "wifi",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "moloc" in out
        assert "wifi" in out

    def test_evaluate_without_databases(self, capsys):
        assert main(["evaluate", "--n-aps", "6", "--systems", "wifi"]) == 0
        out = capsys.readouterr().out
        assert "wifi" in out

    def test_report_writes_markdown(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(
            [
                "--training-traces",
                "60",
                "--test-traces",
                "8",
                "report",
                "--output",
                str(path),
            ]
        ) == 0
        text = path.read_text()
        assert "# MoLoc reproduction report" in text
        assert "Motion database" in text
        assert "| 6 APs |" in text

    def test_export_traces(self, capsys, tmp_path):
        from repro.io.serialize import load_json
        from repro.io.traces import traces_from_dict

        path = tmp_path / "traces.json"
        assert main(
            ["export-traces", "--output", str(path), "--count", "2"]
        ) == 0
        restored = traces_from_dict(load_json(path))
        assert len(restored) == 2
        out = capsys.readouterr().out
        assert "2 test traces" in out


class TestClusterParser:
    def test_cluster_parses_with_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.command == "cluster"
        assert args.shards == 2
        assert args.transport == "local"
        assert args.chaos_seed is None
        assert args.workdir is None

    def test_cluster_transport_choices(self):
        args = build_parser().parse_args(
            ["cluster", "--shards", "4", "--transport", "process"]
        )
        assert args.shards == 4
        assert args.transport == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--transport", "tcp"])


@pytest.mark.slow
class TestClusterCommand:
    def test_cluster_smoke_verifies_bitwise_equality(
        self, capsys, tmp_path
    ):
        path = tmp_path / "cluster.json"
        assert main(
            [
                "--training-traces", "60", "--test-traces", "6",
                "cluster", "--shards", "2", "--sessions", "6",
                "--corpus-size", "3", "--chaos-seed", "3",
                "--workdir", str(tmp_path / "shards"),
                "--output", str(path),
            ]
        ) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        assert document["report"] == "cluster"
        assert document["equal"] is True
        assert document["shards"] == 2
        counters = document["coordinator"]["counters"]
        injected = sum(
            value
            for name, value in counters.items()
            if name.startswith("chaos.injected.")
        )
        assert injected + counters["chaos.skipped"] == document[
            "scheduled_faults"
        ]
        assert counters["cluster.recoveries"] == counters[
            "chaos.injected.worker-kill"
        ]
        # Metrics are in-memory state, so a killed worker's pre-checkpoint
        # tick counts are lost on respawn: merged ticks is bounded by the
        # lockstep total, not equal to it under a kill storm.
        merged_ticks = document["merged_metrics"]["engine"]["counters"][
            "engine.ticks"
        ]
        assert 0 < merged_ticks <= document["ticks"] * document["shards"]


class TestEpochsParser:
    def test_epochs_parses_with_defaults(self):
        args = build_parser().parse_args(["epochs"])
        assert args.command == "epochs"
        assert args.smoke is False
        assert args.transport == "local"
        assert args.sessions == 8
        assert args.corpus_size == 4
        assert args.workdir is None
        assert args.output is None

    def test_epochs_transport_choices(self):
        args = build_parser().parse_args(
            ["epochs", "--smoke", "--transport", "process"]
        )
        assert args.smoke is True and args.transport == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["epochs", "--transport", "tcp"])


@pytest.mark.slow
class TestEpochsCommand:
    def test_epochs_smoke_passes_every_gate(self, capsys, tmp_path):
        path = tmp_path / "epochs.json"
        assert main(
            [
                "--training-traces", "60", "--test-traces", "6",
                "epochs", "--smoke", "--sessions", "6",
                "--corpus-size", "3",
                "--workdir", str(tmp_path / "shards"),
                "--output", str(path),
            ]
        ) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        assert document["report"] == "epochs"
        assert document["passed"] is True
        assert document["gates"] == {
            "flip_streams_equal": True,
            "flip_survives_kill_during_prepare": True,
            "epoch0_bitwise_free": True,
            "flip_checksums_agree": True,
        }
        # The kill scenario must actually have exercised a respawn.
        kill_run = document["runs"]["flip_2_shards_kill_during_prepare"]
        assert kill_run["recoveries"] == 1
        # Smoke skips the staleness sweep (the full run gates on it).
        assert "staleness" not in document


class TestMatrixCommand:
    def test_matrix_parses_with_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.command == "matrix"
        assert args.smoke is False
        assert args.output.name == "BENCH_matrix.json"
        assert args.specs_dir is None

    def test_matrix_smoke_writes_valid_gated_artifact(self, capsys, tmp_path):
        output = tmp_path / "BENCH_matrix.json"
        specs_dir = tmp_path / "specs"
        assert main(
            [
                "matrix",
                "--smoke",
                "--output",
                str(output),
                "--specs-dir",
                str(specs_dir),
            ]
        ) == 0
        capsys.readouterr()
        from repro.analysis.matrix import validate_matrix_document
        from repro.env.procedural import EnvironmentSpec

        document = json.loads(output.read_text())
        assert document["report"] == "matrix"
        assert document["n_cells"] >= 12
        assert validate_matrix_document(document) == []
        spec_files = sorted(specs_dir.glob("*.json"))
        assert len(spec_files) == document["n_environments"]
        for spec_file in spec_files:
            EnvironmentSpec.from_dict(json.loads(spec_file.read_text()))


class TestGaitParser:
    def test_gait_parses_with_defaults(self):
        args = build_parser().parse_args(["gait"])
        assert args.command == "gait"
        assert args.smoke is False
        assert args.transport == "local"
        assert args.sessions == 6
        assert args.corpus_size == 4
        assert args.workdir is None
        assert args.output is None

    def test_gait_transport_choices(self):
        args = build_parser().parse_args(
            ["gait", "--smoke", "--transport", "process"]
        )
        assert args.smoke is True and args.transport == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gait", "--transport", "tcp"])


@pytest.mark.slow
class TestGaitCommand:
    def test_gait_smoke_passes_every_gate(self, capsys, tmp_path):
        path = tmp_path / "gait.json"
        assert main(
            [
                "gait", "--smoke",
                "--workdir", str(tmp_path / "shards"),
                "--output", str(path),
            ]
        ) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        assert document["report"] == "gait"
        assert document["passed"] is True
        assert document["gates"] == {
            "disabled_batched_equals_sequential": True,
            "disabled_shard_streams_equal": True,
            "adaptive_cluster_consistent": True,
            "adaptive_changes_serving": True,
            "bench_gate": True,
            "bench_document_valid": True,
        }
        # Smoke benches only the paper baseline and the gated mix.
        assert set(document["bench"]["mixes"]) == {
            "paper-walk", "mixed-gait",
        }
        assert document["bench"]["gate"]["passed"] is True
