"""Epochal database: updates, compaction, snapshots, and hygiene.

The contract under test is what the cluster flip protocol leans on:
:func:`~repro.db.epochs.apply_updates` is a *pure, deterministic,
permutation-insensitive* function of (database, update multiset), and a
snapshot's sha256 content checksum identifies a database bit-exactly —
so independent shards can stage the same flip and prove agreement by
checksum alone.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fingerprint import (
    RSS_CEILING_DBM,
    RSS_FLOOR_DBM,
    Fingerprint,
    FingerprintDatabase,
)
from repro.db.epochs import (
    DEFAULT_SURVEY_WEIGHT,
    ApRemoved,
    ApRepowered,
    ApRestored,
    DriftDelta,
    EpochSnapshot,
    EpochalDatabase,
    Observation,
    UpdateLog,
    apply_updates,
    database_checksum,
    update_from_dict,
    update_to_dict,
)

N_APS = 4


def small_db() -> FingerprintDatabase:
    means = {
        0: Fingerprint((-40.0, -55.0, -70.0, RSS_FLOOR_DBM)),
        1: Fingerprint((-60.0, -45.0, -80.0, -65.0)),
        2: Fingerprint((-75.0, -66.0, -50.0, -58.0)),
    }
    stds = {
        0: (2.0, 3.0, 4.0, 0.0),
        1: (1.0, 1.0, 1.0, 1.0),
        2: (2.5, 2.5, 2.5, 2.5),
    }
    return FingerprintDatabase(means, stds)


class TestUpdateSerialization:
    @pytest.mark.parametrize(
        "update",
        [
            Observation(location_id=1, rss=(-60.5, -45.0, -79.25, -64.0)),
            ApRemoved(ap_id=2),
            ApRestored(ap_id=3, values=((0, -70.0), (2, -61.5))),
            ApRepowered(ap_id=0, shift_db=-9.0),
            DriftDelta(offsets_db=(1.5, -2.0, 0.0, 3.25)),
        ],
    )
    def test_round_trips_through_json(self, update):
        payload = json.loads(json.dumps(update_to_dict(update)))
        assert update_from_dict(payload) == update

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown database update"):
            update_from_dict({"kind": "teleport"})

    def test_non_update_raises(self):
        with pytest.raises(TypeError, match="not a database update"):
            update_to_dict({"kind": "observation"})

    def test_validation(self):
        with pytest.raises(ValueError, match="location_id"):
            Observation(location_id=-1, rss=(-60.0,))
        with pytest.raises(ValueError, match="finite"):
            Observation(location_id=0, rss=(float("nan"),))
        with pytest.raises(ValueError, match="ap_id"):
            ApRemoved(ap_id=-2)
        with pytest.raises(ValueError, match="twice"):
            ApRestored(ap_id=0, values=((1, -60.0), (1, -61.0)))
        with pytest.raises(ValueError, match="at least one"):
            ApRestored(ap_id=0, values=())
        with pytest.raises(ValueError, match="non-zero"):
            ApRepowered(ap_id=0, shift_db=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            DriftDelta(offsets_db=())

    def test_restored_values_are_stored_sorted(self):
        update = ApRestored(ap_id=1, values=((2, -50.0), (0, -61.0)))
        assert update.values == ((0, -61.0), (2, -50.0))


class TestApplyUpdates:
    def test_observation_folds_with_the_survey_prior(self):
        db = small_db()
        obs = Observation(location_id=1, rss=(-58.0, -47.0, -78.0, -63.0))
        out = apply_updates(db, [obs])
        for before, seen, after in zip(
            db.fingerprint_of(1).rss, obs.rss, out.fingerprint_of(1).rss
        ):
            expected = (DEFAULT_SURVEY_WEIGHT * before + 1.0 * seen) / (
                DEFAULT_SURVEY_WEIGHT + 1.0
            )
            assert after == pytest.approx(expected, abs=1e-12)
        # Other locations untouched, bit for bit.
        assert out.fingerprint_of(0).rss == db.fingerprint_of(0).rss

    def test_observation_flood_weight_is_capped(self):
        db = small_db()
        flood = [
            Observation(location_id=1, rss=(-30.0, -30.0, -30.0, -30.0))
        ] * 500
        capped = apply_updates(db, flood, observation_weight_cap=32.0)
        for before, after in zip(
            db.fingerprint_of(1).rss, capped.fingerprint_of(1).rss
        ):
            expected = (DEFAULT_SURVEY_WEIGHT * before + 32.0 * -30.0) / (
                DEFAULT_SURVEY_WEIGHT + 32.0
            )
            assert after == pytest.approx(expected, abs=1e-12)

    def test_ap_removed_floors_the_column_and_zeroes_stds(self):
        out = apply_updates(small_db(), [ApRemoved(ap_id=1)])
        for lid in out.location_ids:
            assert out.fingerprint_of(lid).rss[1] == RSS_FLOOR_DBM
            assert out.std_of(lid)[1] == 0.0

    def test_ap_restored_sets_listed_locations_only(self):
        out = apply_updates(
            small_db(), [ApRestored(ap_id=3, values=((0, -62.5),))]
        )
        assert out.fingerprint_of(0).rss[3] == -62.5
        assert out.fingerprint_of(1).rss[3] == -65.0

    def test_ap_repowered_shifts_non_floored_readings_clipped(self):
        out = apply_updates(small_db(), [ApRepowered(ap_id=0, shift_db=50.0)])
        assert out.fingerprint_of(0).rss[0] == RSS_CEILING_DBM  # clipped
        # The floored slot of AP 3 stays floored under a repower there.
        floored = apply_updates(
            small_db(), [ApRepowered(ap_id=3, shift_db=10.0)]
        )
        assert floored.fingerprint_of(0).rss[3] == RSS_FLOOR_DBM

    def test_drift_shifts_every_non_floored_slot(self):
        offsets = (1.0, -2.0, 0.5, 3.0)
        out = apply_updates(small_db(), [DriftDelta(offsets_db=offsets)])
        db = small_db()
        for lid in db.location_ids:
            for ap_id, (before, after) in enumerate(
                zip(db.fingerprint_of(lid).rss, out.fingerprint_of(lid).rss)
            ):
                if before <= RSS_FLOOR_DBM:
                    assert after == before
                else:
                    assert after == pytest.approx(
                        min(
                            RSS_CEILING_DBM,
                            max(RSS_FLOOR_DBM, before + offsets[ap_id]),
                        )
                    )

    def test_inconsistent_updates_raise(self):
        db = small_db()
        with pytest.raises(ValueError, match="unknown location"):
            apply_updates(db, [Observation(location_id=9, rss=(-60.0,) * 4)])
        with pytest.raises(ValueError, match="APs"):
            apply_updates(db, [Observation(location_id=0, rss=(-60.0,))])
        with pytest.raises(ValueError, match="out of range"):
            apply_updates(db, [ApRemoved(ap_id=7)])
        with pytest.raises(ValueError, match="unknown location"):
            apply_updates(db, [ApRestored(ap_id=0, values=((9, -60.0),))])
        with pytest.raises(ValueError, match="offsets"):
            apply_updates(db, [DriftDelta(offsets_db=(1.0,))])

    def test_is_a_pure_function(self):
        db = small_db()
        before = database_checksum(db)
        apply_updates(
            db,
            [
                Observation(location_id=0, rss=(-50.0,) * 4),
                ApRemoved(ap_id=2),
                DriftDelta(offsets_db=(1.0,) * 4),
            ],
        )
        assert database_checksum(db) == before


_updates = st.lists(
    st.one_of(
        st.builds(
            Observation,
            location_id=st.sampled_from([0, 1, 2]),
            rss=st.tuples(
                *[
                    st.floats(min_value=-95.0, max_value=-30.0)
                    for _ in range(N_APS)
                ]
            ),
        ),
        st.builds(ApRemoved, ap_id=st.sampled_from(range(N_APS))),
        st.builds(
            ApRepowered,
            ap_id=st.sampled_from(range(N_APS)),
            shift_db=st.sampled_from([-12.0, -3.5, 4.0, 9.0]),
        ),
        st.builds(
            ApRestored,
            ap_id=st.sampled_from(range(N_APS)),
            values=st.lists(
                st.tuples(
                    st.sampled_from([0, 1, 2]),
                    st.floats(min_value=-95.0, max_value=-30.0),
                ),
                min_size=1,
                max_size=3,
                unique_by=lambda pair: pair[0],
            ).map(tuple),
        ),
        st.builds(
            DriftDelta,
            offsets_db=st.tuples(
                *[
                    st.floats(min_value=-6.0, max_value=6.0)
                    for _ in range(N_APS)
                ]
            ),
        ),
    ),
    max_size=8,
)


class TestDeterminism:
    @given(updates=_updates, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60, deadline=None)
    def test_compaction_is_deterministic_and_order_insensitive(
        self, updates, seed
    ):
        """Any permutation of an update batch compacts bit-identically."""
        db = small_db()
        reference = database_checksum(apply_updates(db, updates))
        shuffled = list(updates)
        random.Random(seed).shuffle(shuffled)
        assert database_checksum(apply_updates(db, shuffled)) == reference
        # ... and so does a second run of the same permutation.
        assert database_checksum(apply_updates(db, shuffled)) == reference

    @given(updates=_updates, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_advance_epoch_agrees_across_independent_replicas(
        self, updates, seed
    ):
        """Two replicas staging permuted batches prove the same checksum."""
        left = EpochalDatabase(small_db())
        right = EpochalDatabase(small_db())
        shuffled = list(updates)
        random.Random(seed).shuffle(shuffled)
        assert (
            left.advance_epoch(updates).checksum
            == right.advance_epoch(shuffled).checksum
        )


class TestEpochSnapshot:
    def test_of_checksums_the_contents(self):
        db = small_db()
        snapshot = EpochSnapshot.of(0, db)
        assert snapshot.checksum == database_checksum(db)

    def test_round_trips_through_json(self):
        snapshot = EpochSnapshot.of(3, small_db())
        payload = json.loads(json.dumps(snapshot.to_dict()))
        back = EpochSnapshot.from_dict(payload)
        assert back.epoch_id == 3
        assert back.checksum == snapshot.checksum
        assert database_checksum(back.database) == snapshot.checksum

    def test_from_dict_verifies_the_checksum(self):
        payload = EpochSnapshot.of(1, small_db()).to_dict()
        payload["database"]["entries"][0]["rss"][0] = -33.0
        with pytest.raises(ValueError, match="checksum"):
            EpochSnapshot.from_dict(payload)

    def test_from_dict_rejects_wrong_kind_and_version(self):
        with pytest.raises(ValueError, match="db_epoch"):
            EpochSnapshot.from_dict({"kind": "engine_checkpoint"})
        payload = EpochSnapshot.of(0, small_db()).to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            EpochSnapshot.from_dict(payload)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="epoch_id"):
            EpochSnapshot.of(-1, small_db())


class TestUpdateLog:
    def test_records_in_arrival_order_and_clears(self):
        log = UpdateLog()
        first = ApRemoved(ap_id=0)
        second = Observation(location_id=1, rss=(-60.0,) * 4)
        log.record(first)
        log.record(second)
        assert log.pending == (first, second)
        assert len(log) == 2
        log.clear()
        assert log.pending == ()

    def test_rejects_non_updates(self):
        with pytest.raises(TypeError, match="not a database update"):
            UpdateLog().record("observation")

    def test_round_trips_through_json(self):
        log = UpdateLog(
            [ApRepowered(ap_id=1, shift_db=4.0), ApRemoved(ap_id=0)]
        )
        payload = json.loads(json.dumps(log.to_dict()))
        assert UpdateLog.from_dict(payload).pending == log.pending

    def test_from_dict_rejects_wrong_kind_and_version(self):
        with pytest.raises(ValueError, match="db_update_log"):
            UpdateLog.from_dict({"kind": "db_epoch"})
        payload = UpdateLog().to_dict()
        payload["format_version"] = 42
        with pytest.raises(ValueError, match="version"):
            UpdateLog.from_dict(payload)


class TestEpochalDatabase:
    def test_epoch_zero_is_the_base_database_itself(self):
        db = small_db()
        epochal = EpochalDatabase(db)
        assert epochal.epoch_id == 0
        assert epochal.database is db
        assert epochal.checksum == database_checksum(db)

    def test_advance_compacts_and_clears_the_log(self):
        epochal = EpochalDatabase(small_db())
        epochal.record(ApRemoved(ap_id=1))
        snapshot = epochal.advance_epoch()
        assert snapshot.epoch_id == 1
        assert len(epochal.log) == 0
        assert epochal.current is snapshot
        assert snapshot.database.fingerprint_of(0).rss[1] == RSS_FLOOR_DBM
        # Both epochs stay retrievable; unknown ids fail loudly.
        assert epochal.snapshot(0).epoch_id == 0
        assert epochal.snapshot(1) is snapshot
        with pytest.raises(KeyError, match="not retained"):
            epochal.snapshot(5)

    def test_explicit_batch_leaves_the_log_untouched(self):
        epochal = EpochalDatabase(small_db())
        epochal.record(ApRemoved(ap_id=0))
        epochal.advance_epoch([ApRepowered(ap_id=1, shift_db=3.0)])
        assert epochal.log.pending == (ApRemoved(ap_id=0),)

    def test_stage_is_pure(self):
        epochal = EpochalDatabase(small_db())
        staged = epochal.stage([ApRemoved(ap_id=2)])
        assert staged.epoch_id == 1
        assert epochal.epoch_id == 0
        assert len(epochal.log) == 0

    def test_adopt_is_idempotent_but_checksum_strict(self):
        epochal = EpochalDatabase(small_db())
        snapshot = epochal.advance_epoch([ApRemoved(ap_id=0)])
        epochal.adopt(snapshot)  # no-op re-adopt
        assert epochal.epoch_id == 1
        impostor = EpochSnapshot.of(
            1, apply_updates(small_db(), [ApRemoved(ap_id=1)])
        )
        with pytest.raises(ValueError, match="different"):
            epochal.adopt(impostor)

    def test_adopt_accepts_a_foreign_forward_snapshot(self):
        epochal = EpochalDatabase(small_db())
        foreign = EpochSnapshot.of(
            4, apply_updates(small_db(), [ApRemoved(ap_id=3)])
        )
        epochal.adopt(foreign)
        assert epochal.epoch_id == 4
        assert epochal.snapshot(4).checksum == foreign.checksum

    def test_constructor_accepts_a_snapshot_and_rejects_junk(self):
        snapshot = EpochSnapshot.of(2, small_db())
        resumed = EpochalDatabase(snapshot)
        assert resumed.epoch_id == 2
        with pytest.raises(TypeError, match="base must be"):
            EpochalDatabase({"kind": "db_epoch"})


class TestMutationHygiene:
    """Snapshot freezing: a caller-retained buffer must never alias in."""

    def test_caller_mutations_leave_the_checksum_unchanged(self):
        mean_rows = {
            0: [-40.0, -55.0, -70.0, -62.0],
            1: [-60.0, -45.0, -80.0, -65.0],
        }
        std_rows = {0: [2.0, 3.0, 4.0, 1.0], 1: [1.0, 1.0, 1.0, 1.0]}
        db = FingerprintDatabase(
            {lid: Fingerprint(row) for lid, row in mean_rows.items()},
            std_rows,
        )
        before = database_checksum(db)
        # The surveyor keeps editing their buffers after the snapshot.
        for row in mean_rows.values():
            row[0] = 0.0
        for row in std_rows.values():
            row[0] = 99.0
        assert database_checksum(db) == before

    def test_fingerprint_coerces_caller_lists_to_frozen_tuples(self):
        row = [-40.0, -55.0]
        fingerprint = Fingerprint(row)
        row[0] = 0.0
        assert fingerprint.rss == (-40.0, -55.0)
        assert isinstance(fingerprint.rss, tuple)

    def test_dense_views_are_read_only(self):
        db = small_db()
        with pytest.raises(ValueError, match="read-only"):
            db.mean_matrix[0, 0] = 0.0
        fp = db.fingerprint_of(0)
        with pytest.raises(ValueError, match="read-only"):
            fp.as_array()[0] = 0.0

    def test_epoch_snapshot_checksum_survives_source_mutation(self):
        rows = {0: [-40.0, -55.0], 1: [-60.0, -45.0]}
        db = FingerprintDatabase(
            {lid: Fingerprint(row) for lid, row in rows.items()}
        )
        snapshot = EpochSnapshot.of(0, db)
        for row in rows.values():
            row[1] = -1.0
        assert database_checksum(snapshot.database) == snapshot.checksum
        np.testing.assert_array_equal(
            snapshot.database.mean_matrix,
            np.array([[-40.0, -55.0], [-60.0, -45.0]]),
        )
