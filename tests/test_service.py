"""Tests for the MoLocService facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.pedestrian import BodyProfile
from repro.service import MoLocService


@pytest.fixture()
def service(small_study):
    motion_db, _ = small_study.motion_db(6)
    return MoLocService(
        small_study.fingerprint_db(6),
        motion_db,
        body=BodyProfile(height_m=1.72),
        config=small_study.config,
    )


def _calibration_from_trace(trace, n_hops=2):
    return [
        (hop.imu.compass_readings, hop.imu.true_course_deg)
        for hop in trace.hops[:n_hops]
    ]


class TestLifecycle:
    def test_first_fix_without_imu(self, service, small_study):
        trace = small_study.test_traces[0]
        estimate = service.on_interval(trace.initial_fingerprint.rss)
        assert estimate.location_id in small_study.scenario.plan.location_ids
        assert not estimate.used_motion
        assert service.fix_count == 1

    def test_motion_before_calibration_rejected(self, service, small_study):
        trace = small_study.test_traces[0]
        service.on_interval(trace.initial_fingerprint.rss)
        with pytest.raises(RuntimeError, match="calibration"):
            service.on_interval(
                trace.hops[0].arrival_fingerprint.rss, trace.hops[0].imu
            )

    def test_calibrate_then_track(self, service, small_study):
        trace = small_study.test_traces[0]
        service.calibrate_heading(_calibration_from_trace(trace))
        assert service.is_calibrated
        service.on_interval(trace.initial_fingerprint.rss)
        estimate = service.on_interval(
            trace.hops[0].arrival_fingerprint.rss, trace.hops[0].imu
        )
        assert estimate.used_motion or estimate.location_id  # completes

    def test_imu_outage_clears_pending_step_count(self, service, small_study):
        """Regression: an interval without IMU must clear ``_last_steps``,
        or stride personalization would pair a stale step count from an
        earlier interval with the next hop's distance."""
        trace = small_study.test_traces[0]
        service.calibrate_heading(_calibration_from_trace(trace))
        service.on_interval(trace.initial_fingerprint.rss)
        service.on_interval(
            trace.hops[0].arrival_fingerprint.rss, trace.hops[0].imu
        )
        assert service._last_steps is not None
        service.on_interval(trace.hops[1].arrival_fingerprint.rss, None)
        assert service._last_steps is None

    def test_end_session_resets(self, service, small_study):
        trace = small_study.test_traces[0]
        service.calibrate_heading(_calibration_from_trace(trace))
        service.on_interval(trace.initial_fingerprint.rss)
        service.end_session()
        assert not service.is_calibrated
        assert service.fix_count == 0


class TestTrackingQuality:
    def test_full_walk_accuracy(self, small_study):
        """Driving the service over whole walks reaches MoLoc-level accuracy.

        Calibration references come from the user's true hop courses
        (what Zee's map matching recovers); the service must then track
        most reference-location passages exactly.
        """
        motion_db, _ = small_study.motion_db(6)
        plan = small_study.scenario.plan
        correct = 0
        total = 0
        for trace in small_study.test_traces[:10]:
            service = MoLocService(
                small_study.fingerprint_db(6),
                motion_db,
                body=BodyProfile(height_m=1.72),
                config=small_study.config,
            )
            # Approximate the trace user's step length via their profile.
            service._stride.step_length_m = trace.estimated_step_length_m
            service.calibrate_heading(_calibration_from_trace(trace))
            service.on_interval(trace.initial_fingerprint.rss)
            for hop in trace.hops:
                estimate = service.on_interval(
                    hop.arrival_fingerprint.rss, hop.imu
                )
                total += 1
                if estimate.location_id == hop.true_to:
                    correct += 1
        assert correct / total > 0.7

    def test_gyro_fusion_path_used_when_available(self, small_study, rng):
        """A gyro-equipped segment goes through the Kalman fusion path and
        still yields a sound heading (compared to the plain path)."""
        from repro.env.geometry import Point, bearing_difference
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.compass import CompassModel
        from repro.sensors.gyroscope import GyroscopeModel
        from repro.sensors.imu import ImuModel

        motion_db, _ = small_study.motion_db(6)
        fused_service = MoLocService(
            small_study.fingerprint_db(6),
            motion_db,
            body=BodyProfile(height_m=1.72),
            use_gyro_fusion=True,
        )
        plain_service = MoLocService(
            small_study.fingerprint_db(6),
            motion_db,
            body=BodyProfile(height_m=1.72),
            use_gyro_fusion=False,
        )
        imu = ImuModel(
            AccelerometerModel(), CompassModel(noise_std_deg=4.0), GyroscopeModel()
        )
        segment = imu.record_walk(Point(0, 0), Point(5, 0), 4.0, 0.5, rng)
        for service in (fused_service, plain_service):
            service.calibrate_heading([(segment.compass_readings, 90.0)])
        fused = fused_service._motion_from(segment)
        plain = plain_service._motion_from(segment)
        assert bearing_difference(fused.direction_deg, 90.0) < 6.0
        assert bearing_difference(plain.direction_deg, 90.0) < 6.0

    def test_stationary_interval_prefers_staying(self, small_study, rng):
        """An idle IMU recording keeps the fix at the current location."""
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.imu import ImuSegment

        motion_db, _ = small_study.motion_db(6)
        service = MoLocService(
            small_study.fingerprint_db(6),
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=small_study.config,
        )
        trace = small_study.test_traces[0]
        service.calibrate_heading(_calibration_from_trace(trace))
        first = service.on_interval(trace.initial_fingerprint.rss)

        idle_accel = AccelerometerModel().idle(3.0, rng)
        idle_segment = ImuSegment(
            accel=idle_accel,
            compass_readings=np.full(len(idle_accel.samples), 90.0),
            true_course_deg=90.0,
            true_distance_m=0.0,
        )
        second = service.on_interval(
            trace.initial_fingerprint.rss, idle_segment
        )
        assert second.location_id == first.location_id
