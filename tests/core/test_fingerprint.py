"""Tests for fingerprints and the fingerprint database (Eq. 1-2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.fingerprint import Fingerprint, FingerprintDatabase

rss_values = st.floats(min_value=-100.0, max_value=-20.0)
rss_vectors = st.lists(rss_values, min_size=1, max_size=8)


class TestFingerprint:
    def test_from_values(self):
        fp = Fingerprint.from_values([-50, -60.5])
        assert fp.rss == (-50.0, -60.5)
        assert fp.n_aps == 2

    def test_as_array(self):
        np.testing.assert_array_equal(
            Fingerprint.from_values([-50, -60]).as_array(), [-50.0, -60.0]
        )

    def test_euclidean_dissimilarity(self):
        a = Fingerprint.from_values([-50, -60])
        b = Fingerprint.from_values([-53, -56])
        assert a.dissimilarity(b) == pytest.approx(5.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Fingerprint.from_values([-50]).dissimilarity(
                Fingerprint.from_values([-50, -60])
            )

    def test_truncated(self):
        fp = Fingerprint.from_values([-50, -60, -70])
        assert fp.truncated(2).rss == (-50.0, -60.0)

    def test_truncate_bounds(self):
        fp = Fingerprint.from_values([-50, -60])
        with pytest.raises(ValueError):
            fp.truncated(0)
        with pytest.raises(ValueError):
            fp.truncated(3)

    @given(rss_vectors)
    def test_self_dissimilarity_zero(self, values):
        fp = Fingerprint.from_values(values)
        assert fp.dissimilarity(fp) == 0.0

    @given(rss_vectors, rss_vectors)
    def test_dissimilarity_symmetric(self, a_vals, b_vals):
        n = min(len(a_vals), len(b_vals))
        a = Fingerprint.from_values(a_vals[:n])
        b = Fingerprint.from_values(b_vals[:n])
        assert a.dissimilarity(b) == pytest.approx(b.dissimilarity(a))

    @given(
        st.lists(rss_values, min_size=3, max_size=3),
        st.lists(rss_values, min_size=3, max_size=3),
        st.lists(rss_values, min_size=3, max_size=3),
    )
    def test_triangle_inequality(self, av, bv, cv):
        a, b, c = (Fingerprint.from_values(v) for v in (av, bv, cv))
        assert a.dissimilarity(c) <= a.dissimilarity(b) + b.dissimilarity(c) + 1e-9


class TestDatabase:
    @pytest.fixture()
    def database(self) -> FingerprintDatabase:
        return FingerprintDatabase.from_samples(
            {
                1: [[-50, -60], [-52, -58]],
                2: [[-70, -40], [-70, -40]],
                3: [[-60, -60], [-62, -64]],
            }
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FingerprintDatabase({})

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            FingerprintDatabase(
                {
                    1: Fingerprint.from_values([-50]),
                    2: Fingerprint.from_values([-50, -60]),
                }
            )

    def test_from_samples_means(self, database):
        assert database.fingerprint_of(1).rss == (-51.0, -59.0)

    def test_from_samples_stds(self, database):
        assert database.std_of(1) == (1.0, 1.0)
        assert database.std_of(2) == (0.0, 0.0)

    def test_from_samples_rejects_empty_block(self):
        with pytest.raises(ValueError):
            FingerprintDatabase.from_samples({1: []})

    def test_std_without_statistics_raises(self):
        db = FingerprintDatabase({1: Fingerprint.from_values([-50.0])})
        with pytest.raises(KeyError):
            db.std_of(1)

    def test_location_ids_sorted(self, database):
        assert database.location_ids == [1, 2, 3]
        assert len(database) == 3
        assert 2 in database and 99 not in database

    def test_unknown_location_raises(self, database):
        with pytest.raises(KeyError):
            database.fingerprint_of(99)

    def test_dissimilarities_complete(self, database):
        query = Fingerprint.from_values([-51, -59])
        distances = database.dissimilarities(query)
        assert set(distances) == {1, 2, 3}
        assert distances[1] == pytest.approx(0.0)

    def test_query_length_mismatch(self, database):
        with pytest.raises(ValueError):
            database.dissimilarities(Fingerprint.from_values([-50.0]))

    def test_nearest(self, database):
        assert database.nearest(Fingerprint.from_values([-69, -41])) == 2

    def test_nearest_tie_breaks_low_id(self):
        db = FingerprintDatabase(
            {
                2: Fingerprint.from_values([-50.0]),
                1: Fingerprint.from_values([-50.0]),
            }
        )
        assert db.nearest(Fingerprint.from_values([-50.0])) == 1

    def test_truncated_database(self, database):
        small = database.truncated(1)
        assert small.n_aps == 1
        assert small.fingerprint_of(2).rss == (-70.0,)
        assert small.std_of(1) == (1.0,)

    def test_truncate_bounds(self, database):
        with pytest.raises(ValueError):
            database.truncated(0)
        with pytest.raises(ValueError):
            database.truncated(3)

    def test_std_length_validation(self):
        with pytest.raises(ValueError):
            FingerprintDatabase(
                {1: Fingerprint.from_values([-50, -60])}, stds={1: (1.0,)}
            )

    def test_std_unknown_location_validation(self):
        with pytest.raises(ValueError):
            FingerprintDatabase(
                {1: Fingerprint.from_values([-50.0])}, stds={2: (1.0,)}
            )

    @given(st.lists(rss_values, min_size=2, max_size=2))
    def test_nearest_returns_known_location(self, query_values):
        db = FingerprintDatabase(
            {
                1: Fingerprint.from_values([-50, -60]),
                2: Fingerprint.from_values([-70, -40]),
            }
        )
        assert db.nearest(Fingerprint.from_values(query_values)) in (1, 2)
