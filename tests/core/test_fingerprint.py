"""Tests for fingerprints and the fingerprint database (Eq. 1-2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.fingerprint import Fingerprint, FingerprintDatabase

rss_values = st.floats(min_value=-100.0, max_value=-20.0)
rss_vectors = st.lists(rss_values, min_size=1, max_size=8)


class TestFingerprint:
    def test_from_values(self):
        fp = Fingerprint.from_values([-50, -60.5])
        assert fp.rss == (-50.0, -60.5)
        assert fp.n_aps == 2

    def test_as_array(self):
        np.testing.assert_array_equal(
            Fingerprint.from_values([-50, -60]).as_array(), [-50.0, -60.0]
        )

    def test_euclidean_dissimilarity(self):
        a = Fingerprint.from_values([-50, -60])
        b = Fingerprint.from_values([-53, -56])
        assert a.dissimilarity(b) == pytest.approx(5.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Fingerprint.from_values([-50]).dissimilarity(
                Fingerprint.from_values([-50, -60])
            )

    def test_truncated(self):
        fp = Fingerprint.from_values([-50, -60, -70])
        assert fp.truncated(2).rss == (-50.0, -60.0)

    def test_truncate_bounds(self):
        fp = Fingerprint.from_values([-50, -60])
        with pytest.raises(ValueError):
            fp.truncated(0)
        with pytest.raises(ValueError):
            fp.truncated(3)

    def test_non_finite_rejected_by_default(self):
        with pytest.raises(ValueError, match="non-finite"):
            Fingerprint.from_values([-50.0, float("nan")])
        with pytest.raises(ValueError, match="non-finite"):
            Fingerprint.from_values([float("inf"), -60.0])

    def test_non_finite_floor_mode_substitutes_the_floor(self):
        fp = Fingerprint.from_values(
            [-50.0, float("nan")], non_finite="floor"
        )
        assert fp.rss == (-50.0, -100.0)

    def test_non_finite_floor_mode_custom_floor(self):
        fp = Fingerprint.from_values(
            [float("nan")], non_finite="floor", floor_dbm=-95.0
        )
        assert fp.rss == (-95.0,)

    def test_unknown_non_finite_policy_rejected(self):
        with pytest.raises(ValueError, match="non_finite"):
            Fingerprint.from_values([-50.0], non_finite="ignore")

    def test_masked_dissimilarity_skips_excluded_aps(self):
        a = Fingerprint.from_values([-50, -60, -100])
        b = Fingerprint.from_values([-53, -56, -40])
        assert a.dissimilarity(b, active_aps=(True, True, False)) == (
            pytest.approx(5.0)
        )

    def test_mask_length_mismatch_rejected(self):
        a = Fingerprint.from_values([-50, -60])
        with pytest.raises(ValueError):
            a.dissimilarity(a, active_aps=(True,))

    def test_mask_excluding_every_ap_rejected(self):
        a = Fingerprint.from_values([-50, -60])
        with pytest.raises(ValueError):
            a.dissimilarity(a, active_aps=(False, False))

    def test_as_array_is_read_only(self):
        array = Fingerprint.from_values([-50, -60]).as_array()
        with pytest.raises(ValueError):
            array[0] = 0.0

    @given(rss_vectors)
    def test_self_dissimilarity_zero(self, values):
        fp = Fingerprint.from_values(values)
        assert fp.dissimilarity(fp) == 0.0

    @given(rss_vectors, rss_vectors)
    def test_dissimilarity_symmetric(self, a_vals, b_vals):
        n = min(len(a_vals), len(b_vals))
        a = Fingerprint.from_values(a_vals[:n])
        b = Fingerprint.from_values(b_vals[:n])
        assert a.dissimilarity(b) == pytest.approx(b.dissimilarity(a))

    @given(
        st.lists(rss_values, min_size=3, max_size=3),
        st.lists(rss_values, min_size=3, max_size=3),
        st.lists(rss_values, min_size=3, max_size=3),
    )
    def test_triangle_inequality(self, av, bv, cv):
        a, b, c = (Fingerprint.from_values(v) for v in (av, bv, cv))
        assert a.dissimilarity(c) <= a.dissimilarity(b) + b.dissimilarity(c) + 1e-9


class TestDatabase:
    @pytest.fixture()
    def database(self) -> FingerprintDatabase:
        return FingerprintDatabase.from_samples(
            {
                1: [[-50, -60], [-52, -58]],
                2: [[-70, -40], [-70, -40]],
                3: [[-60, -60], [-62, -64]],
            }
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FingerprintDatabase({})

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            FingerprintDatabase(
                {
                    1: Fingerprint.from_values([-50]),
                    2: Fingerprint.from_values([-50, -60]),
                }
            )

    def test_from_samples_means(self, database):
        assert database.fingerprint_of(1).rss == (-51.0, -59.0)

    def test_from_samples_stds(self, database):
        assert database.std_of(1) == (1.0, 1.0)
        assert database.std_of(2) == (0.0, 0.0)

    def test_from_samples_rejects_empty_block(self):
        with pytest.raises(ValueError):
            FingerprintDatabase.from_samples({1: []})

    def test_std_without_statistics_raises(self):
        db = FingerprintDatabase({1: Fingerprint.from_values([-50.0])})
        with pytest.raises(KeyError):
            db.std_of(1)

    def test_location_ids_sorted(self, database):
        assert database.location_ids == [1, 2, 3]
        assert len(database) == 3
        assert 2 in database and 99 not in database

    def test_unknown_location_raises(self, database):
        with pytest.raises(KeyError):
            database.fingerprint_of(99)

    def test_dissimilarities_complete(self, database):
        query = Fingerprint.from_values([-51, -59])
        distances = database.dissimilarities(query)
        assert set(distances) == {1, 2, 3}
        assert distances[1] == pytest.approx(0.0)

    def test_query_length_mismatch(self, database):
        with pytest.raises(ValueError):
            database.dissimilarities(Fingerprint.from_values([-50.0]))

    def test_nearest(self, database):
        assert database.nearest(Fingerprint.from_values([-69, -41])) == 2

    def test_nearest_tie_breaks_low_id(self):
        db = FingerprintDatabase(
            {
                2: Fingerprint.from_values([-50.0]),
                1: Fingerprint.from_values([-50.0]),
            }
        )
        assert db.nearest(Fingerprint.from_values([-50.0])) == 1

    def test_truncated_database(self, database):
        small = database.truncated(1)
        assert small.n_aps == 1
        assert small.fingerprint_of(2).rss == (-70.0,)
        assert small.std_of(1) == (1.0,)

    def test_truncate_bounds(self, database):
        with pytest.raises(ValueError):
            database.truncated(0)
        with pytest.raises(ValueError):
            database.truncated(3)

    def test_std_length_validation(self):
        with pytest.raises(ValueError):
            FingerprintDatabase(
                {1: Fingerprint.from_values([-50, -60])}, stds={1: (1.0,)}
            )

    def test_std_unknown_location_validation(self):
        with pytest.raises(ValueError):
            FingerprintDatabase(
                {1: Fingerprint.from_values([-50.0])}, stds={2: (1.0,)}
            )

    def test_masked_dissimilarities_match_pairwise(self, database):
        """The vectorized masked path agrees with per-pair masking."""
        query = Fingerprint.from_values([-51.0, -100.0])
        mask = (True, False)
        distances = database.dissimilarities(query, active_aps=mask)
        for lid in database.location_ids:
            assert distances[lid] == pytest.approx(
                query.dissimilarity(
                    database.fingerprint_of(lid), active_aps=mask
                )
            )

    def test_masking_rescues_a_dead_ap_query(self, database):
        """With AP 0 floored, full matching is poisoned; masking it
        recovers the right location."""
        poisoned = Fingerprint.from_values([-100.0, -59.0])  # truly at 1
        assert database.nearest(poisoned) != 1
        assert database.nearest(poisoned, active_aps=(False, True)) == 1

    def test_mask_length_validated(self, database):
        with pytest.raises(ValueError):
            database.dissimilarities(
                Fingerprint.from_values([-50.0, -60.0]),
                active_aps=(True,),
            )

    @given(st.lists(rss_values, min_size=2, max_size=2))
    def test_nearest_returns_known_location(self, query_values):
        db = FingerprintDatabase(
            {
                1: Fingerprint.from_values([-50, -60]),
                2: Fingerprint.from_values([-70, -40]),
            }
        )
        assert db.nearest(Fingerprint.from_values(query_values)) in (1, 2)
