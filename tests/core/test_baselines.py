"""Tests for the baseline localizers."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    HmmLocalizer,
    HorusLocalizer,
    NaiveFusionLocalizer,
    WiFiFingerprintingLocalizer,
)
from repro.core.config import MoLocConfig
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.motion.rlm import MotionMeasurement


@pytest.fixture()
def fdb() -> FingerprintDatabase:
    return FingerprintDatabase.from_samples(
        {
            1: [[-50, -50], [-52, -48]],
            2: [[-60, -70], [-58, -72]],
            3: [[-80, -55], [-82, -57]],
        }
    )


@pytest.fixture()
def mdb() -> MotionDatabase:
    def stats(direction):
        return PairStatistics(direction, 5.0, 5.0, 0.3, 10)

    return MotionDatabase({(1, 2): stats(90.0), (2, 3): stats(90.0)})


class TestWiFiBaseline:
    def test_nearest_match(self, fdb):
        localizer = WiFiFingerprintingLocalizer(fdb)
        estimate = localizer.locate(Fingerprint.from_values([-59, -71]))
        assert estimate.location_id == 2
        assert not estimate.used_motion

    def test_motion_ignored(self, fdb):
        localizer = WiFiFingerprintingLocalizer(fdb)
        with_motion = localizer.locate(
            Fingerprint.from_values([-59, -71]), MotionMeasurement(0.0, 50.0)
        )
        without = localizer.locate(Fingerprint.from_values([-59, -71]))
        assert with_motion.location_id == without.location_id

    def test_stateless_across_reset(self, fdb):
        localizer = WiFiFingerprintingLocalizer(fdb)
        a = localizer.locate(Fingerprint.from_values([-51, -49])).location_id
        localizer.reset()
        b = localizer.locate(Fingerprint.from_values([-51, -49])).location_id
        assert a == b == 1


class TestHorus:
    def test_maximum_likelihood_match(self, fdb):
        localizer = HorusLocalizer(fdb)
        assert localizer.locate(Fingerprint.from_values([-51, -49])).location_id == 1

    def test_uses_per_ap_variances(self):
        """A high-variance location tolerates deviation a tight one doesn't."""
        db = FingerprintDatabase.from_samples(
            {
                1: [[-50], [-60], [-40]],  # mean -50, loose
                2: [[-45.5], [-46.5]],  # mean -46, tight
            }
        )
        localizer = HorusLocalizer(db)
        # -54 is 4 dB from location 2's mean but ~8 from location 1's;
        # location 1's large sigma still makes it the likelier source.
        assert localizer.locate(Fingerprint.from_values([-54.0])).location_id == 1

    def test_invalid_min_std(self, fdb):
        with pytest.raises(ValueError):
            HorusLocalizer(fdb, min_std_dbm=0.0)


class TestHmm:
    def test_initial_fix_matches_emissions(self, fdb, mdb):
        localizer = HmmLocalizer(fdb, mdb)
        assert localizer.locate(Fingerprint.from_values([-59, -71])).location_id == 2

    def test_belief_carries_over(self, fdb, mdb):
        """After a confident fix at 1, a move constrains the next fix."""
        localizer = HmmLocalizer(fdb, mdb)
        localizer.locate(Fingerprint.from_values([-50, -50]))
        # Ambiguous scan between 2 and 3; only 2 is reachable from 1.
        estimate = localizer.locate(
            Fingerprint.from_values([-70, -62]), MotionMeasurement(90.0, 5.0)
        )
        assert estimate.location_id == 2

    def test_stationary_user_self_loops(self, fdb, mdb):
        localizer = HmmLocalizer(fdb, mdb)
        localizer.locate(Fingerprint.from_values([-50, -50]))
        estimate = localizer.locate(
            Fingerprint.from_values([-52, -51]), MotionMeasurement(0.0, 0.1)
        )
        assert estimate.location_id == 1

    def test_reset(self, fdb, mdb):
        localizer = HmmLocalizer(fdb, mdb)
        localizer.locate(Fingerprint.from_values([-50, -50]))
        localizer.reset()
        assert localizer.locate(Fingerprint.from_values([-59, -71])).location_id == 2

    def test_invalid_self_loop(self, fdb, mdb):
        with pytest.raises(ValueError):
            HmmLocalizer(fdb, mdb, self_loop=1.0)


class TestNaiveFusion:
    @pytest.fixture()
    def mdb12(self) -> MotionDatabase:
        """Motion database knowing only the 1 -> 2 hop.

        With (2, 3) absent, candidate 3 gets no zero-mismatch escape route
        through the retained twin, which is what the bias tests need.
        """
        return MotionDatabase(
            {(1, 2): PairStatistics(90.0, 5.0, 5.0, 0.3, 10)}
        )

    def test_first_fix_is_fingerprint_nearest(self, fdb, mdb):
        localizer = NaiveFusionLocalizer(fdb, mdb, MoLocConfig(k=3))
        assert localizer.locate(Fingerprint.from_values([-59, -71])).location_id == 2

    def test_motion_term_added(self, fdb, mdb12):
        """Matching motion pulls the fused score toward the reachable twin."""
        localizer = NaiveFusionLocalizer(fdb, mdb12, MoLocConfig(k=2))
        localizer.locate(Fingerprint.from_values([-50, -50]))
        estimate = localizer.locate(
            Fingerprint.from_values([-70, -62]), MotionMeasurement(90.0, 5.0)
        )
        assert estimate.location_id == 2

    def test_bias_toward_wide_range_measurement(self, fdb, mdb12):
        """The strawman's flaw: a big direction mismatch (degrees) swamps a
        small fingerprint gap (dB), so the fingerprint evidence is ignored.

        With k=2 the retained set is {1, 2}; candidate 3 is unreachable and
        its fallback direction penalty (180 degrees) dwarfs the 26 dB
        fingerprint gap that should have decided for it."""
        localizer = NaiveFusionLocalizer(fdb, mdb12, MoLocConfig(k=2))
        localizer.locate(Fingerprint.from_values([-50, -50]))
        # Scan is *exactly* location 3's fingerprint, but measured motion
        # matches 1 -> 2; the additive fusion overrides the fingerprint.
        estimate = localizer.locate(
            Fingerprint.from_values([-81, -56]), MotionMeasurement(90.0, 5.0)
        )
        assert estimate.location_id == 2

    def test_reset(self, fdb, mdb):
        localizer = NaiveFusionLocalizer(fdb, mdb)
        localizer.locate(Fingerprint.from_values([-50, -50]))
        localizer.reset()
        estimate = localizer.locate(
            Fingerprint.from_values([-59, -71]), MotionMeasurement(90.0, 5.0)
        )
        assert estimate.location_id == 2
