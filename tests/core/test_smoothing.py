"""Tests for offline Viterbi trajectory smoothing."""

from __future__ import annotations

import pytest

from repro.core.config import MoLocConfig
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.localizer import MoLocLocalizer
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.core.smoothing import ViterbiSmoother
from repro.motion.rlm import MotionMeasurement


def stats(direction, offset=5.0) -> PairStatistics:
    return PairStatistics(direction, 5.0, offset, 0.3, 10)


@pytest.fixture()
def line_world():
    """Locations 1-2-3 on an eastward line; 4 is 2's fingerprint twin."""
    fingerprint_db = FingerprintDatabase(
        {
            1: Fingerprint.from_values([-40.0, -70.0]),
            2: Fingerprint.from_values([-55.0, -55.0]),
            3: Fingerprint.from_values([-70.0, -40.0]),
            4: Fingerprint.from_values([-55.5, -54.5]),  # twin of 2
        }
    )
    motion_db = MotionDatabase(
        {
            (1, 2): stats(90.0),
            (2, 3): stats(90.0),
            # 4 hangs off location 1 to the north; unreachable from 3.
            (1, 4): stats(0.0),
        }
    )
    return fingerprint_db, motion_db


class TestValidation:
    def test_empty_walk_rejected(self, line_world):
        smoother = ViterbiSmoother(*line_world)
        with pytest.raises(ValueError):
            smoother.smooth([], [])

    def test_length_mismatch_rejected(self, line_world):
        smoother = ViterbiSmoother(*line_world)
        fp = Fingerprint.from_values([-40.0, -70.0])
        with pytest.raises(ValueError):
            smoother.smooth([fp, fp], [])


class TestDecoding:
    def test_single_interval_is_nearest(self, line_world):
        smoother = ViterbiSmoother(*line_world, config=MoLocConfig(k=3))
        path = smoother.smooth([Fingerprint.from_values([-41.0, -69.0])], [])
        assert path == [1]

    def test_clean_walk_decoded(self, line_world):
        smoother = ViterbiSmoother(*line_world, config=MoLocConfig(k=3))
        fingerprints = [
            Fingerprint.from_values([-40.0, -70.0]),
            Fingerprint.from_values([-55.0, -55.0]),
            Fingerprint.from_values([-70.0, -40.0]),
        ]
        motions = [MotionMeasurement(90.0, 5.0)] * 2
        assert smoother.smooth(fingerprints, motions) == [1, 2, 3]

    def test_future_evidence_repairs_twin(self, line_world):
        """The 1 -> 2 -> 3 walk where the middle scan slightly favors the
        twin 4: the *next* fix at 3 is only reachable from 2, so Viterbi
        retroactively picks 2 — the online filter cannot do this."""
        fingerprint_db, motion_db = line_world
        config = MoLocConfig(k=4)
        fingerprints = [
            Fingerprint.from_values([-40.0, -70.0]),
            Fingerprint.from_values([-55.4, -54.6]),  # favors twin 4
            Fingerprint.from_values([-70.0, -40.0]),
        ]
        motions = [
            MotionMeasurement(88.0, 5.1),  # eastward: matches 1->2, not 1->4
            MotionMeasurement(91.0, 4.9),
        ]
        smoother = ViterbiSmoother(fingerprint_db, motion_db, config)
        assert smoother.smooth(fingerprints, motions) == [1, 2, 3]

    def test_none_motion_is_uninformative(self, line_world):
        smoother = ViterbiSmoother(*line_world, config=MoLocConfig(k=3))
        fingerprints = [
            Fingerprint.from_values([-40.0, -70.0]),
            Fingerprint.from_values([-70.0, -40.0]),
        ]
        path = smoother.smooth(fingerprints, [None])
        assert path == [1, 3]

    def test_unreachable_step_reseeds(self, line_world):
        """Motion matching no pair at all falls back to emissions."""
        smoother = ViterbiSmoother(*line_world, config=MoLocConfig(k=2))
        fingerprints = [
            Fingerprint.from_values([-40.0, -70.0]),
            Fingerprint.from_values([-70.0, -40.0]),
        ]
        # 20 m westward matches nothing in the database.
        path = smoother.smooth(fingerprints, [MotionMeasurement(270.0, 20.0)])
        assert path[1] == 3  # emission-only choice


class TestAgainstOnline:
    def test_smoother_at_least_as_accurate_as_online(self, small_study):
        """On the shared study, offline decoding beats or ties the online
        localizer — it sees the future."""
        from repro.sim.evaluation import evaluate_localizer, evaluate_smoother

        fingerprint_db = small_study.fingerprint_db(5)
        motion_db, _ = small_study.motion_db(5)
        online = MoLocLocalizer(fingerprint_db, motion_db, small_study.config)
        offline = ViterbiSmoother(fingerprint_db, motion_db, small_study.config)

        online_result = evaluate_localizer(
            online, small_study.test_traces, small_study.scenario.plan
        )
        offline_result = evaluate_smoother(
            offline, small_study.test_traces, small_study.scenario.plan
        )
        assert offline_result.accuracy >= online_result.accuracy - 0.02
