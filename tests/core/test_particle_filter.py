"""Tests for the particle-filter localizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.particle_filter import ParticleFilterLocalizer
from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point
from repro.motion.rlm import MotionMeasurement


@pytest.fixture()
def world():
    """A 20 x 10 plan with three well-separated locations."""
    plan = FloorPlan(
        width=20.0,
        height=10.0,
        reference_locations=[
            ReferenceLocation(1, Point(3.0, 5.0)),
            ReferenceLocation(2, Point(10.0, 5.0)),
            ReferenceLocation(3, Point(17.0, 5.0)),
        ],
    )
    db = FingerprintDatabase(
        {
            1: Fingerprint.from_values([-40.0, -75.0]),
            2: Fingerprint.from_values([-58.0, -58.0]),
            3: Fingerprint.from_values([-75.0, -40.0]),
        }
    )
    return plan, db


class TestValidation:
    def test_parameters(self, world):
        plan, db = world
        with pytest.raises(ValueError):
            ParticleFilterLocalizer(db, plan, n_particles=5)
        with pytest.raises(ValueError):
            ParticleFilterLocalizer(db, plan, rss_sigma_db=0.0)
        with pytest.raises(ValueError):
            ParticleFilterLocalizer(db, plan, idw_neighbors=0)


class TestRadioMap:
    def test_exact_at_references(self, world):
        plan, db = world
        pf = ParticleFilterLocalizer(db, plan)
        query = np.array([[3.0, 5.0]])
        interpolated = pf.map_rss_at(query)[0]
        np.testing.assert_allclose(interpolated, [-40.0, -75.0], atol=0.2)

    def test_midpoint_blends(self, world):
        plan, db = world
        pf = ParticleFilterLocalizer(db, plan, idw_neighbors=2)
        midpoint = np.array([[6.5, 5.0]])
        blended = pf.map_rss_at(midpoint)[0]
        assert -58.0 < blended[0] < -40.0
        assert -75.0 < blended[1] < -58.0


class TestLocalization:
    def test_static_fix_near_strong_evidence(self, world):
        plan, db = world
        pf = ParticleFilterLocalizer(db, plan, seed=3)
        estimate = pf.locate(Fingerprint.from_values([-41.0, -74.0]))
        assert estimate.location_id == 1

    def test_repeated_scans_converge(self, world):
        plan, db = world
        pf = ParticleFilterLocalizer(db, plan, seed=4)
        for _ in range(5):
            estimate = pf.locate(Fingerprint.from_values([-74.0, -41.0]))
        assert estimate.location_id == 3

    def test_motion_moves_the_cloud(self, world):
        plan, db = world
        pf = ParticleFilterLocalizer(db, plan, seed=5)
        for _ in range(4):
            pf.locate(Fingerprint.from_values([-40.0, -75.0]))
        # Walk 7 m east (1 -> 2) with an ambiguous arrival scan.
        estimate = pf.locate(
            Fingerprint.from_values([-58.0, -58.0]),
            MotionMeasurement(90.0, 7.0),
        )
        assert estimate.location_id == 2
        assert estimate.used_motion

    def test_reset_restores_determinism(self, world):
        plan, db = world
        pf = ParticleFilterLocalizer(db, plan, seed=6)
        first = [
            pf.locate(Fingerprint.from_values([-58.0, -58.0])).location_id
            for _ in range(3)
        ]
        pf.reset()
        second = [
            pf.locate(Fingerprint.from_values([-58.0, -58.0])).location_id
            for _ in range(3)
        ]
        assert first == second


class TestOnStudy:
    def test_reasonable_accuracy_on_hall(self, small_study):
        """The particle filter is a credible system on the paper setup."""
        from repro.sim.evaluation import evaluate_localizer

        pf = ParticleFilterLocalizer(
            small_study.fingerprint_db(6), small_study.scenario.plan, seed=1
        )
        result = evaluate_localizer(
            pf, small_study.test_traces[:10], small_study.scenario.plan
        )
        assert result.accuracy > 0.3
