"""Tests for the motion database (Sec. IV-C)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.motion_db import MotionDatabase, PairStatistics


def stats(direction=90.0, d_std=5.0, offset=4.0, o_std=0.3, n=10) -> PairStatistics:
    return PairStatistics(
        direction_mean_deg=direction,
        direction_std_deg=d_std,
        offset_mean_m=offset,
        offset_std_m=o_std,
        n_observations=n,
    )


class TestPairStatistics:
    def test_validation(self):
        with pytest.raises(ValueError):
            stats(d_std=0.0)
        with pytest.raises(ValueError):
            stats(o_std=-1.0)
        with pytest.raises(ValueError):
            stats(offset=0.0)
        with pytest.raises(ValueError):
            stats(n=0)

    def test_direction_normalized(self):
        assert stats(direction=400.0).direction_mean_deg == pytest.approx(40.0)

    def test_reversed_mirrors_direction_only(self):
        s = stats(direction=30.0)
        r = s.reversed()
        assert r.direction_mean_deg == pytest.approx(210.0)
        assert r.direction_std_deg == s.direction_std_deg
        assert r.offset_mean_m == s.offset_mean_m
        assert r.offset_std_m == s.offset_std_m
        assert r.n_observations == s.n_observations


class TestMotionDatabase:
    @pytest.fixture()
    def db(self) -> MotionDatabase:
        return MotionDatabase(
            {
                (1, 2): stats(direction=90.0, offset=5.7),
                (1, 8): stats(direction=180.0, offset=4.0),
            }
        )

    def test_keys_must_be_ordered(self):
        with pytest.raises(ValueError):
            MotionDatabase({(2, 1): stats()})

    def test_len_and_pairs(self, db):
        assert len(db) == 2
        assert db.pairs == [(1, 2), (1, 8)]

    def test_has_pair_symmetric(self, db):
        assert db.has_pair(1, 2)
        assert db.has_pair(2, 1)
        assert not db.has_pair(2, 8)

    def test_self_pair_absent(self, db):
        assert not db.has_pair(1, 1)
        with pytest.raises(KeyError):
            db.entry(1, 1)

    def test_forward_entry(self, db):
        entry = db.entry(1, 2)
        assert entry.direction_mean_deg == pytest.approx(90.0)
        assert entry.offset_mean_m == pytest.approx(5.7)

    def test_reverse_entry_derived(self, db):
        """Mutual reachability: mu_d flips by 180, everything else kept."""
        forward = db.entry(1, 2)
        backward = db.entry(2, 1)
        assert backward.direction_mean_deg == pytest.approx(270.0)
        assert backward.offset_mean_m == forward.offset_mean_m
        assert backward.direction_std_deg == forward.direction_std_deg
        assert backward.offset_std_m == forward.offset_std_m

    def test_missing_pair_raises(self, db):
        with pytest.raises(KeyError):
            db.entry(3, 4)

    def test_neighbors_of(self, db):
        assert db.neighbors_of(1) == [2, 8]
        assert db.neighbors_of(2) == [1]
        assert db.neighbors_of(99) == []

    def test_matrix_view(self, db):
        matrix = db.as_matrix([1, 2, 8])
        assert matrix.shape == (3, 3, 4)
        # Diagonal is NaN.
        assert np.isnan(matrix[0, 0]).all()
        # (1 -> 2) stored directly.
        assert matrix[0, 1, 0] == pytest.approx(90.0)
        # (2 -> 1) derived by mirroring.
        assert matrix[1, 0, 0] == pytest.approx(270.0)
        # Uncovered pair (2, 8) is NaN.
        assert np.isnan(matrix[1, 2]).all()

    def test_matrix_subset_of_locations(self, db):
        matrix = db.as_matrix([1, 2])
        assert matrix.shape == (2, 2, 4)
        assert matrix[0, 1, 2] == pytest.approx(5.7)
