"""Property-based tests for motion-database construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import MotionDatabaseBuilder
from repro.core.config import MoLocConfig
from repro.env.office_hall import office_hall
from repro.motion.rlm import MotionMeasurement, RlmObservation

_HALL = office_hall()
_EDGES = _HALL.graph.edge_list


@st.composite
def observations(draw):
    """A batch of RLM observations over real aisle hops, with noise."""
    n = draw(st.integers(min_value=4, max_value=40))
    batch = []
    for _ in range(n):
        i, j = _EDGES[draw(st.integers(0, len(_EDGES) - 1))]
        if draw(st.booleans()):
            i, j = j, i
        true_direction = _HALL.graph.hop_bearing(i, j)
        true_offset = _HALL.graph.hop_distance(i, j)
        direction = true_direction + draw(
            st.floats(min_value=-30.0, max_value=30.0)
        )
        offset = max(
            true_offset + draw(st.floats(min_value=-4.0, max_value=4.0)), 0.1
        )
        batch.append(
            RlmObservation(i, j, MotionMeasurement(direction, offset))
        )
    return batch


def _build(batch, **builder_kwargs):
    builder = MotionDatabaseBuilder(
        _HALL.plan, MoLocConfig(min_observations=1), **builder_kwargs
    )
    builder.add_observations(batch)
    return builder.build()


class TestBuilderProperties:
    @given(observations())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, batch):
        db_a, report_a = _build(batch)
        db_b, report_b = _build(batch)
        assert db_a.pairs == db_b.pairs
        assert report_a == report_b
        for pair in db_a.pairs:
            assert db_a.entry(*pair) == db_b.entry(*pair)

    @given(observations())
    @settings(max_examples=30, deadline=None)
    def test_accounting_adds_up(self, batch):
        db, report = _build(batch)
        stored = sum(db.entry(i, j).n_observations for i, j in db.pairs)
        assert (
            stored + report.coarse_rejected + report.fine_rejected
            == report.total_observations
        )
        assert report.total_observations == len(batch)

    @given(observations())
    @settings(max_examples=30, deadline=None)
    def test_keys_normalized(self, batch):
        db, _ = _build(batch)
        for i, j in db.pairs:
            assert i < j

    @given(observations())
    @settings(max_examples=30, deadline=None)
    def test_stored_entries_satisfy_coarse_gate(self, batch):
        """Whatever survives is within the coarse thresholds of the map."""
        from repro.env.geometry import bearing_difference

        config = MoLocConfig(min_observations=1)
        db, _ = _build(batch)
        for i, j in db.pairs:
            entry = db.entry(i, j)
            map_direction = _HALL.graph.hop_bearing(i, j)
            map_offset = _HALL.graph.hop_distance(i, j)
            # Means of gated samples stay within the gate.
            assert (
                bearing_difference(entry.direction_mean_deg, map_direction)
                <= config.coarse_direction_threshold_deg + 1e-6
            )
            assert (
                abs(entry.offset_mean_m - map_offset)
                <= config.coarse_offset_threshold_m + 1e-6
            )

    @given(observations())
    @settings(max_examples=20, deadline=None)
    def test_order_of_observations_irrelevant(self, batch):
        db_a, _ = _build(batch)
        db_b, _ = _build(list(reversed(batch)))
        assert db_a.pairs == db_b.pairs
        for pair in db_a.pairs:
            a, b = db_a.entry(*pair), db_b.entry(*pair)
            assert a.offset_mean_m == pytest.approx(b.offset_mean_m)
            assert a.direction_mean_deg == pytest.approx(
                b.direction_mean_deg, abs=1e-9
            )
