"""Tests for motion matching (Eq. 5-6)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MoLocConfig
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.core.motion_matching import (
    direction_probability,
    gaussian_interval_probability,
    offset_probability,
    pair_probability,
    set_transition_probability,
    stay_probability,
)
from repro.motion.rlm import MotionMeasurement


def stats(direction=90.0, d_std=5.0, offset=4.0, o_std=0.3) -> PairStatistics:
    return PairStatistics(
        direction_mean_deg=direction,
        direction_std_deg=d_std,
        offset_mean_m=offset,
        offset_std_m=o_std,
        n_observations=10,
    )


class TestGaussianInterval:
    def test_full_mass_for_wide_interval(self):
        assert gaussian_interval_probability(0.0, 1.0, 0.0, 100.0) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_symmetric_interval_at_mean(self):
        p = gaussian_interval_probability(5.0, 2.0, 5.0, 2.0)
        # P(|Z| <= 0.5) ~ 0.3829
        assert p == pytest.approx(0.3829, abs=1e-3)

    def test_far_center_near_zero(self):
        assert gaussian_interval_probability(0.0, 1.0, 50.0, 1.0) < 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_interval_probability(0.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            gaussian_interval_probability(0.0, 1.0, 0.0, 0.0)

    @given(
        mean=st.floats(min_value=-100, max_value=100),
        std=st.floats(min_value=0.1, max_value=50),
        center=st.floats(min_value=-200, max_value=200),
        width=st.floats(min_value=0.1, max_value=100),
    )
    @settings(max_examples=100)
    def test_always_a_probability(self, mean, std, center, width):
        p = gaussian_interval_probability(mean, std, center, width)
        assert 0.0 <= p <= 1.0


class TestProbabilityMassConservation:
    @given(
        mean=st.floats(min_value=0.0, max_value=359.9),
        std=st.floats(min_value=2.0, max_value=25.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_direction_bins_partition_the_circle(self, mean, std):
        """Summing D over bins of width alpha tiling the circle gives ~1
        (the direction Gaussian's mass lives on the circle)."""
        s = stats(direction=mean, d_std=std)
        alpha = 20.0
        total = sum(
            direction_probability(s, center + alpha / 2.0, alpha)
            for center in range(0, 360, int(alpha))
        )
        assert total == pytest.approx(1.0, abs=1e-3)

    @given(
        mean=st.floats(min_value=1.0, max_value=20.0),
        std=st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_offset_bins_partition_the_line(self, mean, std):
        s = stats(offset=mean, o_std=std)
        beta = 1.0
        total = sum(
            offset_probability(s, center + beta / 2.0, beta)
            for center in range(-30, 60)
        )
        assert total == pytest.approx(1.0, abs=1e-6)


class TestDirectionProbability:
    def test_peaks_at_mean(self):
        s = stats(direction=90.0)
        at_mean = direction_probability(s, 90.0, 20.0)
        off_mean = direction_probability(s, 120.0, 20.0)
        assert at_mean > off_mean

    def test_wraparound_handled(self):
        """A 358-degree measurement is near a 2-degree mean."""
        s = stats(direction=2.0)
        assert direction_probability(s, 358.0, 20.0) > 0.3

    def test_opposite_direction_negligible(self):
        s = stats(direction=90.0, d_std=5.0)
        assert direction_probability(s, 270.0, 20.0) < 1e-12

    @given(direction=st.floats(min_value=0, max_value=360))
    @settings(max_examples=50)
    def test_valid_probability(self, direction):
        p = direction_probability(stats(), direction, 20.0)
        assert 0.0 <= p <= 1.0


class TestOffsetProbability:
    def test_peaks_at_mean(self):
        s = stats(offset=4.0)
        assert offset_probability(s, 4.0, 1.0) > offset_probability(s, 6.0, 1.0)

    def test_far_offset_negligible(self):
        assert offset_probability(stats(offset=4.0, o_std=0.3), 15.0, 1.0) < 1e-12


class TestPairProbability:
    def test_factorizes(self):
        """Eq. 5: P = D * O exactly."""
        config = MoLocConfig()
        s = stats()
        m = MotionMeasurement(95.0, 4.2)
        expected = direction_probability(
            s, 95.0, config.alpha_deg
        ) * offset_probability(s, 4.2, config.beta_m)
        assert pair_probability(s, m, config) == pytest.approx(expected)

    def test_matching_motion_scores_high(self):
        config = MoLocConfig()
        s = stats(direction=90.0, offset=4.0)
        good = pair_probability(s, MotionMeasurement(91.0, 4.05), config)
        bad = pair_probability(s, MotionMeasurement(270.0, 4.05), config)
        assert good > 1000 * max(bad, 1e-300)


class TestStayProbability:
    def test_no_motion_scores_high(self):
        config = MoLocConfig()
        assert stay_probability(MotionMeasurement(0.0, 0.0), config) > 0.5

    def test_large_offset_scores_low(self):
        config = MoLocConfig()
        assert stay_probability(MotionMeasurement(0.0, 5.0), config) < 1e-9


class TestSetTransition:
    @pytest.fixture()
    def db(self) -> MotionDatabase:
        return MotionDatabase(
            {
                (1, 2): stats(direction=90.0, offset=5.7),
                (2, 3): stats(direction=90.0, offset=5.7),
            }
        )

    def test_eq6_mixture(self, db):
        """Transition probability is the prior-weighted sum of pair terms."""
        config = MoLocConfig()
        m = MotionMeasurement(90.0, 5.7)
        p_single = set_transition_probability(db, [(1, 1.0)], 2, m, config)
        p_mixed = set_transition_probability(
            db, [(1, 0.5), (3, 0.5)], 2, m, config
        )
        p_from_3 = pair_probability(db.entry(3, 2), m, config)
        p_from_1 = pair_probability(db.entry(1, 2), m, config)
        assert p_single == pytest.approx(p_from_1)
        assert p_mixed == pytest.approx(0.5 * p_from_1 + 0.5 * p_from_3)

    def test_unknown_pairs_contribute_zero(self, db):
        config = MoLocConfig()
        m = MotionMeasurement(90.0, 5.7)
        assert set_transition_probability(db, [(1, 1.0)], 3, m, config) == 0.0

    def test_self_transition_uses_stay_model(self, db):
        config = MoLocConfig()
        still = MotionMeasurement(0.0, 0.0)
        p = set_transition_probability(db, [(2, 1.0)], 2, still, config)
        assert p == pytest.approx(stay_probability(still, config))

    def test_zero_probability_priors_skipped(self, db):
        config = MoLocConfig()
        m = MotionMeasurement(90.0, 5.7)
        p = set_transition_probability(
            db, [(1, 0.0), (3, 1.0)], 2, m, config
        )
        assert p == pytest.approx(pair_probability(db.entry(3, 2), m, config))

    def test_correct_direction_discriminates_twins(self, db):
        """The Fig. 1 scenario: moving east from 1 favors 2 over 3's mirror.

        From candidate set {1}, a measured eastward walk matches entry
        (1 -> 2); walking from 1 to 3 directly is not in the database, so
        candidate 3 gets zero support.
        """
        config = MoLocConfig()
        east = MotionMeasurement(90.0, 5.7)
        p2 = set_transition_probability(db, [(1, 1.0)], 2, east, config)
        p3 = set_transition_probability(db, [(1, 1.0)], 3, east, config)
        assert p2 > 0.1
        assert p3 == 0.0
