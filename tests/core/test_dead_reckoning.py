"""Tests for the dead-reckoning baseline."""

from __future__ import annotations

import pytest

from repro.core.dead_reckoning import DeadReckoningLocalizer
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point
from repro.motion.rlm import MotionMeasurement


@pytest.fixture()
def world():
    plan = FloorPlan(
        width=20.0,
        height=10.0,
        reference_locations=[
            ReferenceLocation(1, Point(3.0, 5.0)),
            ReferenceLocation(2, Point(10.0, 5.0)),
            ReferenceLocation(3, Point(17.0, 5.0)),
        ],
    )
    db = FingerprintDatabase(
        {
            1: Fingerprint.from_values([-40.0, -75.0]),
            2: Fingerprint.from_values([-58.0, -58.0]),
            3: Fingerprint.from_values([-75.0, -40.0]),
        }
    )
    return plan, db


class TestAnchoring:
    def test_first_fix_is_fingerprint_nearest(self, world):
        plan, db = world
        pdr = DeadReckoningLocalizer(db, plan)
        estimate = pdr.locate(Fingerprint.from_values([-41.0, -74.0]))
        assert estimate.location_id == 1
        assert not estimate.used_motion
        assert pdr.dead_reckoned_position == plan.position_of(1)

    def test_missing_motion_re_anchors(self, world):
        plan, db = world
        pdr = DeadReckoningLocalizer(db, plan)
        pdr.locate(Fingerprint.from_values([-41.0, -74.0]))
        estimate = pdr.locate(Fingerprint.from_values([-74.0, -41.0]), None)
        assert estimate.location_id == 3
        assert not estimate.used_motion

    def test_reset_drops_anchor(self, world):
        plan, db = world
        pdr = DeadReckoningLocalizer(db, plan)
        pdr.locate(Fingerprint.from_values([-41.0, -74.0]))
        pdr.reset()
        assert pdr.dead_reckoned_position is None


class TestIntegration:
    def test_rss_ignored_after_anchor(self, world):
        """After anchoring, the scan content is irrelevant."""
        plan, db = world
        pdr = DeadReckoningLocalizer(db, plan)
        pdr.locate(Fingerprint.from_values([-41.0, -74.0]))
        # Scan screams "location 3" but motion says 7 m east (to 2).
        estimate = pdr.locate(
            Fingerprint.from_values([-75.0, -40.0]),
            MotionMeasurement(90.0, 7.0),
        )
        assert estimate.location_id == 2
        assert estimate.used_motion

    def test_motion_integrates(self, world):
        plan, db = world
        pdr = DeadReckoningLocalizer(db, plan)
        pdr.locate(Fingerprint.from_values([-41.0, -74.0]))
        pdr.locate(
            Fingerprint.from_values([-58.0, -58.0]), MotionMeasurement(90.0, 7.0)
        )
        estimate = pdr.locate(
            Fingerprint.from_values([-58.0, -58.0]), MotionMeasurement(90.0, 7.0)
        )
        assert estimate.location_id == 3

    def test_clamped_to_plan(self, world):
        plan, db = world
        pdr = DeadReckoningLocalizer(db, plan)
        pdr.locate(Fingerprint.from_values([-74.0, -41.0]))  # anchor at 3
        pdr.locate(
            Fingerprint.from_values([-58.0, -58.0]),
            MotionMeasurement(90.0, 50.0),  # walk off the east wall
        )
        assert pdr.dead_reckoned_position.x <= plan.width


class TestDriftBehavior:
    def test_errors_grow_along_the_walk(self, small_study):
        """PDR's error grows with hops; MoLoc's does not (it re-anchors
        with every scan).  Compare late-walk accuracy."""
        from repro.core.localizer import MoLocLocalizer
        from repro.sim.evaluation import evaluate_localizer

        plan = small_study.scenario.plan
        fdb = small_study.fingerprint_db(6)
        mdb, _ = small_study.motion_db(6)
        pdr_result = evaluate_localizer(
            DeadReckoningLocalizer(fdb, plan),
            small_study.test_traces,
            plan,
        )
        moloc_result = evaluate_localizer(
            MoLocLocalizer(fdb, mdb, small_study.config),
            small_study.test_traces,
            plan,
        )

        def late_errors(result):
            return [
                r.error_m
                for t in result.traces
                for r in t.records[10:]
            ]

        import numpy as np

        assert float(np.mean(late_errors(pdr_result))) > float(
            np.mean(late_errors(moloc_result))
        )
