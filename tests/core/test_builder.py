"""Tests for motion-database construction and sanitation (Sec. IV-B2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import MotionDatabaseBuilder
from repro.core.config import MoLocConfig
from repro.motion.rlm import MotionMeasurement, RlmObservation


def _good_measurements(plan, i, j, rng, n=12, direction_noise=2.0, offset_noise=0.1):
    """Measurements clustered around the map-truth RLM for (i, j)."""
    from repro.env.geometry import bearing_between

    a, b = plan.position_of(i), plan.position_of(j)
    true_direction = bearing_between(a, b)
    true_offset = a.distance_to(b)
    return [
        RlmObservation(
            i,
            j,
            MotionMeasurement(
                direction_deg=true_direction + rng.normal(0, direction_noise),
                offset_m=max(true_offset + rng.normal(0, offset_noise), 0.1),
            ),
        )
        for _ in range(n)
    ]


class TestAccumulation:
    def test_self_observations_ignored(self, hall):
        builder = MotionDatabaseBuilder(hall.plan)
        builder.add_observation(RlmObservation(3, 3, MotionMeasurement(0.0, 1.0)))
        assert builder.n_observations == 0

    def test_unknown_location_rejected(self, hall):
        builder = MotionDatabaseBuilder(hall.plan)
        with pytest.raises(ValueError):
            builder.add_observation(
                RlmObservation(1, 99, MotionMeasurement(0.0, 1.0))
            )

    def test_observations_reassembled(self, hall, rng):
        """Adding (2, 1) measurements trains the (1, 2) entry."""
        builder = MotionDatabaseBuilder(hall.plan)
        reversed_obs = [
            RlmObservation(obs.end_id, obs.start_id, obs.measurement.reversed())
            for obs in _good_measurements(hall.plan, 1, 2, rng)
        ]
        builder.add_observations(reversed_obs)
        db, report = builder.build()
        assert db.has_pair(1, 2)
        assert report.pairs_stored == 1


class TestFitting:
    def test_entry_matches_ground_truth(self, hall, rng):
        builder = MotionDatabaseBuilder(hall.plan)
        builder.add_observations(_good_measurements(hall.plan, 1, 2, rng, n=30))
        db, _ = builder.build()
        entry = db.entry(1, 2)
        assert abs(entry.direction_mean_deg - 90.0) < 2.0
        assert entry.offset_mean_m == pytest.approx(
            hall.plan.distance_between(1, 2), abs=0.15
        )
        assert entry.n_observations > 20

    def test_sigma_floors_applied(self, hall):
        """Identical measurements hit the configured minimum sigmas."""
        config = MoLocConfig()
        builder = MotionDatabaseBuilder(hall.plan, config)
        measurement = MotionMeasurement(90.0, hall.plan.distance_between(1, 2))
        builder.add_observations(
            RlmObservation(1, 2, measurement) for _ in range(5)
        )
        db, _ = builder.build()
        entry = db.entry(1, 2)
        assert entry.direction_std_deg == config.min_direction_std_deg
        assert entry.offset_std_m == config.min_offset_std_m


class TestCoarseFilter:
    def test_wild_directions_rejected(self, hall, rng):
        builder = MotionDatabaseBuilder(hall.plan)
        good = _good_measurements(hall.plan, 1, 2, rng, n=10)
        distance = hall.plan.distance_between(1, 2)
        bad = [
            RlmObservation(1, 2, MotionMeasurement(200.0, distance))
            for _ in range(4)
        ]
        builder.add_observations(good + bad)
        db, report = builder.build()
        assert report.coarse_rejected >= 4
        assert abs(db.entry(1, 2).direction_mean_deg - 90.0) < 3.0

    def test_wild_offsets_rejected(self, hall, rng):
        builder = MotionDatabaseBuilder(hall.plan)
        good = _good_measurements(hall.plan, 1, 2, rng, n=10)
        bad = [
            RlmObservation(1, 2, MotionMeasurement(90.0, 20.0)) for _ in range(4)
        ]
        builder.add_observations(good + bad)
        db, report = builder.build()
        assert report.coarse_rejected >= 4
        assert db.entry(1, 2).offset_mean_m < 7.0

    def test_mislocalized_endpoint_pairs_filtered(self, hall, rng):
        """Motion between distant 'estimated' endpoints fails the map check.

        A user walked 1 -> 2 (5.67 m east) but fingerprinting estimated the
        endpoints as 1 and 22 (14 m apart, to the south): the coarse filter
        must drop all of it and the pair must not enter the database.
        """
        builder = MotionDatabaseBuilder(hall.plan)
        real_walk = MotionMeasurement(90.0, hall.plan.distance_between(1, 2))
        builder.add_observations(
            RlmObservation(1, 22, real_walk) for _ in range(6)
        )
        db, report = builder.build()
        assert not db.has_pair(1, 22)
        assert report.coarse_rejected == 6
        assert report.pairs_rejected_sparse == 1

    def test_coarse_filter_can_be_disabled(self, hall, rng):
        builder = MotionDatabaseBuilder(
            hall.plan, enable_coarse_filter=False, enable_fine_filter=False
        )
        real_walk = MotionMeasurement(90.0, hall.plan.distance_between(1, 2))
        builder.add_observations(
            RlmObservation(1, 22, real_walk) for _ in range(6)
        )
        db, report = builder.build()
        assert db.has_pair(1, 22)
        assert report.coarse_rejected == 0


class TestFineFilter:
    def test_two_sigma_outliers_removed(self, hall, rng):
        config = MoLocConfig(coarse_direction_threshold_deg=20.0)
        builder = MotionDatabaseBuilder(hall.plan, config)
        good = _good_measurements(
            hall.plan, 1, 2, rng, n=30, direction_noise=1.0, offset_noise=0.05
        )
        distance = hall.plan.distance_between(1, 2)
        # Inside the coarse gate (within 20 deg / 3 m) but far off the cluster.
        stragglers = [
            RlmObservation(1, 2, MotionMeasurement(90.0 + 18.0, distance + 2.5))
            for _ in range(2)
        ]
        builder.add_observations(good + stragglers)
        db, report = builder.build()
        assert report.fine_rejected >= 2
        assert db.entry(1, 2).offset_std_m < 0.5

    def test_fine_filter_can_be_disabled(self, hall, rng):
        builder = MotionDatabaseBuilder(hall.plan, enable_fine_filter=False)
        builder.add_observations(_good_measurements(hall.plan, 1, 2, rng))
        _, report = builder.build()
        assert report.fine_rejected == 0


class TestSupportThreshold:
    def test_sparse_pairs_omitted(self, hall, rng):
        config = MoLocConfig(min_observations=5)
        builder = MotionDatabaseBuilder(hall.plan, config)
        builder.add_observations(_good_measurements(hall.plan, 1, 2, rng, n=3))
        db, report = builder.build()
        assert len(db) == 0
        assert report.pairs_rejected_sparse == 1

    def test_report_totals_consistent(self, hall, rng):
        builder = MotionDatabaseBuilder(hall.plan)
        observations = _good_measurements(hall.plan, 1, 2, rng, n=20)
        observations += _good_measurements(hall.plan, 1, 8, rng, n=20)
        builder.add_observations(observations)
        db, report = builder.build()
        assert report.total_observations == 40
        assert report.pairs_stored == 2
        stored = sum(db.entry(i, j).n_observations for i, j in db.pairs)
        assert (
            stored + report.coarse_rejected + report.fine_rejected
            == report.total_observations
        )
