"""Tests for adaptive fingerprint maintenance."""

from __future__ import annotations

import pytest

from repro.core.config import MoLocConfig
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.core.updater import AdaptiveMoLocLocalizer, FingerprintUpdater
from repro.motion.rlm import MotionMeasurement


@pytest.fixture()
def db() -> FingerprintDatabase:
    return FingerprintDatabase.from_samples(
        {1: [[-50.0, -60.0], [-50.0, -60.0]], 2: [[-70.0, -40.0], [-70.0, -40.0]]}
    )


class TestValidation:
    def test_learning_rate_bounds(self, db):
        with pytest.raises(ValueError):
            FingerprintUpdater(db, learning_rate=0.0)
        with pytest.raises(ValueError):
            FingerprintUpdater(db, learning_rate=1.5)

    def test_threshold_bounds(self, db):
        with pytest.raises(ValueError):
            FingerprintUpdater(db, confidence_threshold=1.1)

    def test_unknown_location(self, db):
        updater = FingerprintUpdater(db)
        with pytest.raises(KeyError):
            updater.observe(99, Fingerprint.from_values([-50, -60]), 1.0)

    def test_scan_length_mismatch(self, db):
        updater = FingerprintUpdater(db)
        with pytest.raises(ValueError):
            updater.observe(1, Fingerprint.from_values([-50.0]), 1.0)


class TestGating:
    def test_low_confidence_rejected(self, db):
        updater = FingerprintUpdater(db, confidence_threshold=0.9)
        applied = updater.observe(1, Fingerprint.from_values([-40, -70]), 0.5)
        assert not applied
        assert updater.updates_rejected == 1
        assert updater.database.fingerprint_of(1).rss == (-50.0, -60.0)

    def test_high_confidence_applied(self, db):
        updater = FingerprintUpdater(db, learning_rate=0.1)
        applied = updater.observe(1, Fingerprint.from_values([-40, -70]), 0.95)
        assert applied
        assert updater.updates_applied == 1
        updated = updater.database.fingerprint_of(1)
        assert updated.rss[0] == pytest.approx(-49.0)  # 0.9*-50 + 0.1*-40
        assert updated.rss[1] == pytest.approx(-61.0)

    def test_other_locations_untouched(self, db):
        updater = FingerprintUpdater(db)
        updater.observe(1, Fingerprint.from_values([-40, -70]), 1.0)
        assert updater.database.fingerprint_of(2).rss == (-70.0, -40.0)

    def test_statistics_preserved_through_update(self, db):
        updater = FingerprintUpdater(db)
        updater.observe(1, Fingerprint.from_values([-40, -70]), 1.0)
        assert updater.database.std_of(2) == (0.0, 0.0)


class TestConvergence:
    def test_repeated_observations_converge_to_new_truth(self, db):
        """Under persistent drift, the EMA walks to the new fingerprint."""
        updater = FingerprintUpdater(db, learning_rate=0.2)
        target = Fingerprint.from_values([-45.0, -65.0])
        for _ in range(60):
            updater.observe(1, target, 1.0)
        final = updater.database.fingerprint_of(1)
        assert final.rss[0] == pytest.approx(-45.0, abs=0.05)
        assert final.rss[1] == pytest.approx(-65.0, abs=0.05)

    def test_single_bad_fix_barely_moves_database(self, db):
        """Poisoning resistance: one wrong confident fix shifts the entry
        by at most learning_rate times the scan gap."""
        updater = FingerprintUpdater(db, learning_rate=0.05)
        updater.observe(1, Fingerprint.from_values([-90.0, -20.0]), 1.0)
        moved = updater.database.fingerprint_of(1)
        assert abs(moved.rss[0] - (-50.0)) <= 0.05 * 40.0 + 1e-9


class TestAdaptiveLocalizer:
    @pytest.fixture()
    def world(self, db):
        motion_db = MotionDatabase(
            {(1, 2): PairStatistics(90.0, 5.0, 5.0, 0.3, 10)}
        )
        return db, motion_db

    def test_behaves_like_moloc_initially(self, world):
        db, motion_db = world
        adaptive = AdaptiveMoLocLocalizer(db, motion_db, MoLocConfig(k=2))
        estimate = adaptive.locate(Fingerprint.from_values([-50.5, -59.5]))
        assert estimate.location_id == 1

    def test_initial_fix_never_feeds_back(self, world):
        """Fingerprint-only fixes can be confident twin mistakes."""
        db, motion_db = world
        adaptive = AdaptiveMoLocLocalizer(db, motion_db, MoLocConfig(k=2))
        adaptive.locate(Fingerprint.from_values([-50.0, -60.0]))
        assert adaptive.updater.updates_applied == 0

    def test_confident_motion_fix_feeds_back(self, world):
        db, motion_db = world
        adaptive = AdaptiveMoLocLocalizer(
            db, motion_db, MoLocConfig(k=2), learning_rate=0.5,
            confidence_threshold=0.8,
        )
        adaptive.locate(Fingerprint.from_values([-50.0, -60.0]))
        estimate = adaptive.locate(
            Fingerprint.from_values([-68.0, -42.0]),
            MotionMeasurement(90.0, 5.0),
        )
        assert estimate.location_id == 2
        assert adaptive.updater.updates_applied == 1
        updated = adaptive.fingerprint_db.fingerprint_of(2)
        assert updated.rss[0] == pytest.approx(-69.0)  # halfway

    def test_reset_keeps_learned_database(self, world):
        db, motion_db = world
        adaptive = AdaptiveMoLocLocalizer(
            db, motion_db, MoLocConfig(k=2), learning_rate=0.5,
            confidence_threshold=0.5,
        )
        adaptive.locate(Fingerprint.from_values([-50.0, -60.0]))
        adaptive.locate(
            Fingerprint.from_values([-68.0, -42.0]),
            MotionMeasurement(90.0, 5.0),
        )
        learned = adaptive.fingerprint_db.fingerprint_of(2)
        adaptive.reset()
        assert adaptive.fingerprint_db.fingerprint_of(2) == learned
