"""Tests for MoLoc configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import MoLocConfig


class TestDefaults:
    def test_paper_values(self):
        config = MoLocConfig()
        assert config.alpha_deg == 20.0
        assert config.beta_m == 1.0
        assert config.coarse_direction_threshold_deg == 20.0
        assert config.coarse_offset_threshold_m == 3.0
        assert config.fine_sigma_multiplier == 2.0

    def test_frozen(self):
        config = MoLocConfig()
        with pytest.raises(Exception):
            config.k = 3


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"alpha_deg": 0.0},
            {"beta_m": -1.0},
            {"coarse_direction_threshold_deg": 0.0},
            {"coarse_offset_threshold_m": -2.0},
            {"fine_sigma_multiplier": 0.0},
            {"min_observations": 0},
            {"min_direction_std_deg": 0.0},
            {"min_offset_std_m": -0.1},
            {"stay_sigma_m": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MoLocConfig(**kwargs)

    def test_custom_values_accepted(self):
        config = MoLocConfig(k=3, alpha_deg=10.0, beta_m=0.5)
        assert config.k == 3
