"""Property-based invariants of the MoLoc localizer.

For arbitrary query fingerprints and motion measurements, the localizer
must uphold its probabilistic contract: a valid, normalized posterior
over a k-sized candidate set, the returned estimate being its argmax,
and retention behaving like documented.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MoLocConfig
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.localizer import MoLocLocalizer
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.motion.rlm import MotionMeasurement

rss = st.floats(min_value=-95.0, max_value=-30.0)
queries = st.lists(rss, min_size=3, max_size=3).map(Fingerprint.from_values)
motions = st.builds(
    MotionMeasurement,
    direction_deg=st.floats(min_value=0.0, max_value=359.9),
    offset_m=st.floats(min_value=0.0, max_value=12.0),
)


def _world():
    fingerprint_db = FingerprintDatabase(
        {
            1: Fingerprint.from_values([-45.0, -60.0, -75.0]),
            2: Fingerprint.from_values([-60.0, -45.0, -60.0]),
            3: Fingerprint.from_values([-75.0, -60.0, -45.0]),
            4: Fingerprint.from_values([-60.0, -75.0, -60.0]),
            5: Fingerprint.from_values([-50.0, -50.0, -50.0]),
        }
    )
    motion_db = MotionDatabase(
        {
            (1, 2): PairStatistics(90.0, 5.0, 5.0, 0.3, 10),
            (2, 3): PairStatistics(90.0, 5.0, 5.0, 0.3, 10),
            (3, 4): PairStatistics(180.0, 5.0, 4.0, 0.3, 10),
            (1, 5): PairStatistics(45.0, 5.0, 7.0, 0.3, 10),
        }
    )
    return fingerprint_db, motion_db


class TestPosteriorInvariants:
    @given(first=queries, second=queries, motion=motions)
    @settings(max_examples=80, deadline=None)
    def test_posterior_is_a_distribution(self, first, second, motion):
        fdb, mdb = _world()
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=4))
        localizer.locate(first)
        estimate = localizer.locate(second, motion)
        total = sum(c.probability for c in estimate.candidates)
        assert total == pytest.approx(1.0, abs=1e-9)
        assert all(0.0 <= c.probability <= 1.0 for c in estimate.candidates)
        assert len(estimate.candidates) == 4

    @given(first=queries, second=queries, motion=motions)
    @settings(max_examples=60, deadline=None)
    def test_estimate_is_argmax(self, first, second, motion):
        fdb, mdb = _world()
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=4))
        localizer.locate(first)
        estimate = localizer.locate(second, motion)
        best = max(c.probability for c in estimate.candidates)
        assert estimate.probability == pytest.approx(best)
        assert any(
            c.location_id == estimate.location_id
            and c.probability == estimate.probability
            for c in estimate.candidates
        )

    @given(query=queries)
    @settings(max_examples=60, deadline=None)
    def test_first_fix_matches_fingerprint_probabilities(self, query):
        fdb, mdb = _world()
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        estimate = localizer.locate(query)
        assert not estimate.used_motion
        for candidate in estimate.candidates:
            assert candidate.probability == pytest.approx(
                candidate.fingerprint_probability
            )

    @given(first=queries, second=queries, motion=motions)
    @settings(max_examples=60, deadline=None)
    def test_retention_matches_returned_candidates(self, first, second, motion):
        fdb, mdb = _world()
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=4))
        localizer.locate(first)
        estimate = localizer.locate(second, motion)
        retained = dict(localizer.retained_candidates)
        for candidate in estimate.candidates:
            assert retained[candidate.location_id] == pytest.approx(
                candidate.probability
            )

    @given(first=queries, second=queries, motion=motions)
    @settings(max_examples=40, deadline=None)
    def test_candidates_sorted_by_dissimilarity(self, first, second, motion):
        fdb, mdb = _world()
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=5))
        localizer.locate(first)
        estimate = localizer.locate(second, motion)
        gaps = [c.dissimilarity for c in estimate.candidates]
        assert gaps == sorted(gaps)

    @given(query=queries, motion=motions)
    @settings(max_examples=40, deadline=None)
    def test_reset_equals_fresh_localizer(self, query, motion):
        fdb, mdb = _world()
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.locate(query)
        localizer.locate(query, motion)
        localizer.reset()
        after_reset = localizer.locate(query)
        fresh = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3)).locate(query)
        assert after_reset.location_id == fresh.location_id
        assert after_reset.probability == pytest.approx(fresh.probability)
