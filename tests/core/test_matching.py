"""Tests for candidate estimation (Eq. 3-4)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.matching import select_candidates


@pytest.fixture()
def database() -> FingerprintDatabase:
    return FingerprintDatabase(
        {
            1: Fingerprint.from_values([-50.0, -60.0]),
            2: Fingerprint.from_values([-55.0, -60.0]),
            3: Fingerprint.from_values([-70.0, -40.0]),
            4: Fingerprint.from_values([-90.0, -90.0]),
        }
    )


class TestSelection:
    def test_k_nearest_returned(self, database):
        query = Fingerprint.from_values([-50.0, -60.0])
        candidates = select_candidates(database, query, k=2)
        assert [c.location_id for c in candidates] == [1, 2]

    def test_sorted_by_dissimilarity(self, database):
        query = Fingerprint.from_values([-60.0, -55.0])
        candidates = select_candidates(database, query, k=4)
        gaps = [c.dissimilarity for c in candidates]
        assert gaps == sorted(gaps)

    def test_k_larger_than_database(self, database):
        query = Fingerprint.from_values([-50.0, -60.0])
        assert len(select_candidates(database, query, k=10)) == 4

    def test_invalid_k(self, database):
        with pytest.raises(ValueError):
            select_candidates(database, Fingerprint.from_values([-50, -60]), k=0)

    def test_active_ap_mask_changes_the_ranking(self, database):
        """A floored AP 0 poisons full matching; masking it restores the
        location the live AP actually identifies."""
        query = Fingerprint.from_values([-100.0, -60.0])  # truly at 1
        full = select_candidates(database, query, k=1)
        masked = select_candidates(
            database, query, k=1, active_aps=(False, True)
        )
        assert full[0].location_id == 4
        assert masked[0].location_id in (1, 2)  # AP-1 twins without AP 0

    def test_masked_probabilities_still_normalized(self, database):
        query = Fingerprint.from_values([-58.0, -57.0])
        candidates = select_candidates(
            database, query, k=3, active_aps=(True, False)
        )
        assert sum(c.probability for c in candidates) == pytest.approx(1.0)

    def test_tie_breaks_low_id(self):
        db = FingerprintDatabase(
            {
                7: Fingerprint.from_values([-50.0]),
                3: Fingerprint.from_values([-50.0]),
            }
        )
        candidates = select_candidates(db, Fingerprint.from_values([-50.0]), k=1)
        assert candidates[0].location_id == 3


class TestProbabilities:
    def test_probabilities_sum_to_one(self, database):
        query = Fingerprint.from_values([-58.0, -57.0])
        candidates = select_candidates(database, query, k=3)
        assert sum(c.probability for c in candidates) == pytest.approx(1.0)

    def test_smaller_dissimilarity_higher_probability(self, database):
        query = Fingerprint.from_values([-51.0, -60.0])
        candidates = select_candidates(database, query, k=4)
        probabilities = [c.probability for c in candidates]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_inverse_proportionality(self, database):
        """Eq. 4: P(l_i) proportional to 1/m_i."""
        query = Fingerprint.from_values([-58.0, -57.0])
        candidates = select_candidates(database, query, k=3)
        for a in candidates:
            for b in candidates:
                assert a.probability * a.dissimilarity == pytest.approx(
                    b.probability * b.dissimilarity, rel=1e-6
                )

    def test_exact_match_dominates(self, database):
        query = Fingerprint.from_values([-50.0, -60.0])  # equals location 1
        candidates = select_candidates(database, query, k=3)
        assert candidates[0].location_id == 1
        assert candidates[0].probability > 0.999

    @given(
        st.floats(min_value=-90, max_value=-40),
        st.floats(min_value=-90, max_value=-40),
        st.integers(min_value=1, max_value=4),
    )
    def test_probabilities_valid(self, f1, f2, k):
        db = FingerprintDatabase(
            {
                1: Fingerprint.from_values([-50.0, -60.0]),
                2: Fingerprint.from_values([-55.0, -60.0]),
                3: Fingerprint.from_values([-70.0, -40.0]),
                4: Fingerprint.from_values([-90.0, -90.0]),
            }
        )
        candidates = select_candidates(db, Fingerprint.from_values([f1, f2]), k=k)
        assert len(candidates) == k
        assert sum(c.probability for c in candidates) == pytest.approx(1.0)
        assert all(0.0 < c.probability <= 1.0 for c in candidates)
