"""Tests for the MoLoc localizer (Eq. 7) on hand-built twin scenarios."""

from __future__ import annotations

import pytest

from repro.core.config import MoLocConfig
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.localizer import MoLocLocalizer
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.motion.rlm import MotionMeasurement


def stats(direction, offset=5.0) -> PairStatistics:
    return PairStatistics(
        direction_mean_deg=direction,
        direction_std_deg=5.0,
        offset_mean_m=offset,
        offset_std_m=0.3,
        n_observations=10,
    )


@pytest.fixture()
def twin_world():
    """The Fig. 1(b) setting as databases.

    Locations: 1 = p (unique fingerprint), 2 = q, 3 = q' (twins: nearly
    identical fingerprints).  Walking west from p reaches q; q' lies
    elsewhere (east of p).
    """
    fingerprint_db = FingerprintDatabase(
        {
            1: Fingerprint.from_values([-50.0, -50.0]),
            2: Fingerprint.from_values([-62.0, -71.0]),
            3: Fingerprint.from_values([-62.5, -70.5]),
        }
    )
    motion_db = MotionDatabase(
        {
            (1, 2): stats(direction=270.0),  # p -> q is westward
            (1, 3): stats(direction=90.0),  # p -> q' is eastward
        }
    )
    return fingerprint_db, motion_db


class TestInitialFix:
    def test_first_fix_is_fingerprint_only(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        estimate = localizer.locate(Fingerprint.from_values([-50.5, -49.5]))
        assert estimate.location_id == 1
        assert not estimate.used_motion

    def test_candidates_retained(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        assert localizer.retained_candidates is None
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        retained = localizer.retained_candidates
        assert retained is not None
        assert len(retained) == 3
        assert sum(p for _, p in retained) == pytest.approx(1.0)

    def test_reset_forgets_history(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb)
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        localizer.reset()
        assert localizer.retained_candidates is None


class TestServingHooks:
    """The hooks the robustness layer drives: seeding and per-call k."""

    def test_seed_candidates_sets_the_prior(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.seed_candidates([(1, 1.0)])
        assert localizer.retained_candidates == [(1, 1.0)]

    def test_seed_candidates_rejects_empty(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb)
        with pytest.raises(ValueError):
            localizer.seed_candidates([])

    def test_seeded_prior_drives_motion_matching(self, twin_world):
        """A seeded retained set behaves exactly like one from a fix:
        westward motion from seeded p selects twin q."""
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.seed_candidates([(1, 1.0)])
        estimate = localizer.locate(
            Fingerprint.from_values([-62.4, -70.6]),
            MotionMeasurement(direction_deg=268.0, offset_m=5.1),
        )
        assert estimate.used_motion
        assert estimate.location_id == 2

    def test_per_call_k_overrides_the_config(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=1))
        narrow = localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        assert len(narrow.candidates) == 1
        localizer.reset()
        wide = localizer.locate(
            Fingerprint.from_values([-50.0, -50.0]), k=3
        )
        assert len(wide.candidates) == 3

    def test_masked_locate_ignores_the_dead_ap(self, twin_world):
        """With AP 1 floored, full matching loses p; the mask recovers
        it from AP 0 alone."""
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=1))
        poisoned = Fingerprint.from_values([-50.0, -100.0])
        masked = localizer.locate(poisoned, active_aps=(True, False))
        assert masked.location_id == 1


class TestTwinDisambiguation:
    def test_fig1b_motion_resolves_twins(self, twin_world):
        """From a correct fix at p, westward motion selects q over q'."""
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))

        # Ambiguous fingerprint slightly *favoring the wrong twin* q'.
        ambiguous = Fingerprint.from_values([-62.4, -70.6])
        westward = MotionMeasurement(direction_deg=268.0, offset_m=5.1)
        estimate = localizer.locate(ambiguous, westward)
        assert estimate.used_motion
        assert estimate.location_id == 2

    def test_without_motion_the_wrong_twin_wins(self, twin_world):
        """Control: fingerprint-only matching picks the closer twin q'."""
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        estimate = localizer.locate(Fingerprint.from_values([-62.4, -70.6]), None)
        assert estimate.location_id == 3
        assert not estimate.used_motion

    def test_eastward_motion_selects_other_twin(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        eastward = MotionMeasurement(direction_deg=91.0, offset_m=5.0)
        estimate = localizer.locate(
            Fingerprint.from_values([-62.2, -70.8]), eastward
        )
        assert estimate.location_id == 3


class TestPosterior:
    def test_posterior_normalized(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        estimate = localizer.locate(
            Fingerprint.from_values([-62.0, -71.0]),
            MotionMeasurement(270.0, 5.0),
        )
        assert sum(c.probability for c in estimate.candidates) == pytest.approx(1.0)

    def test_eq7_proportionality(self, twin_world):
        """Posterior ratio equals fingerprint-prob times transition ratio."""
        from repro.core.motion_matching import set_transition_probability

        fdb, mdb = twin_world
        config = MoLocConfig(k=3)
        localizer = MoLocLocalizer(fdb, mdb, config)
        first = localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        prior = [(c.location_id, c.probability) for c in first.candidates]

        query = Fingerprint.from_values([-62.0, -71.0])
        motion = MotionMeasurement(270.0, 5.0)
        estimate = localizer.locate(query, motion)

        weights = {
            c.location_id: c.fingerprint_probability
            * set_transition_probability(
                mdb, prior, c.location_id, motion, config
            )
            for c in estimate.candidates
        }
        total = sum(weights.values())
        for c in estimate.candidates:
            assert c.probability == pytest.approx(weights[c.location_id] / total)

    def test_zero_support_falls_back_to_fingerprints(self, twin_world):
        """Motion incompatible with every candidate => fingerprint-only."""
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        # Northward long walk: matches no database entry from any candidate.
        impossible = MotionMeasurement(direction_deg=0.0, offset_m=20.0)
        estimate = localizer.locate(
            Fingerprint.from_values([-62.4, -70.6]), impossible
        )
        assert not estimate.used_motion
        assert estimate.location_id == 3  # the plain fingerprint answer

    def test_invalid_retention_mode_rejected(self, twin_world):
        fdb, mdb = twin_world
        with pytest.raises(ValueError, match="retention"):
            MoLocLocalizer(fdb, mdb, retention="magic")

    def test_fingerprint_retention_keeps_eq4_probabilities(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(
            fdb, mdb, MoLocConfig(k=3), retention="fingerprint"
        )
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        estimate = localizer.locate(
            Fingerprint.from_values([-62.0, -71.0]),
            MotionMeasurement(270.0, 5.0),
        )
        retained = dict(localizer.retained_candidates)
        for candidate in estimate.candidates:
            assert retained[candidate.location_id] == pytest.approx(
                candidate.fingerprint_probability
            )

    def test_retention_modes_can_disagree_downstream(self, twin_world):
        """After a motion-assisted fix, the two retention modes carry
        different priors into the next interval."""
        fdb, mdb = twin_world
        posterior = MoLocLocalizer(fdb, mdb, MoLocConfig(k=3))
        fingerprint = MoLocLocalizer(
            fdb, mdb, MoLocConfig(k=3), retention="fingerprint"
        )
        for localizer in (posterior, fingerprint):
            localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
            localizer.locate(
                Fingerprint.from_values([-62.4, -70.6]),
                MotionMeasurement(268.0, 5.1),
            )
        assert dict(posterior.retained_candidates) != dict(
            fingerprint.retained_candidates
        )

    def test_candidates_expose_both_probability_layers(self, twin_world):
        fdb, mdb = twin_world
        localizer = MoLocLocalizer(fdb, mdb, MoLocConfig(k=2))
        localizer.locate(Fingerprint.from_values([-50.0, -50.0]))
        estimate = localizer.locate(
            Fingerprint.from_values([-62.0, -71.0]),
            MotionMeasurement(270.0, 5.0),
        )
        for candidate in estimate.candidates:
            assert 0.0 <= candidate.fingerprint_probability <= 1.0
            assert 0.0 <= candidate.probability <= 1.0
            assert candidate.dissimilarity >= 0.0
