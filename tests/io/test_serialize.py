"""Round-trip tests for the persistence layer."""

from __future__ import annotations

import pytest

from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.io.serialize import (
    FORMAT_VERSION,
    fingerprint_db_from_dict,
    fingerprint_db_to_dict,
    floorplan_from_dict,
    floorplan_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_json,
    motion_db_from_dict,
    motion_db_to_dict,
    save_json,
)


class TestFloorPlanRoundTrip:
    def test_office_hall_round_trip(self, hall):
        restored = floorplan_from_dict(floorplan_to_dict(hall.plan))
        assert restored.name == hall.plan.name
        assert restored.width == hall.plan.width
        assert restored.height == hall.plan.height
        assert restored.location_ids == hall.plan.location_ids
        for lid in hall.plan.location_ids:
            assert restored.position_of(lid) == hall.plan.position_of(lid)
        assert restored.walls == hall.plan.walls
        assert restored.ap_positions == hall.plan.ap_positions

    def test_wall_queries_preserved(self, hall):
        restored = floorplan_from_dict(floorplan_to_dict(hall.plan))
        a = hall.plan.position_of(10)
        b = hall.plan.position_of(17)
        assert restored.wall_count_between(a, b) == hall.plan.wall_count_between(a, b)

    def test_wrong_kind_rejected(self, hall):
        payload = floorplan_to_dict(hall.plan)
        payload["kind"] = "something_else"
        with pytest.raises(ValueError, match="expected"):
            floorplan_from_dict(payload)

    def test_wrong_version_rejected(self, hall):
        payload = floorplan_to_dict(hall.plan)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            floorplan_from_dict(payload)


class TestGraphRoundTrip:
    def test_edges_preserved(self, hall):
        restored = graph_from_dict(graph_to_dict(hall.graph), hall.plan)
        assert restored.edge_list == hall.graph.edge_list

    def test_hop_measurements_preserved(self, hall):
        restored = graph_from_dict(graph_to_dict(hall.graph), hall.plan)
        for i, j in hall.graph.edge_list[:5]:
            assert restored.hop_distance(i, j) == pytest.approx(
                hall.graph.hop_distance(i, j)
            )
            assert restored.hop_bearing(i, j) == pytest.approx(
                hall.graph.hop_bearing(i, j)
            )


class TestFingerprintDbRoundTrip:
    def test_with_statistics(self):
        db = FingerprintDatabase.from_samples(
            {1: [[-50, -60], [-52, -58]], 2: [[-70, -40], [-71, -41]]}
        )
        restored = fingerprint_db_from_dict(fingerprint_db_to_dict(db))
        assert restored.location_ids == db.location_ids
        assert restored.n_aps == db.n_aps
        for lid in db.location_ids:
            assert restored.fingerprint_of(lid) == db.fingerprint_of(lid)
            assert restored.std_of(lid) == db.std_of(lid)

    def test_without_statistics(self):
        db = FingerprintDatabase({1: Fingerprint.from_values([-50.0])})
        restored = fingerprint_db_from_dict(fingerprint_db_to_dict(db))
        with pytest.raises(KeyError):
            restored.std_of(1)

    def test_survey_database_round_trip(self, scenario):
        db = scenario.survey.database
        restored = fingerprint_db_from_dict(fingerprint_db_to_dict(db))
        query = scenario.survey.holdout_at(5)[0]
        assert restored.nearest(query) == db.nearest(query)


class TestMotionDbRoundTrip:
    def test_entries_preserved(self):
        db = MotionDatabase(
            {
                (1, 2): PairStatistics(90.0, 4.0, 5.7, 0.2, 12),
                (2, 9): PairStatistics(181.5, 3.0, 4.0, 0.15, 30),
            }
        )
        restored = motion_db_from_dict(motion_db_to_dict(db))
        assert restored.pairs == db.pairs
        for pair in db.pairs:
            a, b = restored.entry(*pair), db.entry(*pair)
            assert a == b

    def test_reverse_lookup_preserved(self):
        db = MotionDatabase({(1, 2): PairStatistics(90.0, 4.0, 5.7, 0.2, 12)})
        restored = motion_db_from_dict(motion_db_to_dict(db))
        assert restored.entry(2, 1).direction_mean_deg == pytest.approx(270.0)


class TestFiles:
    def test_save_and_load(self, hall, tmp_path):
        path = tmp_path / "nested" / "plan.json"
        save_json(floorplan_to_dict(hall.plan), path)
        assert path.exists()
        restored = floorplan_from_dict(load_json(path))
        assert restored.location_ids == hall.plan.location_ids

    def test_output_is_stable(self, hall, tmp_path):
        """Serialization is deterministic (sorted keys)."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_json(floorplan_to_dict(hall.plan), a)
        save_json(floorplan_to_dict(hall.plan), b)
        assert a.read_text() == b.read_text()
