"""Property-based round-trip tests: serialization over generated artifacts."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.io.serialize import (
    fingerprint_db_from_dict,
    fingerprint_db_to_dict,
    motion_db_from_dict,
    motion_db_to_dict,
)

rss = st.floats(min_value=-100.0, max_value=-20.0)


@st.composite
def fingerprint_databases(draw):
    n_aps = draw(st.integers(min_value=1, max_value=6))
    n_locations = draw(st.integers(min_value=1, max_value=8))
    location_ids = draw(
        st.lists(
            st.integers(min_value=1, max_value=100),
            min_size=n_locations,
            max_size=n_locations,
            unique=True,
        )
    )
    means = {}
    for lid in location_ids:
        values = draw(st.lists(rss, min_size=n_aps, max_size=n_aps))
        means[lid] = Fingerprint.from_values(values)
    return FingerprintDatabase(means)


@st.composite
def motion_databases(draw):
    n_pairs = draw(st.integers(min_value=1, max_value=10))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=30),
                st.integers(min_value=1, max_value=30),
            ).filter(lambda p: p[0] < p[1]),
            min_size=n_pairs,
            max_size=n_pairs,
            unique=True,
        )
    )
    entries = {}
    for pair in pairs:
        entries[pair] = PairStatistics(
            direction_mean_deg=draw(st.floats(min_value=0.0, max_value=359.9)),
            direction_std_deg=draw(st.floats(min_value=0.1, max_value=60.0)),
            offset_mean_m=draw(st.floats(min_value=0.1, max_value=30.0)),
            offset_std_m=draw(st.floats(min_value=0.01, max_value=5.0)),
            n_observations=draw(st.integers(min_value=1, max_value=500)),
        )
    return MotionDatabase(entries)


class TestFingerprintDbProperties:
    @given(fingerprint_databases())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_identity(self, database):
        restored = fingerprint_db_from_dict(fingerprint_db_to_dict(database))
        assert restored.location_ids == database.location_ids
        assert restored.n_aps == database.n_aps
        for lid in database.location_ids:
            assert restored.fingerprint_of(lid) == database.fingerprint_of(lid)

    @given(fingerprint_databases())
    @settings(max_examples=20, deadline=None)
    def test_payload_is_json_safe(self, database):
        text = json.dumps(fingerprint_db_to_dict(database))
        restored = fingerprint_db_from_dict(json.loads(text))
        assert restored.location_ids == database.location_ids

    @given(fingerprint_databases(), st.lists(rss, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_nearest_preserved(self, database, query_values):
        query = Fingerprint.from_values(
            (query_values * 6)[: database.n_aps]
        )
        restored = fingerprint_db_from_dict(fingerprint_db_to_dict(database))
        assert restored.nearest(query) == database.nearest(query)


class TestMotionDbProperties:
    @given(motion_databases())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_identity(self, database):
        restored = motion_db_from_dict(motion_db_to_dict(database))
        assert restored.pairs == database.pairs
        for pair in database.pairs:
            assert restored.entry(*pair) == database.entry(*pair)

    @given(motion_databases())
    @settings(max_examples=20, deadline=None)
    def test_reverse_entries_preserved(self, database):
        restored = motion_db_from_dict(motion_db_to_dict(database))
        for i, j in database.pairs:
            assert restored.entry(j, i) == database.entry(j, i)

    @given(motion_databases())
    @settings(max_examples=20, deadline=None)
    def test_payload_is_json_safe(self, database):
        text = json.dumps(motion_db_to_dict(database))
        restored = motion_db_from_dict(json.loads(text))
        assert restored.pairs == database.pairs
