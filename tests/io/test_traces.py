"""Round-trip tests for trace serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.io.serialize import load_json, save_json
from repro.io.traces import (
    trace_from_dict,
    trace_to_dict,
    traces_from_dict,
    traces_to_dict,
)
from repro.sim.evaluation import evaluate_localizer


@pytest.fixture()
def trace(small_study):
    return small_study.test_traces[0]


class TestTraceRoundTrip:
    def test_metadata_preserved(self, trace):
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.user == trace.user
        assert restored.true_start == trace.true_start
        assert restored.true_locations == trace.true_locations
        assert restored.placement_offset_estimate_deg == pytest.approx(
            trace.placement_offset_estimate_deg
        )
        assert restored.estimated_step_length_m == pytest.approx(
            trace.estimated_step_length_m
        )

    def test_fingerprints_preserved(self, trace):
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.initial_fingerprint == trace.initial_fingerprint
        for original, rebuilt in zip(trace.hops, restored.hops):
            assert rebuilt.arrival_fingerprint == original.arrival_fingerprint

    def test_sensor_streams_preserved(self, trace):
        restored = trace_from_dict(trace_to_dict(trace))
        for original, rebuilt in zip(trace.hops, restored.hops):
            np.testing.assert_allclose(
                rebuilt.imu.accel.samples, original.imu.accel.samples
            )
            np.testing.assert_allclose(
                rebuilt.imu.compass_readings, original.imu.compass_readings
            )
            assert rebuilt.imu.rate_hz == original.imu.rate_hz

    def test_gyro_stream_round_trips(self, rng):
        from repro.env.geometry import Point
        from repro.motion.trace import TraceHop, WalkTrace
        from repro.core.fingerprint import Fingerprint
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.compass import CompassModel
        from repro.sensors.gyroscope import GyroscopeModel
        from repro.sensors.imu import ImuModel

        imu = ImuModel(AccelerometerModel(), CompassModel(), GyroscopeModel())
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
        trace = WalkTrace(
            user="g",
            true_start=1,
            initial_fingerprint=Fingerprint.from_values([-50.0]),
            hops=[
                TraceHop(1, 2, segment, Fingerprint.from_values([-60.0]))
            ],
            placement_offset_estimate_deg=0.0,
            estimated_step_length_m=0.7,
        )
        restored = trace_from_dict(trace_to_dict(trace))
        np.testing.assert_allclose(
            restored.hops[0].imu.gyro_rates_dps, segment.gyro_rates_dps
        )

    def test_json_serializable(self, trace):
        text = json.dumps(trace_to_dict(trace))
        restored = trace_from_dict(json.loads(text))
        assert restored.true_locations == trace.true_locations

    def test_wrong_kind_rejected(self, trace):
        payload = trace_to_dict(trace)
        payload["kind"] = "nope"
        with pytest.raises(ValueError):
            trace_from_dict(payload)


class TestTraceSetRoundTrip:
    def test_set_round_trip(self, small_study):
        traces = small_study.test_traces[:3]
        restored = traces_from_dict(traces_to_dict(traces))
        assert len(restored) == 3
        for original, rebuilt in zip(traces, restored):
            assert rebuilt.true_locations == original.true_locations

    def test_evaluation_identical_after_round_trip(self, small_study, tmp_path):
        """The paper's experiments replay identically from exported data."""
        from repro.core.localizer import MoLocLocalizer

        traces = small_study.test_traces[:5]
        path = tmp_path / "traces.json"
        save_json(traces_to_dict(traces), path)
        restored = traces_from_dict(load_json(path))

        fdb = small_study.fingerprint_db(6)
        mdb, _ = small_study.motion_db(6)
        plan = small_study.scenario.plan
        before = evaluate_localizer(
            MoLocLocalizer(fdb, mdb, small_study.config), traces, plan
        )
        after = evaluate_localizer(
            MoLocLocalizer(fdb, mdb, small_study.config), restored, plan
        )
        np.testing.assert_allclose(before.errors, after.errors)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            traces_from_dict({"kind": "walk_trace", "format_version": 1})
