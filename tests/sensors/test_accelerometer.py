"""Tests for the synthetic accelerometer (Fig. 4 signature)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sensors.accelerometer import GRAVITY, AccelerometerModel


@pytest.fixture()
def model() -> AccelerometerModel:
    return AccelerometerModel()


class TestWalkingSignal:
    def test_sample_count(self, model, rng):
        signal = model.walking(5.0, 0.5, rng)
        assert len(signal.samples) == 50
        assert signal.duration_s == pytest.approx(5.0)

    def test_oscillates_around_gravity(self, model, rng):
        signal = model.walking(10.0, 0.5, rng)
        assert abs(float(signal.samples.mean()) - GRAVITY) < 0.5

    def test_fig4_magnitude_range(self, model, rng):
        """Fig. 4 shows magnitudes swinging roughly between 5 and 15."""
        signal = model.walking(10.0, 0.55, rng)
        assert 4.0 < float(signal.samples.min()) < 8.5
        assert 11.5 < float(signal.samples.max()) < 16.0

    def test_ground_truth_step_times(self, model, rng):
        signal = model.walking(5.5, 0.55, rng, start_phase_s=0.275)
        assert len(signal.true_step_times) == 10
        periods = np.diff(signal.true_step_times)
        assert np.allclose(periods, 0.55)

    def test_random_start_phase_within_period(self, model):
        for seed in range(5):
            signal = model.walking(3.0, 0.5, np.random.default_rng(seed))
            assert 0.0 <= signal.true_step_times[0] < 0.5

    def test_invalid_arguments(self, model, rng):
        with pytest.raises(ValueError):
            model.walking(0.0, 0.5, rng)
        with pytest.raises(ValueError):
            model.walking(3.0, -0.5, rng)

    def test_times_property(self, model, rng):
        signal = model.walking(1.0, 0.5, rng)
        assert signal.times[0] == 0.0
        assert signal.times[-1] == pytest.approx(0.9)

    @given(
        duration=st.floats(min_value=1.0, max_value=20.0),
        period=st.floats(min_value=0.4, max_value=0.7),
    )
    @settings(max_examples=25, deadline=None)
    def test_step_count_matches_duration(self, duration, period):
        model = AccelerometerModel()
        signal = model.walking(
            duration, period, np.random.default_rng(0), start_phase_s=period / 2
        )
        expected = len(np.arange(period / 2, duration, period))
        assert len(signal.true_step_times) == expected


class TestIdleSignal:
    def test_no_steps(self, model, rng):
        signal = model.idle(5.0, rng)
        assert len(signal.true_step_times) == 0

    def test_small_variance(self, model, rng):
        signal = model.idle(10.0, rng)
        assert float(signal.samples.std()) < 1.0
        assert abs(float(signal.samples.mean()) - GRAVITY) < 0.2

    def test_invalid_duration(self, model, rng):
        with pytest.raises(ValueError):
            model.idle(-1.0, rng)


class TestDeterminism:
    def test_same_rng_same_signal(self, model):
        a = model.walking(4.0, 0.5, np.random.default_rng(11), start_phase_s=0.1)
        b = model.walking(4.0, 0.5, np.random.default_rng(11), start_phase_s=0.1)
        np.testing.assert_array_equal(a.samples, b.samples)
