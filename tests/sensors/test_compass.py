"""Tests for the synthetic compass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import Point, bearing_difference
from repro.sensors.compass import CompassModel, MagneticDisturbanceField


class TestMagneticDisturbanceField:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MagneticDisturbanceField(-1.0, 2.0, rng)
        with pytest.raises(ValueError):
            MagneticDisturbanceField(3.0, 0.0, rng)

    def test_zero_std_is_flat(self, rng):
        field = MagneticDisturbanceField(0.0, 2.0, rng)
        assert field.value_at(Point(3, 4)) == 0.0

    def test_deterministic(self, rng):
        field = MagneticDisturbanceField(3.0, 2.0, rng)
        p = Point(5, 5)
        assert field.value_at(p) == field.value_at(p)

    def test_magnitude_plausible(self):
        field = MagneticDisturbanceField(
            3.0, 2.0, np.random.default_rng(1), n_components=128
        )
        sampler = np.random.default_rng(2)
        values = [
            field.value_at(Point(float(x), float(y)))
            for x, y in sampler.uniform(0, 100, size=(500, 2))
        ]
        assert 1.5 < float(np.std(values)) < 5.0


class TestCompassModel:
    def test_reading_normalized(self, rng):
        compass = CompassModel(noise_std_deg=0.0)
        reading = compass.read(350.0, Point(0, 0), rng)
        assert 0.0 <= reading < 360.0

    def test_noiseless_unbiased_reads_truth(self, rng):
        compass = CompassModel(device_bias_deg=0.0, noise_std_deg=0.0)
        assert compass.read(123.0, Point(0, 0), rng) == pytest.approx(123.0)

    def test_placement_offset_shifts_reading(self, rng):
        compass = CompassModel(noise_std_deg=0.0, placement_offset_deg=90.0)
        assert compass.read(10.0, Point(0, 0), rng) == pytest.approx(100.0)

    def test_device_bias_applied(self, rng):
        compass = CompassModel(device_bias_deg=-5.0, noise_std_deg=0.0)
        assert compass.read(10.0, Point(0, 0), rng) == pytest.approx(5.0)

    def test_noise_spread(self):
        compass = CompassModel(noise_std_deg=4.0)
        rng = np.random.default_rng(0)
        errors = [
            bearing_difference(compass.read(90.0, Point(0, 0), rng), 90.0)
            for _ in range(1000)
        ]
        # Mean absolute error of N(0, 4) is 4 * sqrt(2/pi) ~ 3.2 degrees.
        assert 2.5 < float(np.mean(errors)) < 4.0

    def test_disturbance_field_contributes(self, rng):
        field = MagneticDisturbanceField(10.0, 2.0, np.random.default_rng(3))
        compass = CompassModel(noise_std_deg=0.0, disturbance=field)
        a = compass.read(0.0, Point(1, 1), rng)
        expected = field.value_at(Point(1, 1)) % 360.0
        assert a == pytest.approx(expected)

    def test_mutable_grip(self, rng):
        compass = CompassModel(noise_std_deg=0.0)
        compass.placement_offset_deg = 45.0
        assert compass.read(0.0, Point(0, 0), rng) == pytest.approx(45.0)
