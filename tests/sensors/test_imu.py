"""Tests for the IMU assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import Point
from repro.sensors.accelerometer import AccelerometerModel
from repro.sensors.compass import CompassModel, MagneticDisturbanceField
from repro.sensors.imu import ImuModel


@pytest.fixture()
def imu() -> ImuModel:
    return ImuModel(
        accelerometer=AccelerometerModel(),
        compass=CompassModel(noise_std_deg=0.0),
    )


class TestRecordWalk:
    def test_streams_time_aligned(self, imu, rng):
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
        assert len(segment.compass_readings) == len(segment.accel.samples)
        assert segment.rate_hz == 10.0
        assert segment.duration_s == pytest.approx(3.0)

    def test_ground_truth_course_and_distance(self, imu, rng):
        segment = imu.record_walk(Point(0, 0), Point(0, 5), 4.0, 0.5, rng)
        assert segment.true_course_deg == pytest.approx(0.0)  # north
        assert segment.true_distance_m == pytest.approx(5.0)

    def test_noiseless_compass_reads_course(self, imu, rng):
        segment = imu.record_walk(Point(0, 0), Point(3, 3), 3.0, 0.5, rng)
        np.testing.assert_allclose(segment.compass_readings, 45.0)

    def test_invalid_duration(self, imu, rng):
        with pytest.raises(ValueError):
            imu.record_walk(Point(0, 0), Point(1, 0), 0.0, 0.5, rng)

    def test_coincident_endpoints_rejected(self, imu, rng):
        with pytest.raises(ValueError):
            imu.record_walk(Point(1, 1), Point(1, 1), 3.0, 0.5, rng)

    def test_disturbance_varies_along_path(self, rng):
        """Compass readings differ along a walk through a disturbance field."""
        field = MagneticDisturbanceField(8.0, 1.0, np.random.default_rng(4))
        imu = ImuModel(
            accelerometer=AccelerometerModel(),
            compass=CompassModel(noise_std_deg=0.0, disturbance=field),
        )
        segment = imu.record_walk(Point(0, 0), Point(20, 0), 15.0, 0.5, rng)
        assert float(np.ptp(segment.compass_readings)) > 0.5

    def test_accel_contains_steps(self, imu, rng):
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
        assert len(segment.accel.true_step_times) >= 5
