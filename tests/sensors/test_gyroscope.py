"""Tests for the synthetic gyroscope."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sensors.gyroscope import GyroscopeModel


class TestRecord:
    def test_tracks_true_rates(self, rng):
        gyro = GyroscopeModel(bias_dps=0.0, noise_std_dps=0.0)
        truth = [0.0, 10.0, -5.0]
        np.testing.assert_allclose(gyro.record(truth, rng), truth)

    def test_bias_added(self, rng):
        gyro = GyroscopeModel(bias_dps=2.0, noise_std_dps=0.0)
        np.testing.assert_allclose(gyro.record([0.0, 0.0], rng), [2.0, 2.0])

    def test_noise_statistics(self):
        gyro = GyroscopeModel(bias_dps=0.0, noise_std_dps=1.5)
        rng = np.random.default_rng(0)
        samples = gyro.record(np.zeros(3000), rng)
        assert abs(float(samples.mean())) < 0.1
        assert 1.3 < float(samples.std()) < 1.7

    def test_straight_walk_shape(self, rng):
        gyro = GyroscopeModel()
        assert gyro.record_straight_walk(30, rng).shape == (30,)

    def test_straight_walk_needs_samples(self, rng):
        with pytest.raises(ValueError):
            GyroscopeModel().record_straight_walk(0, rng)

    def test_straight_walk_rates_near_bias(self):
        gyro = GyroscopeModel(bias_dps=0.1, noise_std_dps=0.5)
        rng = np.random.default_rng(1)
        samples = gyro.record_straight_walk(2000, rng)
        assert abs(float(samples.mean()) - 0.1) < 0.1


class TestImuIntegration:
    def test_imu_records_gyro_when_present(self, rng):
        from repro.env.geometry import Point
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.compass import CompassModel
        from repro.sensors.imu import ImuModel

        imu = ImuModel(
            accelerometer=AccelerometerModel(),
            compass=CompassModel(),
            gyroscope=GyroscopeModel(),
        )
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
        assert segment.gyro_rates_dps is not None
        assert len(segment.gyro_rates_dps) == len(segment.compass_readings)

    def test_imu_without_gyro_records_none(self, rng):
        from repro.env.geometry import Point
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.compass import CompassModel
        from repro.sensors.imu import ImuModel

        imu = ImuModel(AccelerometerModel(), CompassModel())
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
        assert segment.gyro_rates_dps is None
