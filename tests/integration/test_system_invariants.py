"""Cross-cutting system invariants on the paper-scale study.

Relationships that must hold between the subsystems regardless of
seeds or calibration — the contracts the architecture rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import WiFiFingerprintingLocalizer
from repro.core.localizer import MoLocLocalizer
from repro.sim.evaluation import evaluate_localizer
from repro.sim.experiments import evaluate_systems


class TestInitialFixEquivalence:
    def test_moloc_first_fix_equals_wifi_nearest(self, small_study):
        """MoLoc's first fix is fingerprint-only (Sec. V): the Eq. 4
        argmax over the k nearest equals the Eq. 2 global nearest."""
        fdb = small_study.fingerprint_db(6)
        mdb, _ = small_study.motion_db(6)
        moloc = MoLocLocalizer(fdb, mdb, small_study.config)
        wifi = WiFiFingerprintingLocalizer(fdb)
        for trace in small_study.test_traces[:15]:
            moloc.reset()
            assert (
                moloc.locate(trace.initial_fingerprint).location_id
                == wifi.locate(trace.initial_fingerprint).location_id
            )


class TestApCountMonotonicity:
    def test_wifi_improves_with_aps(self, small_study):
        """More APs cannot hurt the baseline on aggregate (Fig. 7 trend)."""
        accuracies = [
            evaluate_systems(small_study, n)["wifi"].accuracy for n in (4, 5, 6)
        ]
        assert accuracies[0] <= accuracies[1] + 0.03
        assert accuracies[1] <= accuracies[2] + 0.03
        assert accuracies[0] < accuracies[2]

    def test_truncation_consistency(self, small_study):
        """A 4-AP query against the 4-AP database equals truncating both
        from 6 APs — the sweep machinery introduces no skew."""
        full = small_study.fingerprint_db(6)
        four = small_study.fingerprint_db(4)
        trace = small_study.test_traces[0]
        query6 = trace.initial_fingerprint
        assert four.nearest(query6.truncated(4)) == four.nearest(
            query6.truncated(4)
        )
        for lid in four.location_ids:
            assert (
                four.fingerprint_of(lid).rss
                == full.fingerprint_of(lid).rss[:4]
            )


class TestErrorSemantics:
    def test_zero_error_iff_accurate(self, small_study):
        results = evaluate_systems(small_study, 5)
        for result in results.values():
            for record in result.records:
                assert (record.error_m == 0.0) == record.is_accurate

    def test_errors_bounded_by_hall_diagonal(self, small_study):
        plan = small_study.scenario.plan
        diagonal = (plan.width**2 + plan.height**2) ** 0.5
        for result in evaluate_systems(small_study, 4).values():
            assert result.max_error_m <= diagonal


class TestEvidenceOrdering:
    def test_fused_beats_each_evidence_alone(self, small_study):
        """MoLoc (fused) beats RSS-only and motion-only at every AP count
        on the adequately trained study."""
        from repro.core.dead_reckoning import DeadReckoningLocalizer

        plan = small_study.scenario.plan
        for n_aps in (4, 5, 6):
            fdb = small_study.fingerprint_db(n_aps)
            mdb, _ = small_study.motion_db(n_aps)
            fused = evaluate_localizer(
                MoLocLocalizer(fdb, mdb, small_study.config),
                small_study.test_traces,
                plan,
            )
            rss_only = evaluate_localizer(
                WiFiFingerprintingLocalizer(fdb), small_study.test_traces, plan
            )
            motion_only = evaluate_localizer(
                DeadReckoningLocalizer(fdb, plan), small_study.test_traces, plan
            )
            assert fused.accuracy > rss_only.accuracy
            assert fused.accuracy > motion_only.accuracy

    def test_offline_never_below_online_minus_noise(self, small_study):
        from repro.core.smoothing import ViterbiSmoother
        from repro.sim.evaluation import evaluate_smoother

        plan = small_study.scenario.plan
        for n_aps in (4, 6):
            fdb = small_study.fingerprint_db(n_aps)
            mdb, _ = small_study.motion_db(n_aps)
            online = evaluate_localizer(
                MoLocLocalizer(fdb, mdb, small_study.config),
                small_study.test_traces,
                plan,
            )
            offline = evaluate_smoother(
                ViterbiSmoother(fdb, mdb, small_study.config),
                small_study.test_traces,
                plan,
            )
            assert offline.accuracy >= online.accuracy - 0.02


class TestMotionDbGraphConsistency:
    def test_database_pairs_are_mostly_aisle_hops(self, small_study):
        motion_db, _ = small_study.motion_db(6)
        graph = small_study.scenario.graph
        adjacent = sum(
            1 for i, j in motion_db.pairs if graph.are_adjacent(i, j)
        )
        assert adjacent / len(motion_db.pairs) > 0.95

    def test_offsets_match_graph_distances(self, small_study):
        motion_db, _ = small_study.motion_db(6)
        graph = small_study.scenario.graph
        for i, j in motion_db.pairs:
            if not graph.are_adjacent(i, j):
                continue
            entry = motion_db.entry(i, j)
            assert entry.offset_mean_m == pytest.approx(
                graph.hop_distance(i, j), abs=1.0
            )
