"""Golden-fixture tests: the full pipeline over generated worlds is frozen.

Three small generated environments (tower / mall / warehouse — the same
specs the matrix smoke profile sweeps) are committed as JSON fixtures.
For each, regenerating the world and re-running the full pipeline —
radio map survey, twin census, 8-session batched serving — must
reproduce the committed checksums bit for bit.  Any numerical drift in
the generator, the channel, the ambiguity analysis, or the serving
engine shows up here as a checksum mismatch; regenerate intentionally
with ``PYTHONPATH=src:tests/env python tests/env/generate_fixtures.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "env"))

from fixture_worlds import (  # noqa: E402
    FIXTURE_SPECS,
    build_record,
    fixture_path,
    load_fixture,
)

WORLDS = sorted(FIXTURE_SPECS)


@pytest.fixture(scope="module", params=WORLDS)
def world(request):
    """``(name, committed fixture, freshly rebuilt record)`` per world."""
    name = request.param
    assert fixture_path(name).exists(), (
        f"fixture {name}.json missing; run tests/env/generate_fixtures.py"
    )
    return name, load_fixture(name), build_record(name)


class TestGoldenWorlds:
    def test_environment_regenerates_bitwise(self, world):
        name, golden, rebuilt = world
        assert rebuilt["environment_checksum"] == golden["environment_checksum"]
        assert rebuilt["floorplan"] == golden["floorplan"]
        assert rebuilt["graph"] == golden["graph"]

    def test_radio_map_is_bitwise_stable(self, world):
        name, golden, rebuilt = world
        assert rebuilt["radio_map_checksum"] == golden["radio_map_checksum"]

    def test_twin_census_matches(self, world):
        name, golden, rebuilt = world
        assert rebuilt["twin_census"] == golden["twin_census"]
        # The golden worlds were chosen because they exhibit twins; a
        # twin-free regeneration means the RSS field changed.
        assert not rebuilt["twin_census"]["twin_free"]

    def test_serving_fix_streams_are_bitwise_stable(self, world):
        name, golden, rebuilt = world
        assert rebuilt["fix_checksum"] == golden["fix_checksum"], (
            f"world {name!r}: 8-session serving run diverged from the "
            "committed fix checksum"
        )

    def test_spec_on_disk_matches_source(self, world):
        name, golden, rebuilt = world
        assert rebuilt["spec"] == golden["spec"]
