"""Integration tests: the paper's headline claims, end to end.

These run MoLoc against the WiFi baseline on the shared (reduced-volume)
study and assert the *shape* of the paper's results:

* Sec. VI-B1 / Fig. 6 — the crowdsourced motion database is valid:
  direction and offset errors far below the sanitation thresholds, max
  offset error below a step length.
* Sec. VI-B2 / Fig. 7 — MoLoc substantially outperforms WiFi
  fingerprinting at every AP count; accuracy grows with AP count.
* Sec. VI-B3 / Fig. 8 — the improvement concentrates at the
  fingerprint-twin locations.
* Sec. VI-B4 / Table I — MoLoc converges after an erroneous initial
  estimate and is highly accurate afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.evaluation import ambiguous_location_ids, convergence_statistics
from repro.sim.experiments import (
    evaluate_systems,
    large_error_comparison,
    motion_database_errors,
)


class TestMotionDatabaseValidity:
    def test_direction_errors_small(self, small_study):
        directions, _, _ = motion_database_errors(small_study)
        assert float(np.median(directions)) < 6.0
        assert max(directions) < 20.0

    def test_offset_errors_below_step_length(self, small_study):
        """Paper: even the max offset error (0.46 m) is below a step."""
        _, offsets, _ = motion_database_errors(small_study)
        assert float(np.median(offsets)) < 0.35
        assert max(offsets) < 0.7

    def test_sanitation_keeps_spurious_pairs_rare(self, small_study):
        directions, _, spurious = motion_database_errors(small_study)
        assert spurious <= max(2, len(directions) // 10)

    def test_good_aisle_coverage(self, small_study):
        directions, _, _ = motion_database_errors(small_study)
        total_hops = len(small_study.scenario.graph.edge_list)
        assert len(directions) >= 0.8 * total_hops


class TestOverallAccuracy:
    @pytest.fixture(scope="class")
    def results_by_ap(self, small_study):
        return {
            n_aps: evaluate_systems(small_study, n_aps) for n_aps in (4, 5, 6)
        }

    def test_moloc_beats_wifi_at_every_ap_count(self, results_by_ap):
        for n_aps, results in results_by_ap.items():
            assert results["moloc"].accuracy > results["wifi"].accuracy, (
                f"MoLoc lost at {n_aps} APs"
            )

    def test_moloc_gain_is_large(self, results_by_ap):
        """Paper: MoLoc roughly doubles accuracy; require >= 1.3x here."""
        for results in results_by_ap.values():
            ratio = results["moloc"].accuracy / results["wifi"].accuracy
            assert ratio > 1.3

    def test_mean_error_reduced(self, results_by_ap):
        for results in results_by_ap.values():
            assert (
                results["moloc"].mean_error_m < results["wifi"].mean_error_m
            )

    def test_accuracy_grows_with_ap_count(self, results_by_ap):
        moloc = [results_by_ap[n]["moloc"].accuracy for n in (4, 5, 6)]
        wifi = [results_by_ap[n]["wifi"].accuracy for n in (4, 5, 6)]
        assert moloc[0] < moloc[2]
        assert wifi[0] < wifi[2]

    def test_moloc_sub_meter_mean_error_at_6_aps(self, results_by_ap):
        """Paper abstract: mean localization error below 1 m (6 APs)."""
        assert results_by_ap[6]["moloc"].mean_error_m < 1.5

    def test_motion_actually_used(self, results_by_ap):
        """Most non-initial fixes must have engaged motion matching."""
        records = results_by_ap[6]["moloc"].records
        non_initial = [r for r in records if not r.is_initial]
        used = sum(r.used_motion for r in non_initial)
        assert used / len(non_initial) > 0.9


class TestLargeErrorLocations:
    def test_fig8_improvement_concentrated_at_twins(self, small_study):
        errors, ambiguous = large_error_comparison(small_study, n_aps=5)
        assert ambiguous
        moloc_mean = float(errors["moloc"].mean())
        wifi_mean = float(errors["wifi"].mean())
        assert wifi_mean - moloc_mean > 1.0

    def test_twin_locations_match_known_geometry(self, small_study):
        """Ambiguous locations include center-line-mirrored pairs."""
        results = evaluate_systems(small_study, n_aps=4)
        ambiguous = ambiguous_location_ids(results["wifi"])
        # With 4 near-center-line APs, ambiguity is widespread at 4 APs.
        assert len(ambiguous) >= 4


class TestConvergence:
    def test_table1_shape(self, small_study):
        results = evaluate_systems(small_study, n_aps=6)
        moloc = convergence_statistics(results["moloc"])
        wifi = convergence_statistics(results["wifi"])
        # MoLoc needs no more erroneous fixes than WiFi before converging...
        assert (
            moloc.mean_erroneous_localizations
            <= wifi.mean_erroneous_localizations + 0.5
        )
        # ...and is far more accurate afterwards.
        assert moloc.accuracy > wifi.accuracy + 0.15
        assert moloc.mean_error_m < wifi.mean_error_m
