"""Gait subsystem end to end: bitwise-free when off, honest when attacked.

The contract the ``python -m repro gait`` gate enforces in CI, asserted
here at test scale:

* with ``speed_adaptive`` off (the default), serving a *mixed-gait*
  population batched is bitwise-identical to serving it sequentially —
  the subsystem costs zero bytes until enabled;
* session state carries the speed estimator only when enabled, and a
  checkpointed adaptive session resumes bitwise;
* a miscalibrated stride (``inject_step_length_bias``) surfaces as a
  proportional speed-estimate error rather than hiding;
* a spoofed IMU replaying a run-gait donor stride onto a slower victim
  is still vetoed by the heading-rate check, and the benched interval
  never reaches the speed estimator.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import MoLocConfig
from repro.motion.pedestrian import BodyProfile
from repro.robustness.health import FaultType
from repro.robustness.service import ResilientMoLocService
from repro.serving import (
    BatchedServingEngine,
    build_session_services,
    fix_stream_checksum,
    serve_batched,
    serve_sequential,
)
from repro.service import MoLocService
from repro.sim.adversary import inject_imu_spoof
from repro.sim.crowdsource import TraceGenerationConfig, generate_traces
from repro.sim.evaluation import multi_session_workload
from repro.sim.experiments import prepare_study
from repro.sim.failures import inject_step_length_bias
from repro.sim.gait import gait_trace_config

_N_APS = 6


@pytest.fixture(scope="module")
def gait_study():
    """A small study serving mixed-gait walkers from a paper-gait DB."""
    return prepare_study(
        seed=11,
        n_training_traces=24,
        n_test_traces=6,
        trace_config=gait_trace_config("paper-walk", n_hops=8),
        test_trace_config=gait_trace_config("mixed-gait", n_hops=8),
        samples_per_location=20,
        training_samples=12,
    )


def _service(study, config, trace, resilient=False):
    cls = ResilientMoLocService if resilient else MoLocService
    kwargs = {"plan": study.scenario.plan} if resilient else {}
    service = cls(
        study.fingerprint_db(_N_APS),
        study.motion_db(_N_APS)[0],
        body=BodyProfile(height_m=1.72),
        config=config,
        **kwargs,
    )
    service._stride.step_length_m = trace.estimated_step_length_m
    service.calibrate_heading(
        [
            (hop.imu.compass_readings, hop.imu.true_course_deg)
            for hop in trace.hops[:2]
        ]
    )
    return service


class TestDisabledPathIsBitwiseFree:
    def test_batched_equals_sequential_over_mixed_gait(self, gait_study):
        workload = multi_session_workload(
            gait_study.test_traces, 4, corpus_size=4, stagger_ticks=2
        )

        def services():
            return build_session_services(
                workload,
                gait_study.fingerprint_db(_N_APS),
                gait_study.motion_db(_N_APS)[0],
                gait_study.config,
                resilient=True,
                plan=gait_study.scenario.plan,
            )

        sequential = serve_sequential(workload, services())
        engine = BatchedServingEngine(
            gait_study.fingerprint_db(_N_APS),
            gait_study.motion_db(_N_APS)[0],
            gait_study.config,
        )
        batched = serve_batched(engine, workload, services())
        for session_id in workload.sessions:
            assert fix_stream_checksum(
                batched.fixes[session_id]
            ) == fix_stream_checksum(sequential.fixes[session_id]), session_id

    def test_adaptive_changes_the_mixed_gait_streams(self, gait_study):
        trace = gait_study.test_traces[0]
        fixed = _service(gait_study, gait_study.config, trace)
        adaptive = _service(
            gait_study,
            dataclasses.replace(gait_study.config, speed_adaptive=True),
            trace,
        )
        fixed_stream = [fixed.on_interval(trace.initial_fingerprint.rss)]
        adaptive_stream = [
            adaptive.on_interval(trace.initial_fingerprint.rss)
        ]
        for hop in trace.hops:
            fixed_stream.append(
                fixed.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            )
            adaptive_stream.append(
                adaptive.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            )
        assert adaptive.speed_estimator is not None
        assert adaptive.speed_estimator.samples > 0
        assert fixed.speed_estimator is None
        # The adaptive model actually steers scoring on this workload.
        assert fix_stream_checksum(adaptive_stream) != fix_stream_checksum(
            fixed_stream
        )


class TestSpeedStateInCheckpoints:
    def test_speed_key_present_only_when_enabled(self, gait_study):
        trace = gait_study.test_traces[0]
        fixed = _service(gait_study, gait_study.config, trace)
        adaptive = _service(
            gait_study,
            dataclasses.replace(gait_study.config, speed_adaptive=True),
            trace,
        )
        assert "speed" not in fixed.state_dict()
        assert "speed" in adaptive.state_dict()

    def test_restored_adaptive_session_resumes_bitwise(self, gait_study):
        config = dataclasses.replace(gait_study.config, speed_adaptive=True)
        trace = gait_study.test_traces[1]
        straight = _service(gait_study, config, trace)
        resumed = _service(gait_study, config, trace)
        straight.on_interval(trace.initial_fingerprint.rss)
        resumed.on_interval(trace.initial_fingerprint.rss)
        half = len(trace.hops) // 2
        for hop in trace.hops[:half]:
            straight.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            resumed.on_interval(hop.arrival_fingerprint.rss, hop.imu)
        clone = _service(gait_study, config, trace)
        clone.load_state_dict(resumed.state_dict())
        tail_straight, tail_clone = [], []
        for hop in trace.hops[half:]:
            tail_straight.append(
                straight.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            )
            tail_clone.append(
                clone.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            )
        assert fix_stream_checksum(tail_clone) == fix_stream_checksum(
            tail_straight
        )


class TestFaultsSurfaceHonestly:
    def test_step_length_bias_shows_up_as_speed_error(self, gait_study):
        """A wrong stride belief must surface, not hide, in the estimate."""
        config = dataclasses.replace(gait_study.config, speed_adaptive=True)
        walk_config = TraceGenerationConfig(n_hops=8, gait="walk")
        trace = generate_traces(
            gait_study.scenario,
            1,
            np.random.default_rng(5),
            config=walk_config,
        )[0]
        factor = 1.3

        def final_speed(served_trace):
            service = _service(gait_study, config, served_trace)
            service.on_interval(served_trace.initial_fingerprint.rss)
            for hop in served_trace.hops:
                service.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            return service.speed_estimator.speed_mps

        honest = final_speed(trace)
        biased = final_speed(inject_step_length_bias(trace, factor))
        true_speed = trace.hops[-1].true_speed_mps
        assert abs(honest - true_speed) < 0.25
        # The stride enters the speed sample twice (cadence scaling and
        # the length itself), so the bias amplifies to ~factor^2.
        assert biased > 1.4 * honest
        assert abs(biased - true_speed) > 4 * abs(honest - true_speed)

    def test_run_donor_replay_onto_slower_victim_still_caught(
        self, gait_study
    ):
        """Claiming a runner's stride does not smuggle speed evidence in."""
        config = dataclasses.replace(gait_study.config, speed_adaptive=True)
        stroll_config = TraceGenerationConfig(n_hops=8, gait="stroll")
        run_config = TraceGenerationConfig(n_hops=8, gait="run")
        rng = np.random.default_rng(9)
        victim = generate_traces(
            gait_study.scenario, 1, rng, config=stroll_config
        )[0]
        donor = generate_traces(
            gait_study.scenario, 1, rng, config=run_config
        )[0]
        # Graft the runner's accelerometer onto the spoofed tail: the
        # same compass oscillation the IMU spoof injector produces, with
        # a cross-gait donor stride instead of a same-trace hop.
        onset = 3
        spoofed = inject_imu_spoof(victim, onset)
        hops = list(spoofed.hops)
        for index in range(onset, len(hops)):
            hops[index] = dataclasses.replace(
                hops[index],
                imu=dataclasses.replace(
                    hops[index].imu, accel=donor.hops[0].imu.accel
                ),
            )
        attacked = dataclasses.replace(spoofed, hops=hops)

        service = _service(gait_study, config, attacked, resilient=True)
        service.on_interval(attacked.initial_fingerprint.rss)
        for hop in attacked.hops[:onset]:
            service.on_interval(hop.arrival_fingerprint.rss, hop.imu)
        samples_before = service.speed_estimator.samples
        spoof_faults = 0
        for hop in attacked.hops[onset:]:
            fix = service.on_interval(hop.arrival_fingerprint.rss, hop.imu)
            if FaultType.IMU_SPOOF in fix.health.faults:
                spoof_faults += 1
        # Every spoofed interval is vetoed, and none of them feed the
        # speed estimator — the runner's cadence never becomes evidence.
        assert spoof_faults == len(attacked.hops) - onset
        assert service.speed_estimator.samples == samples_before
