"""Integration tests: reproducibility of the full pipeline.

Every experiment must be a pure function of its seed — the property that
makes the benchmark harness's numbers reproducible run over run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MoLocConfig
from repro.sim.crowdsource import TraceGenerationConfig, generate_traces
from repro.sim.experiments import Study, evaluate_systems
from repro.sim.scenario import build_scenario


def _mini_study(seed: int) -> Study:
    scenario = build_scenario(
        seed=seed, samples_per_location=20, training_samples=14
    )
    config = TraceGenerationConfig(n_hops=8)
    training = generate_traces(
        scenario, 30, np.random.default_rng([seed, 10]), config=config
    )
    test = generate_traces(
        scenario,
        6,
        np.random.default_rng([seed, 11]),
        config=config,
        start_time_s=3600.0,
    )
    return Study(scenario=scenario, training_traces=training, test_traces=test)


class TestSeedDeterminism:
    def test_identical_seeds_identical_results(self):
        results_a = evaluate_systems(_mini_study(21), n_aps=5)
        results_b = evaluate_systems(_mini_study(21), n_aps=5)
        for name in ("moloc", "wifi"):
            errors_a = results_a[name].errors
            errors_b = results_b[name].errors
            np.testing.assert_array_equal(errors_a, errors_b)

    def test_different_seeds_differ(self):
        results_a = evaluate_systems(_mini_study(21), n_aps=5)
        results_b = evaluate_systems(_mini_study(22), n_aps=5)
        assert not np.array_equal(
            results_a["wifi"].errors, results_b["wifi"].errors
        )

    def test_motion_db_deterministic(self):
        db_a, report_a = _mini_study(33).motion_db(6)
        db_b, report_b = _mini_study(33).motion_db(6)
        assert db_a.pairs == db_b.pairs
        assert report_a.coarse_rejected == report_b.coarse_rejected
        for pair in db_a.pairs:
            ea, eb = db_a.entry(*pair), db_b.entry(*pair)
            assert ea.direction_mean_deg == eb.direction_mean_deg
            assert ea.offset_mean_m == eb.offset_mean_m

    def test_localizer_stateless_across_evaluations(self):
        """Evaluating twice on the same study gives identical results
        (the evaluator must reset per trace)."""
        study = _mini_study(44)
        first = evaluate_systems(study, n_aps=6)
        second = evaluate_systems(study, n_aps=6)
        np.testing.assert_array_equal(
            first["moloc"].errors, second["moloc"].errors
        )


def _adequate_study(seed: int) -> Study:
    """A study large enough for a well-covered motion database.

    The deliberately tiny ``_mini_study`` is fine for equality checks but
    under-trains the motion database (MoLoc degrades on sparse coverage),
    so the robustness check needs this size.
    """
    scenario = build_scenario(seed=seed)
    config = TraceGenerationConfig(n_hops=12)
    training = generate_traces(
        scenario, 100, np.random.default_rng([seed, 10]), config=config
    )
    test = generate_traces(
        scenario,
        8,
        np.random.default_rng([seed, 11]),
        config=config,
        start_time_s=3600.0,
    )
    return Study(scenario=scenario, training_traces=training, test_traces=test)


@pytest.mark.slow
class TestRobustnessAcrossSeeds:
    def test_moloc_wins_on_every_seed(self):
        """The headline result is not a single-seed artifact."""
        for seed in (101, 202, 303):
            results = evaluate_systems(_adequate_study(seed), n_aps=6)
            assert results["moloc"].accuracy > results["wifi"].accuracy, (
                f"MoLoc lost on seed {seed}"
            )

    def test_sparse_motion_db_is_the_known_failure_mode(self):
        """Documented limitation: with an under-trained motion database
        (here ~25% aisle coverage) MoLoc can do *worse* than plain WiFi —
        wrong pairs attract probability mass.  This guards the docs claim."""
        study = _mini_study(101)
        _, report = study.motion_db(6)
        assert report.pairs_stored < 20  # genuinely sparse
