"""Integration: the sanitation pipeline against adversarial contributors.

Crowdsourcing accepts data from anyone, including users whose sensors or
profiles are badly wrong.  These tests mix such contributors into the
training pool and check that the sanitized motion database — and the
localization accuracy built on it — holds up, which is the operational
promise of Sec. IV-B2's filtering.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.builder import MotionDatabaseBuilder
from repro.core.localizer import MoLocLocalizer
from repro.env.geometry import bearing_difference
from repro.sim.crowdsource import observations_from_traces
from repro.sim.evaluation import evaluate_localizer
from repro.sim.failures import inject_grip_shift, inject_step_length_bias


def _db_errors(motion_db, graph):
    directions, offsets = [], []
    for i, j in motion_db.pairs:
        if not graph.are_adjacent(i, j):
            continue
        entry = motion_db.entry(i, j)
        directions.append(
            bearing_difference(entry.direction_mean_deg, graph.hop_bearing(i, j))
        )
        offsets.append(abs(entry.offset_mean_m - graph.hop_distance(i, j)))
    return np.array(directions), np.array(offsets)


def _build_db(study, traces):
    observations = observations_from_traces(traces, study.fingerprint_db(6))
    builder = MotionDatabaseBuilder(study.scenario.plan, study.config)
    builder.add_observations(observations)
    return builder.build()


@pytest.fixture(scope="module")
def clean_errors(small_study):
    motion_db, _ = small_study.motion_db(6)
    return _db_errors(motion_db, small_study.scenario.graph)


class TestBadStepLengthContributor:
    def test_small_minority_absorbed(self, small_study, clean_errors):
        """One bad contributor in ten (step length believed 40% long) is
        absorbed: database offset errors stay near the clean level."""
        traces = list(small_study.training_traces)
        poisoned = [
            inject_step_length_bias(t, 1.4) if k % 10 == 0 else t
            for k, t in enumerate(traces)
        ]
        motion_db, _ = _build_db(small_study, poisoned)
        _, offsets = _db_errors(motion_db, small_study.scenario.graph)
        assert float(np.median(offsets)) < 0.45

    def test_large_minority_damage_bounded_by_coarse_gate(
        self, small_study, clean_errors
    ):
        """A third of the pool biased 40% long: the 1.4x offsets land
        *inside* the 3 m coarse gate (2.3 m off on 5.7 m hops), so they
        shift the means — but the gate bounds the shift well below both
        its own threshold and the hop length.  Sanitation trades a
        bounded bias for never discarding a plausible majority."""
        traces = list(small_study.training_traces)
        poisoned = [
            inject_step_length_bias(t, 1.4) if k % 3 == 0 else t
            for k, t in enumerate(traces)
        ]
        motion_db, report = _build_db(small_study, poisoned)
        _, offsets = _db_errors(motion_db, small_study.scenario.graph)
        threshold = small_study.config.coarse_offset_threshold_m
        assert float(offsets.max()) < threshold / 2.0
        assert report.coarse_rejected > 0

    def test_localization_survives(self, small_study):
        traces = list(small_study.training_traces)
        poisoned = [
            inject_step_length_bias(t, 1.4) if k % 3 == 0 else t
            for k, t in enumerate(traces)
        ]
        motion_db, _ = _build_db(small_study, poisoned)
        localizer = MoLocLocalizer(
            small_study.fingerprint_db(6), motion_db, small_study.config
        )
        result = evaluate_localizer(
            localizer, small_study.test_traces, small_study.scenario.plan
        )
        clean = small_study.motion_db(6)[0]
        clean_result = evaluate_localizer(
            MoLocLocalizer(
                small_study.fingerprint_db(6), clean, small_study.config
            ),
            small_study.test_traces,
            small_study.scenario.plan,
        )
        assert result.accuracy > clean_result.accuracy - 0.15


class TestSpunCompassContributor:
    def test_db_direction_quality_preserved(self, small_study, clean_errors):
        """A contributor who re-grips mid-walk (stale calibration, 120-deg
        rotation) contributes garbage directions; the coarse filter
        discards them wholesale."""
        traces = list(small_study.training_traces)
        poisoned = [
            inject_grip_shift(t, 1, 120.0) if k % 4 == 0 else t
            for k, t in enumerate(traces)
        ]
        motion_db, report = _build_db(small_study, poisoned)
        directions, _ = _db_errors(motion_db, small_study.scenario.graph)
        clean_directions, _ = clean_errors
        assert float(np.median(directions)) < float(
            np.median(clean_directions)
        ) + 2.0
        assert float(directions.max()) < 20.0
        # The rotated measurements mostly died at the coarse gate.
        clean_report = small_study.motion_db(6)[1]
        assert report.coarse_rejected > clean_report.coarse_rejected


class TestMassivePoisoning:
    def test_majority_poisoning_degrades_coverage_not_correctness(
        self, small_study
    ):
        """Even with 3 of 4 contributions rotated, surviving entries stay
        correct — sanitation trades coverage for correctness."""
        traces = list(small_study.training_traces)
        poisoned = [
            inject_grip_shift(t, 1, 150.0) if k % 4 != 0 else t
            for k, t in enumerate(traces)
        ]
        motion_db, _ = _build_db(small_study, poisoned)
        directions, offsets = _db_errors(motion_db, small_study.scenario.graph)
        if len(directions):
            assert float(np.median(directions)) < 10.0
        # Coverage may shrink but correctness of what remains holds.
        clean_db, _ = small_study.motion_db(6)
        assert len(motion_db) <= len(clean_db) + 5
