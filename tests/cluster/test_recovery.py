"""Supervised recovery: a killed worker is invisible in the fix stream.

The invariant under test everywhere here: kill a shard's worker at any
point — between ticks, mid-conversation, by real ``SIGKILL`` — and the
cluster's merged fix streams stay bitwise identical to a kill-free run,
because the respawned worker rebuilds itself from checkpoint + WAL and
answers re-deliveries idempotently.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosHarness, FaultKind, FaultPlan, FaultSpec
from repro.cluster import (
    ClusterChaosHarness,
    ClusterWireError,
    ProcessShard,
    ShardDown,
    fresh_session_entry,
)
from repro.serving import BatchedServingEngine, build_session_services
from repro.serving.checkpoint import event_to_dict

from cluster_helpers import (
    admit_workload_sessions,
    checksums,
    events_of,
    make_cluster,
    make_shards,
    run_cluster,
)


def _kill_plan(workload, ticks=(3, 6)):
    victims = sorted(workload.sessions)[: len(ticks)]
    return FaultPlan(
        [
            FaultSpec(tick=tick, session_id=victim, kind=FaultKind.WORKER_KILL)
            for tick, victim in zip(ticks, victims)
        ]
    )


def test_local_worker_kills_are_bitwise_invisible(
    world, baseline_fixes, tmp_path
):
    workload = world[3]
    plan = _kill_plan(workload)
    coordinator = make_cluster(world, tmp_path, 2)
    harness = ClusterChaosHarness(coordinator, plan)
    fixes = run_cluster(coordinator, workload, harness=harness)
    snapshot = coordinator.metrics_snapshot()
    coordinator.shutdown()

    assert checksums(fixes) == checksums(baseline_fixes)
    counters = snapshot["coordinator"]["counters"]
    assert counters["chaos.injected.worker-kill"] == len(plan)
    assert counters["cluster.recoveries"] == len(plan)
    # Accounting: every scheduled fault landed in injected or skipped.
    injected = sum(
        value
        for name, value in counters.items()
        if name.startswith("chaos.injected.")
    )
    assert injected + counters["chaos.skipped"] == len(plan)


def test_kills_compose_with_message_faults(world, baseline_fixes, tmp_path):
    """A storm mixing kills with transport faults still degrades loudly.

    Untouched sessions stay bitwise identical to the single-engine
    baseline; the storm's faults land on the cluster exactly as the
    engine-level harness would land them (same seeded corruption, same
    redelivery bookkeeping).
    """
    workload = world[3]
    sessions = sorted(workload.sessions)
    # Message-fault victims must actually be in the faulted tick's batch
    # (a miss is counted skipped, not injected), so pick them from it.
    drop_victim = sorted({i.session_id for i in workload.ticks[1]})[0]
    dup_victim = next(
        sid
        for sid in sorted({i.session_id for i in workload.ticks[3]})
        if sid != drop_victim
    )
    plan = FaultPlan(
        [
            FaultSpec(
                tick=2, session_id=drop_victim, kind=FaultKind.DROP_MESSAGE
            ),
            FaultSpec(
                tick=3, session_id=sessions[0], kind=FaultKind.WORKER_KILL
            ),
            FaultSpec(
                tick=4,
                session_id=dup_victim,
                kind=FaultKind.DUPLICATE_MESSAGE,
            ),
        ]
    )
    coordinator = make_cluster(world, tmp_path, 2)
    harness = ClusterChaosHarness(coordinator, plan)
    fixes = run_cluster(coordinator, workload, harness=harness)
    snapshot = coordinator.metrics_snapshot()
    coordinator.shutdown()

    baseline = checksums(baseline_fixes)
    touched = {drop_victim, dup_victim}
    untouched = {
        session_id: stream
        for session_id, stream in fixes.items()
        if session_id not in touched
    }
    for session_id, checksum in checksums(untouched).items():
        assert checksum == baseline[session_id], session_id
    # The storm's marks on the touched streams: the dropped event is
    # simply missing, and the duplicate's late redelivery was dropped
    # as stale (a None slot), never served twice.
    assert len(fixes[drop_victim]) == len(baseline_fixes[drop_victim]) - 1
    assert fixes[dup_victim][-1] is None
    counters = snapshot["coordinator"]["counters"]
    assert counters["chaos.injected.worker-kill"] == 1
    assert counters["chaos.injected.drop-message"] == 1
    assert counters["chaos.injected.duplicate-message"] == 1


def test_redelivery_after_kill_replays_idempotently(world, tmp_path):
    """Re-sending the tick a dead worker already served is answered
    bitwise-identically from the duplicate cache, without clock drift —
    the exact exchange a supervisor performs when a worker dies after
    serving but before acknowledging."""
    fingerprint_db, motion_db, config, workload = world
    shard = make_shards(world, tmp_path, 1)[0]
    services = build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )
    for session_id in sorted(services):
        shard.request(
            {
                "op": "add_session",
                "entry": fresh_session_entry(session_id, services[session_id]),
            }
        )
    last_request, last_reply = None, None
    for tick_index, tick in enumerate(workload.ticks[:3], start=1):
        last_request = {
            "op": "tick",
            "tick": tick_index,
            "events": [event_to_dict(event) for event in events_of(tick)],
        }
        last_reply = shard.request(last_request)
        assert last_reply["replayed"] is False

    shard.kill()
    with pytest.raises(ShardDown):
        shard.request({"op": "ping"})
    shard.respawn()
    ping = shard.request({"op": "ping"})
    assert ping["recovered"] is True
    assert ping["tick"] == 3  # WAL replay caught the worker back up

    redelivered = shard.request(last_request)
    assert redelivered["replayed"] is True
    assert redelivered["tick"] == 3
    # Bitwise-identical fixes, now attributed to the duplicate cache:
    # the replay answered every event idempotently instead of re-serving.
    assert redelivered["outcome"]["fixes"] == last_reply["outcome"]["fixes"]
    assert sorted(redelivered["outcome"]["duplicates"]) == sorted(
        last_reply["outcome"]["served"]
    )
    assert redelivered["outcome"]["served"] == []

    # And the clock didn't drift: the next tick serves normally.
    next_request = {
        "op": "tick",
        "tick": 4,
        "events": [
            event_to_dict(event) for event in events_of(workload.ticks[3])
        ],
    }
    reply = shard.request(next_request)
    assert reply["replayed"] is False
    assert reply["tick"] == 4

    # Anything but the current or next tick is refused loudly.
    with pytest.raises(ClusterWireError, match="cannot serve"):
        shard.request({"op": "tick", "tick": 2, "events": []})
    shard.shutdown()


def test_engine_harness_counts_worker_kill_as_skipped(world):
    """The single-engine harness has no worker to kill; a plan that
    schedules one against it must surface as skipped, preserving the
    injected+skipped==scheduled invariant across both harnesses."""
    fingerprint_db, motion_db, config, workload = world
    engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    services = build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    victim = sorted(workload.sessions)[0]
    plan = FaultPlan(
        [FaultSpec(tick=1, session_id=victim, kind=FaultKind.WORKER_KILL)]
    )
    harness = ChaosHarness(engine, plan)
    harness.tick_detailed(events_of(workload.ticks[0]))
    counters = harness.metrics.snapshot()["counters"]
    assert counters["chaos.skipped"] == 1
    assert counters["chaos.injected.worker-kill"] == 0


@pytest.mark.slow
def test_process_shard_sigkill_recovers_bitwise(
    world, baseline_fixes, tmp_path
):
    """A real SIGKILL mid-run: the supervisor respawns the child from a
    cold interpreter and the merged streams stay bitwise identical."""
    workload = world[3]
    coordinator = make_cluster(world, tmp_path, 2, transport=ProcessShard)
    state = {"killed": False}

    def kill_once(coord):
        if coord.tick_index == 3 and not state["killed"]:
            next(iter(coord.shards.values())).kill()
            state["killed"] = True

    fixes = run_cluster(coordinator, workload, on_tick=kill_once)
    snapshot = coordinator.metrics_snapshot()
    coordinator.shutdown()

    assert state["killed"]
    assert checksums(fixes) == checksums(baseline_fixes)
    assert snapshot["coordinator"]["counters"]["cluster.recoveries"] == 1


def test_admission_pump_feeds_the_cluster(world, baseline_fixes, tmp_path):
    """The cluster drains the same front-door queue the engine does,
    and an unconfigured coordinator refuses to pump."""
    from repro.cluster import ClusterCoordinator
    from repro.serving.admission import AdmissionController

    fingerprint_db, motion_db, config, workload = world
    admission = AdmissionController(capacity=4 * len(workload.sessions))
    coordinator = ClusterCoordinator(
        make_shards(world, tmp_path, 2), admission=admission
    )
    admit_workload_sessions(coordinator, world)
    fixes = {sid: [] for sid in workload.sessions}
    for tick in workload.ticks:
        events = events_of(tick)
        for event in events:
            assert admission.offer(event)
        outcome = coordinator.pump()
        for event, fix in zip(events, outcome.fixes):
            fixes[event.session_id].append(fix)
    coordinator.shutdown()
    assert checksums(fixes) == checksums(baseline_fixes)

    bare_dir = tmp_path / "bare"
    bare_dir.mkdir()
    bare = make_cluster(world, bare_dir, 1)
    try:
        with pytest.raises(ValueError, match="no admission controller"):
            bare.pump()
    finally:
        bare.shutdown()
