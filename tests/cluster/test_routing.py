"""Rendezvous routing: pure, order-invariant, minimally disruptive.

The properties a cluster's correctness hangs on: the same
``(session_id, shard_ids)`` always routes the same way in any process
(so coordinator, supervisor, and tests agree independently), and
growing the cluster by one shard moves only the sessions whose new
winner *is* the new shard — an expected 1/(N+1) of them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardRouter, rendezvous_shard

session_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)
shard_id_lists = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)


class TestValidation:
    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError, match="no shards"):
            rendezvous_shard("user-0000", [])
        with pytest.raises(ValueError, match="at least one"):
            ShardRouter([])

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rendezvous_shard("user-0000", ["a", "b", "a"])
        with pytest.raises(ValueError, match="duplicate"):
            ShardRouter(["a", "b", "a"])

    def test_single_shard_routes_everything_to_it(self):
        router = ShardRouter(["only"])
        assert router.route("user-0000") == "only"
        assert router.route("user-9999") == "only"


class TestPurity:
    @settings(deadline=None)
    @given(session_id=session_ids, shard_ids=shard_id_lists)
    def test_route_is_pure_in_its_arguments(self, session_id, shard_ids):
        first = rendezvous_shard(session_id, shard_ids)
        second = rendezvous_shard(session_id, shard_ids)
        assert first == second
        assert first in shard_ids

    @settings(deadline=None)
    @given(
        session_id=session_ids,
        shard_ids=shard_id_lists,
        data=st.data(),
    )
    def test_route_ignores_shard_listing_order(
        self, session_id, shard_ids, data
    ):
        shuffled = data.draw(st.permutations(shard_ids))
        assert rendezvous_shard(session_id, shard_ids) == rendezvous_shard(
            session_id, shuffled
        )
        assert ShardRouter(shard_ids).route(session_id) == ShardRouter(
            shuffled
        ).route(session_id)

    def test_assignments_partition_the_sessions(self):
        router = ShardRouter([f"shard-{i}" for i in range(3)])
        sessions = [f"user-{i:04d}" for i in range(64)]
        groups = router.assignments(sessions)
        assert sorted(groups) == sorted(router.shard_ids)
        flattened = [sid for group in groups.values() for sid in group]
        assert sorted(flattened) == sorted(sessions)
        for shard_id, group in groups.items():
            assert all(router.route(sid) == shard_id for sid in group)


class TestResizeStability:
    @settings(deadline=None)
    @given(session_id=session_ids, n_shards=st.integers(1, 8))
    def test_growing_moves_sessions_only_onto_the_new_shard(
        self, session_id, n_shards
    ):
        old = [f"shard-{i}" for i in range(n_shards)]
        before = rendezvous_shard(session_id, old)
        after = rendezvous_shard(session_id, old + ["shard-new"])
        assert after == before or after == "shard-new"

    @pytest.mark.parametrize("n_shards", (1, 2, 4, 7))
    def test_growth_moves_about_one_in_n_plus_one(self, n_shards):
        """On a fixed 2000-session population the moved fraction is ~1/(N+1).

        The bound allows five binomial standard deviations of slack, so
        the test is deterministic (the population is fixed) yet would
        catch any systematic routing bias.
        """
        sessions = [f"user-{i:04d}" for i in range(2000)]
        old = ShardRouter([f"shard-{i}" for i in range(n_shards)])
        new = ShardRouter(
            [f"shard-{i}" for i in range(n_shards)] + ["shard-new"]
        )
        moved = old.moved_sessions(new, sessions)
        expected = 1.0 / (n_shards + 1)
        slack = 5.0 * (expected * (1.0 - expected) / len(sessions)) ** 0.5
        assert len(moved) / len(sessions) <= expected + slack
        assert all(there == "shard-new" for _, there in moved.values())

    def test_moved_sessions_matches_per_session_routing(self):
        sessions = [f"user-{i:04d}" for i in range(128)]
        old = ShardRouter(["shard-0", "shard-1", "shard-2"])
        new = ShardRouter(["shard-0", "shard-1"])
        moved = old.moved_sessions(new, sessions)
        for session_id in sessions:
            here, there = old.route(session_id), new.route(session_id)
            if here != there:
                assert moved[session_id] == (here, there)
            else:
                assert session_id not in moved
