"""The cluster wire format and the worker's message protocol.

Every byte that crosses a shard boundary is versioned JSON; these tests
pin the version handshake, the outcome serialization, and the worker's
never-raise error discipline.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    WIRE_FORMAT_VERSION,
    ClusterWireError,
    decode_message,
    encode_message,
    outcome_from_dict,
    outcome_to_dict,
)
from repro.serving.engine import SessionFault, TickOutcome

from cluster_helpers import make_shards


class TestEnvelope:
    def test_round_trip_stamps_the_version(self):
        line = encode_message({"op": "ping", "payload": [1, 2.5, None]})
        decoded = decode_message(line)
        assert decoded["v"] == WIRE_FORMAT_VERSION
        assert decoded["op"] == "ping"
        assert decoded["payload"] == [1, 2.5, None]

    def test_undecodable_json_rejected(self):
        with pytest.raises(ClusterWireError, match="undecodable"):
            decode_message("{not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ClusterWireError, match="JSON object"):
            decode_message(json.dumps([1, 2, 3]))

    @pytest.mark.parametrize("version", (None, 0, 2, "1"))
    def test_wrong_wire_version_rejected(self, version):
        document = {"op": "ping", "v": version}
        with pytest.raises(ClusterWireError, match="wire version"):
            decode_message(json.dumps(document))

    def test_floats_survive_bit_exactly(self):
        values = [0.1, 1e-300, 3.141592653589793, -0.0]
        decoded = decode_message(encode_message({"values": values}))
        assert [value.hex() for value in decoded["values"]] == [
            value.hex() for value in values
        ]


class TestOutcomeSerialization:
    def test_round_trip_preserves_alignment_and_faults(self):
        fault = SessionFault(
            session_id="user-0001",
            phase="serve",
            error="ValueError('boom')",
            strikes=2,
            action="quarantine",
            backoff_ticks=4,
        )
        outcome = TickOutcome(
            fixes=[None, None],
            served=(),
            faulted=(fault,),
            quarantined=("user-0002",),
            duplicates=("user-0003",),
            stale=("user-0004",),
            shed=("user-0005",),
            evicted=("user-0006",),
            unroutable=("user-0007",),
        )
        # Force the document through real JSON, as a pipe would.
        document = json.loads(json.dumps(outcome_to_dict(outcome)))
        rebuilt = outcome_from_dict(document)
        assert rebuilt.fixes == [None, None]
        assert rebuilt.faulted == (fault,)
        assert rebuilt.quarantined == ("user-0002",)
        assert rebuilt.duplicates == ("user-0003",)
        assert rebuilt.stale == ("user-0004",)
        assert rebuilt.shed == ("user-0005",)
        assert rebuilt.evicted == ("user-0006",)
        assert rebuilt.unroutable == ("user-0007",)


class TestWorkerProtocol:
    def test_malformed_line_answers_instead_of_raising(
        self, world, tmp_path
    ):
        shard = make_shards(world, tmp_path, 1)[0]
        worker = shard._worker
        reply = decode_message(worker.handle_line("{not json"))
        assert reply["ok"] is False
        assert "undecodable" in reply["error"]
        # The worker survived; a well-formed request still works.
        assert shard.request({"op": "ping"})["shard_id"] == "shard-0"
        shard.shutdown()

    def test_unknown_op_is_a_wire_error(self, world, tmp_path):
        shard = make_shards(world, tmp_path, 1)[0]
        with pytest.raises(ClusterWireError, match="unknown cluster op"):
            shard.request({"op": "frobnicate"})
        shard.shutdown()

    def test_out_of_sequence_tick_rejected(self, world, tmp_path):
        shard = make_shards(world, tmp_path, 1)[0]
        with pytest.raises(ClusterWireError, match="cannot serve"):
            shard.request({"op": "tick", "tick": 9, "events": []})
        shard.shutdown()

    def test_ping_reports_identity_and_clock(self, world, tmp_path):
        shard = make_shards(world, tmp_path, 1)[0]
        reply = shard.request({"op": "ping"})
        assert reply["shard_id"] == "shard-0"
        assert reply["tick"] == 0
        assert reply["sessions"] == []
        assert reply["recovered"] is False
        shard.shutdown()
