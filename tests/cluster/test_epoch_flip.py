"""Two-phase epoch flips over the cluster: atomic, idempotent, durable.

The contract: :meth:`ClusterCoordinator.advance_epoch` moves *every*
shard to the next database epoch or none of them, a flip mid-workload
is bitwise invisible relative to the single-engine epochal run, an
interrupted flip (coordinator death between phases, or a worker killed
after prepare) completes idempotently, and a tampered retry — the same
target epoch with a *different* batch — is refused.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterWireError, LocalShard, shard_spec
from repro.db.epochs import (
    ApRepowered,
    DriftDelta,
    EpochalDatabase,
    apply_updates,
    database_checksum,
    update_to_dict,
)
from repro.serving import BatchedServingEngine, build_session_services

from cluster_helpers import checksums, events_of, make_cluster, run_cluster


@pytest.fixture(scope="module")
def updates(world):
    fingerprint_db, _, _, _ = world
    return [
        ApRepowered(ap_id=0, shift_db=-6.0),
        DriftDelta(offsets_db=(1.0,) * fingerprint_db.n_aps),
    ]


@pytest.fixture(scope="module")
def flip_tick(world):
    _, _, _, workload = world
    return len(workload.ticks) // 2


@pytest.fixture(scope="module")
def epochal_baseline_fixes(world, updates, flip_tick):
    """Single-engine epochal run with the mid-workload flip: the yardstick."""
    fingerprint_db, motion_db, config, workload = world
    engine = BatchedServingEngine(
        EpochalDatabase(fingerprint_db), motion_db, config
    )
    services = build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    fixes = {sid: [] for sid in workload.sessions}
    for index, tick in enumerate(workload.ticks):
        if index == flip_tick:
            engine.advance_epoch(updates)
        events = events_of(tick)
        for event, fix in zip(events, engine.tick(events)):
            fixes[event.session_id].append(fix)
    assert engine.epoch_id == 1
    return fixes


def _flip_before_tick(flip_tick, updates):
    state = {"tick": 0}

    def hook(coordinator):
        if state["tick"] == flip_tick:
            coordinator.advance_epoch(updates)
        state["tick"] += 1

    return hook


class TestMidRunFlip:
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_flip_is_bitwise_identical_to_the_single_engine(
        self, world, updates, flip_tick, epochal_baseline_fixes,
        tmp_path, n_shards,
    ):
        _, _, _, workload = world
        coordinator = make_cluster(world, tmp_path, n_shards, epochal=True)
        fixes = run_cluster(
            coordinator,
            workload,
            on_tick=_flip_before_tick(flip_tick, updates),
        )
        status = coordinator.epoch_status()
        snapshot = coordinator.metrics_snapshot()
        coordinator.shutdown()
        assert checksums(fixes) == checksums(epochal_baseline_fixes)
        assert set(status.values()) == {1}
        counters = snapshot["coordinator"]["counters"]
        assert counters["cluster.epoch_flips"] == 1
        assert counters.get("cluster.epoch_aborts", 0) == 0

    def test_flip_result_checksum_matches_local_staging(
        self, world, updates, tmp_path
    ):
        """The committed checksum is exactly what local compaction gives."""
        fingerprint_db, _, _, _ = world
        coordinator = make_cluster(world, tmp_path, 2, epochal=True)
        result = coordinator.advance_epoch(updates)
        status = coordinator.epoch_status()
        coordinator.shutdown()
        assert result == {
            "epoch": 1,
            "checksum": database_checksum(
                apply_updates(fingerprint_db, updates)
            ),
        }
        assert status == {
            shard_id: 1 for shard_id in status
        } and len(status) == 2


class TestFrozenCluster:
    def test_epoch_ops_are_refused_and_counted(self, world, updates, tmp_path):
        coordinator = make_cluster(world, tmp_path, 2)  # no epochal=True
        # Status still answers (epoch 0, not epochal) ...
        assert set(coordinator.epoch_status().values()) == {0}
        # ... but a flip is refused shard-side, loudly.
        with pytest.raises(ClusterWireError, match="frozen database"):
            coordinator.advance_epoch(updates)
        snapshot = coordinator.metrics_snapshot()
        coordinator.shutdown()
        counters = snapshot["coordinator"]["counters"]
        assert counters["cluster.epoch_aborts"] == 1
        assert counters.get("cluster.epoch_flips", 0) == 0


def _commit_on_one_shard(coordinator, updates, target=1):
    """Simulate a coordinator killed between prepare and commit."""
    serialized = [update_to_dict(update) for update in updates]
    first = coordinator.router.shard_ids[0]
    shard = coordinator.shards[first]
    staged = shard.request(
        {"op": "epoch_prepare", "target": target, "updates": serialized}
    )
    shard.request(
        {
            "op": "epoch_commit",
            "target": target,
            "checksum": staged["checksum"],
            "updates": serialized,
        }
    )
    return first


class TestInterruptedFlip:
    def test_same_batch_completes_the_flip(self, world, updates, tmp_path):
        coordinator = make_cluster(world, tmp_path, 2, epochal=True)
        committed = _commit_on_one_shard(coordinator, updates)
        split = coordinator.epoch_status()
        assert split[committed] == 1
        assert sorted(split.values()) == [0, 1]

        result = coordinator.advance_epoch(updates)
        status = coordinator.epoch_status()
        coordinator.shutdown()
        # Completion, not a second flip: the target is the epoch the
        # leader already committed, and everyone lands on it.
        assert result["epoch"] == 1
        assert set(status.values()) == {1}

    def test_a_different_batch_is_refused(self, world, updates, tmp_path):
        coordinator = make_cluster(world, tmp_path, 2, epochal=True)
        _commit_on_one_shard(coordinator, updates)
        with pytest.raises(ValueError, match="disagreed on contents"):
            coordinator.advance_epoch([ApRepowered(ap_id=1, shift_db=3.0)])
        # The abort left the split untouched; the honest batch heals it.
        assert sorted(coordinator.epoch_status().values()) == [0, 1]
        result = coordinator.advance_epoch(updates)
        snapshot = coordinator.metrics_snapshot()
        status = coordinator.epoch_status()
        coordinator.shutdown()
        assert result["epoch"] == 1
        assert set(status.values()) == {1}
        counters = snapshot["coordinator"]["counters"]
        assert counters["cluster.epoch_aborts"] == 1
        assert counters["cluster.epoch_flips"] == 1


class TestKillDuringFlip:
    def test_worker_killed_after_prepare_commits_on_respawn(
        self, world, updates, tmp_path
    ):
        """Prepare everywhere, kill a worker, then drive the flip: the
        supervised respawn lost its staged snapshot, so the commit's
        carried batch re-stages it — and the flip still lands on every
        shard with one recovery on the books."""
        coordinator = make_cluster(world, tmp_path, 2, epochal=True)
        serialized = [update_to_dict(update) for update in updates]
        for shard in coordinator.shards.values():
            shard.request(
                {"op": "epoch_prepare", "target": 1, "updates": serialized}
            )
        coordinator.shards[coordinator.router.shard_ids[0]].kill()

        result = coordinator.advance_epoch(updates)
        status = coordinator.epoch_status()
        snapshot = coordinator.metrics_snapshot()

        # The flipped cluster still serves.
        _, _, _, workload = world
        events = events_of(workload.ticks[0])
        outcome = coordinator.tick_detailed(events)
        coordinator.shutdown()

        assert result["epoch"] == 1
        assert set(status.values()) == {1}
        assert len(outcome.fixes) == len(events)
        counters = snapshot["coordinator"]["counters"]
        assert counters["cluster.recoveries"] == 1
        assert counters["cluster.epoch_flips"] == 1


class TestReshardAfterFlip:
    def test_new_shard_joins_at_the_served_epoch(
        self, world, updates, tmp_path
    ):
        """A shard added after N flips must serve epoch N, not its
        spec's epoch 0 — migrated sessions land on the database they
        left."""
        fingerprint_db, motion_db, config, _ = world
        coordinator = make_cluster(world, tmp_path, 2, epochal=True)
        coordinator.advance_epoch(updates)
        joiner = LocalShard(
            shard_spec(
                "shard-2",
                fingerprint_db,
                motion_db,
                config,
                wal_path=tmp_path / "shard-2.wal",
                checkpoint_path=tmp_path / "shard-2.ckpt",
                epochal=True,
            )
        )
        coordinator.reshard(list(coordinator.shards.values()) + [joiner])
        status = coordinator.epoch_status()
        reply = coordinator.shards["shard-2"].request({"op": "epoch_status"})
        coordinator.shutdown()
        assert status["shard-2"] == 1
        assert set(status.values()) == {1}
        assert reply["epochal"] and reply["snapshot"]["epoch_id"] == 1
