"""Wedged workers: alive-but-stuck children must escalate, not hang.

The bug this closes: :meth:`ProcessShard._recv`'s poll timeout raised
``ShardDown`` but left the stuck child *running*, and ``respawn()``
refuses to replace a live process — so the supervisor's
respawn-and-redeliver path deadlocked on the one failure mode it was
built for.  The fix kills the wedged child on receive timeout, which
turns "wedged" into "dead" and lets the ordinary supervised recovery
(respawn from checkpoint + WAL, redeliver, idempotent replay) finish
the tick.
"""

from __future__ import annotations

import os
import signal

import pytest
from cluster_helpers import checksums, make_cluster, run_cluster

from repro.cluster import ProcessShard, ShardDown
from repro.cluster.core import supervised_request


def test_receive_timeout_validation():
    with pytest.raises(ValueError, match="receive_timeout_s"):
        ProcessShard({"shard_id": "s0"}, start=False, receive_timeout_s=0.0)


@pytest.mark.slow
def test_wedged_worker_is_killed_and_recovered(world, tmp_path):
    """SIGSTOP a child mid-conversation: the supervisor must not hang.

    The stopped child never answers, so the receive times out; the
    transport must escalate by killing it (making ``is_alive`` false)
    so the standard respawn-and-redeliver recovery applies — and the
    redelivered request is answered by the recovered worker.
    """
    coordinator = make_cluster(
        world,
        tmp_path,
        1,
        transport=ProcessShard,
        transport_kwargs={"receive_timeout_s": 2.0},
    )
    try:
        shard = next(iter(coordinator.shards.values()))
        assert shard.receive_timeout_s == 2.0
        os.kill(shard._process.pid, signal.SIGSTOP)

        with pytest.raises(ShardDown, match="wedged"):
            shard.request({"op": "ping"})
        # The escalation killed the child: the shard now reads as dead,
        # which is exactly what respawn() requires.
        assert not shard.is_alive()

        reply, recovered = supervised_request(shard, {"op": "ping"})
        assert recovered
        assert reply["recovered"]
        assert shard.is_alive()
    finally:
        coordinator.shutdown()


@pytest.mark.slow
def test_cluster_tick_survives_a_wedge_bitwise(world, tmp_path, baseline_fixes):
    """A mid-run wedge is as invisible as a mid-run kill.

    The coordinator's supervised tick path turns the receive timeout
    into respawn-and-redeliver; the recovered worker replays the
    redelivered tick idempotently, so the full run's fix streams stay
    bitwise equal to the single engine's.
    """
    _, _, _, workload = world
    coordinator = make_cluster(
        world,
        tmp_path,
        2,
        transport=ProcessShard,
        transport_kwargs={"receive_timeout_s": 3.0},
    )
    wedged = {"done": False}

    def wedge_once(coord):
        if not wedged["done"] and coord.tick_index == 2:
            victim = sorted(coord.shards)[0]
            os.kill(coord.shards[victim]._process.pid, signal.SIGSTOP)
            wedged["done"] = True

    try:
        fixes = run_cluster(coordinator, workload, on_tick=wedge_once)
        assert wedged["done"]
        assert coordinator.metrics.snapshot()["counters"][
            "cluster.recoveries"
        ] >= 1
        assert checksums(fixes) == checksums(baseline_fixes)
    finally:
        coordinator.shutdown()
