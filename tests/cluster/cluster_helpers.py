"""Shared builders for the cluster suite.

A deliberately small world — four truncated walks replayed by eight
staggered sessions — keeps every cluster test fast while still mixing
sessions at different walk phases in each tick, which is what exercises
routing, merging, and recovery for real.  The single-engine baseline
built from the same world is the bitwise yardstick every cluster run is
held to.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster import (
    ClusterCoordinator,
    LocalShard,
    fresh_session_entry,
    shard_spec,
)
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    build_session_services,
    fix_stream_checksum,
    serve_batched,
)
from repro.sim.evaluation import multi_session_workload

N_SESSIONS = 8
N_TRACES = 4
N_HOPS = 5

World = Tuple[object, object, object, object]


def small_world(study) -> World:
    """``(fingerprint_db, motion_db, config, workload)``, truncated walks."""
    fingerprint_db = study.fingerprint_db(6)
    motion_db, _ = study.motion_db(6)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:N_HOPS]))
        for trace in study.test_traces[:N_TRACES]
    ]
    workload = multi_session_workload(
        traces, N_SESSIONS, corpus_size=N_TRACES, stagger_ticks=1
    )
    return fingerprint_db, motion_db, study.config, workload


def events_of(tick) -> List[IntervalEvent]:
    return [
        IntervalEvent(
            session_id=interval.session_id,
            scan=interval.scan,
            imu=interval.imu,
            sequence=interval.sequence,
        )
        for interval in tick
    ]


def make_shards(
    world: World,
    tmp_path,
    n_shards: int,
    transport=LocalShard,
    transport_kwargs: Optional[Dict[str, object]] = None,
    **spec_kwargs,
) -> List[object]:
    """``n_shards`` started transports with durable files under ``tmp_path``."""
    fingerprint_db, motion_db, config, _ = world
    return [
        transport(
            shard_spec(
                f"shard-{index}",
                fingerprint_db,
                motion_db,
                config,
                wal_path=tmp_path / f"shard-{index}.wal",
                checkpoint_path=tmp_path / f"shard-{index}.ckpt",
                **spec_kwargs,
            ),
            **(transport_kwargs or {}),
        )
        for index in range(n_shards)
    ]


def admit_workload_sessions(
    coordinator: ClusterCoordinator, world: World
) -> None:
    """Calibrate the workload's services and admit them as fresh entries."""
    fingerprint_db, motion_db, config, workload = world
    services = build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )
    for session_id in sorted(services):
        coordinator.add_session(
            fresh_session_entry(session_id, services[session_id])
        )


def make_cluster(
    world: World,
    tmp_path,
    n_shards: int,
    transport=LocalShard,
    transport_kwargs: Optional[Dict[str, object]] = None,
    **spec_kwargs,
) -> ClusterCoordinator:
    """A coordinator over fresh shards with every workload session admitted."""
    coordinator = ClusterCoordinator(
        make_shards(
            world,
            tmp_path,
            n_shards,
            transport,
            transport_kwargs=transport_kwargs,
            **spec_kwargs,
        )
    )
    admit_workload_sessions(coordinator, world)
    return coordinator


def run_cluster(
    coordinator: ClusterCoordinator,
    workload,
    harness=None,
    on_tick: Optional[Callable[[ClusterCoordinator], None]] = None,
) -> Dict[str, List[object]]:
    """Serve the whole workload; returns per-session fix streams.

    Args:
        harness: Optional ``ClusterChaosHarness`` to route ticks through.
        on_tick: Called before each tick (e.g. to kill a shard mid-run).
    """
    fixes: Dict[str, List[object]] = {sid: [] for sid in workload.sessions}
    for tick in workload.ticks:
        if on_tick is not None:
            on_tick(coordinator)
        events = events_of(tick)
        if harness is not None:
            outcome = harness.tick(events)
            delivered = harness.last_delivered
        else:
            outcome = coordinator.tick_detailed(events)
            delivered = events
        for event, fix in zip(delivered, outcome.fixes):
            fixes[event.session_id].append(fix)
    return fixes


def single_engine_fixes(world: World) -> Dict[str, List[object]]:
    """The one-engine fix streams the cluster must reproduce bitwise."""
    fingerprint_db, motion_db, config, workload = world
    services = build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )
    engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    return serve_batched(engine, workload, services).fixes


def checksums(fixes: Dict[str, Sequence[object]]) -> Dict[str, str]:
    return {
        session_id: fix_stream_checksum(stream)
        for session_id, stream in fixes.items()
    }
