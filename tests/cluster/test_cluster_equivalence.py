"""The tentpole contract: a cluster is not an approximation.

Each golden scenario is served through a coordinator at 1, 2, and 4
shards and the merged fix streams must match the serialized golden
fixtures **bitwise** — the same fixtures the sequential and batched
single-engine paths are pinned to, so all four serving topologies are
provably the same function.  The in-process transport runs the full
matrix; the spawned-process transport (cold interpreters, real pipes)
repeats it at 2 shards in the slow lane.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterCoordinator,
    LocalShard,
    ProcessShard,
    fresh_session_entry,
    shard_spec,
)
from repro.serving import build_session_services

from cluster_helpers import events_of
from golden_scenarios import SCENARIOS, load_golden, scenario_case, serialize_fix


def serve_cluster(study, name, n_shards, transport, tmp_path):
    """Serve one golden scenario through a cluster; serialized streams."""
    fingerprint_db, motion_db, workload = scenario_case(study, name)
    plan = study.scenario.plan
    shards = [
        transport(
            shard_spec(
                f"shard-{index}",
                fingerprint_db,
                motion_db,
                study.config,
                plan=plan,
                wal_path=tmp_path / f"{name}-{index}.wal",
                checkpoint_path=tmp_path / f"{name}-{index}.ckpt",
            )
        )
        for index in range(n_shards)
    ]
    coordinator = ClusterCoordinator(shards)
    services = build_session_services(
        workload,
        fingerprint_db,
        motion_db,
        study.config,
        resilient=True,
        plan=plan,
    )
    for session_id in sorted(services):
        coordinator.add_session(
            fresh_session_entry(session_id, services[session_id])
        )
    fixes = {session_id: [] for session_id in services}
    for tick in workload.ticks:
        events = events_of(tick)
        outcome = coordinator.tick_detailed(events)
        for event, fix in zip(events, outcome.fixes):
            fixes[event.session_id].append(fix)
    snapshot = coordinator.metrics_snapshot()
    coordinator.shutdown()
    serialized = {
        session_id: [serialize_fix(fix) for fix in stream]
        for session_id, stream in sorted(fixes.items())
    }
    return serialized, snapshot


@pytest.mark.parametrize("n_shards", (1, 2, 4))
@pytest.mark.parametrize("name", SCENARIOS)
def test_local_cluster_matches_golden_bitwise(
    small_study, tmp_path, name, n_shards
):
    serialized, snapshot = serve_cluster(
        small_study, name, n_shards, LocalShard, tmp_path
    )
    assert serialized == load_golden(name)
    # Lockstep ticking: every shard engine counted every cluster tick.
    _, _, workload = scenario_case(small_study, name)
    merged = snapshot["merged"]["engine"]["counters"]
    assert merged["engine.ticks"] == len(workload.ticks) * n_shards
    assert snapshot["coordinator"]["counters"]["cluster.recoveries"] == 0


@pytest.mark.slow
@pytest.mark.parametrize("name", SCENARIOS)
def test_process_cluster_matches_golden_bitwise(small_study, tmp_path, name):
    serialized, snapshot = serve_cluster(
        small_study, name, 2, ProcessShard, tmp_path
    )
    assert serialized == load_golden(name)
    assert snapshot["coordinator"]["counters"]["cluster.recoveries"] == 0


def test_local_cluster_reproduces_single_engine_streams(
    world, baseline_fixes, tmp_path
):
    """The fast world's streams match a single engine at 3 shards too."""
    from cluster_helpers import checksums, make_cluster, run_cluster

    coordinator = make_cluster(world, tmp_path, 3)
    fixes = run_cluster(coordinator, world[3])
    coordinator.shutdown()
    assert checksums(fixes) == checksums(baseline_fixes)
