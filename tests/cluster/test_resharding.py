"""Live resharding: checkpoint handoff mid-run, bitwise invisible.

Growing or shrinking the topology halfway through a workload must not
perturb a single fix: moved sessions travel as checkpoint entries (the
same unit recovery restores), stayers are untouched, and the merged
streams still match the single-engine baseline bit for bit.  The same
contract is held with the adversarial defense live: a session mid-way
through a quarantine streak migrates with its trust state intact.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cluster import ClusterCoordinator, LocalShard, shard_spec
from repro.motion.pedestrian import BodyProfile
from repro.robustness import ResilientMoLocService
from repro.robustness.trust import ApTrustMonitor
from repro.serving import build_session_services
from repro.sim.adversary import inject_rogue_ap
from repro.sim.evaluation import multi_session_workload

from cluster_helpers import checksums, events_of, make_cluster, make_shards


def _serve(coordinator, fixes, ticks):
    for tick in ticks:
        events = events_of(tick)
        outcome = coordinator.tick_detailed(events)
        for event, fix in zip(events, outcome.fixes):
            fixes[event.session_id].append(fix)


def test_growing_midrun_is_bitwise_invisible(
    world, baseline_fixes, tmp_path
):
    fingerprint_db, motion_db, config, workload = world
    coordinator = make_cluster(world, tmp_path, 2)
    fixes = {sid: [] for sid in workload.sessions}
    half = len(workload.ticks) // 2
    _serve(coordinator, fixes, workload.ticks[:half])

    old_router = coordinator.router
    homes_before = coordinator.session_homes()
    new_shard = LocalShard(
        shard_spec(
            "shard-2",
            fingerprint_db,
            motion_db,
            config,
            wal_path=tmp_path / "shard-2.wal",
            checkpoint_path=tmp_path / "shard-2.ckpt",
        )
    )
    moved = coordinator.reshard(
        list(coordinator.shards.values()) + [new_shard]
    )

    # The migration set is exactly the router's prediction, every move
    # targets the new shard, and the workers agree on the new homes.
    assert moved == old_router.moved_sessions(
        coordinator.router, homes_before
    )
    assert moved, "the fixture should move at least one session"
    assert all(new_home == "shard-2" for _, new_home in moved.values())
    homes_after = coordinator.session_homes()
    for session_id, (_, new_home) in moved.items():
        assert homes_after[session_id] == new_home
    for session_id, home in homes_before.items():
        if session_id not in moved:
            assert homes_after[session_id] == home

    _serve(coordinator, fixes, workload.ticks[half:])
    snapshot = coordinator.metrics_snapshot()
    coordinator.shutdown()
    assert checksums(fixes) == checksums(baseline_fixes)
    counters = snapshot["coordinator"]["counters"]
    assert counters["cluster.reshards"] == 1
    assert counters["cluster.migrated_sessions"] == len(moved)


def test_shrinking_midrun_drains_and_retires_the_shard(
    world, baseline_fixes, tmp_path
):
    workload = world[3]
    coordinator = make_cluster(world, tmp_path, 3)
    fixes = {sid: [] for sid in workload.sessions}
    half = len(workload.ticks) // 2
    _serve(coordinator, fixes, workload.ticks[:half])

    old_router = coordinator.router
    homes_before = coordinator.session_homes()
    survivors = [
        shard
        for shard_id, shard in coordinator.shards.items()
        if shard_id != "shard-2"
    ]
    retired = coordinator.shards["shard-2"]
    moved = coordinator.reshard(survivors)

    assert moved == old_router.moved_sessions(
        coordinator.router, homes_before
    )
    assert all(old_home == "shard-2" for old_home, _ in moved.values())
    assert not retired.is_alive(), "the drained shard must be shut down"
    assert sorted(coordinator.router.shard_ids) == ["shard-0", "shard-1"]

    _serve(coordinator, fixes, workload.ticks[half:])
    coordinator.shutdown()
    assert checksums(fixes) == checksums(baseline_fixes)


ROGUE_AP = 5
N_APS = 6


@pytest.fixture(scope="module")
def attacked_world(small_study):
    """A defended-cluster world whose every walk carries a rogue AP."""
    fingerprint_db = small_study.fingerprint_db(N_APS)
    motion_db, _ = small_study.motion_db(N_APS)
    traces = [
        inject_rogue_ap(
            dataclasses.replace(trace, hops=list(trace.hops[:5])),
            ROGUE_AP,
            2,
        )
        for trace in small_study.test_traces[:4]
    ]
    workload = multi_session_workload(
        traces, 8, corpus_size=4, stagger_ticks=1
    )
    return fingerprint_db, motion_db, small_study.config, workload


def _defended_cluster(world, tmp_path, n_shards) -> ClusterCoordinator:
    """Defended shards plus admitted trust-enabled sessions."""
    fingerprint_db, motion_db, config, workload = world
    from repro.cluster import fresh_session_entry

    coordinator = ClusterCoordinator(
        make_shards(world, tmp_path, n_shards, defended=True)
    )
    services = build_session_services(
        workload,
        fingerprint_db,
        motion_db,
        config,
        # One monitor per session: trust state is per-user.
        make_service=lambda trace: ResilientMoLocService(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=config,
            trust=ApTrustMonitor(n_aps=N_APS),
        ),
    )
    for session_id in sorted(services):
        coordinator.add_session(
            fresh_session_entry(session_id, services[session_id])
        )
    return coordinator


def test_defended_reshard_migrates_trust_state_bitwise(
    attacked_world, tmp_path
):
    """Growing a defended cluster mid-attack perturbs no defended fix.

    The reshard lands while quarantine streaks and EWMA residuals are
    mid-flight; if the checkpoint handoff dropped any of it, the moved
    sessions' post-migration quarantine decisions — and therefore their
    fix streams — would diverge from the undisturbed cluster's.
    """
    fingerprint_db, motion_db, config, workload = attacked_world
    baseline = _defended_cluster(attacked_world, tmp_path / "base", 2)
    baseline_fixes = {sid: [] for sid in workload.sessions}
    _serve(baseline, baseline_fixes, workload.ticks)
    baseline.shutdown()

    coordinator = _defended_cluster(attacked_world, tmp_path / "grown", 2)
    fixes = {sid: [] for sid in workload.sessions}
    half = len(workload.ticks) // 2
    _serve(coordinator, fixes, workload.ticks[:half])
    new_shard = LocalShard(
        shard_spec(
            "shard-2",
            fingerprint_db,
            motion_db,
            config,
            wal_path=tmp_path / "shard-2.wal",
            checkpoint_path=tmp_path / "shard-2.ckpt",
            defended=True,
        )
    )
    moved = coordinator.reshard(
        list(coordinator.shards.values()) + [new_shard]
    )
    assert moved, "the fixture should move at least one session"
    assert all(new_home == "shard-2" for _, new_home in moved.values())
    # The migrated entries landed with their trust state explicitly.
    new_shard.request({"op": "checkpoint"})
    landed = json.loads(
        (tmp_path / "shard-2.ckpt").read_text(encoding="utf-8")
    )
    landed_entries = {
        entry["session_id"]: entry for entry in landed["sessions"]
    }
    for session_id in moved:
        assert "trust" in landed_entries[session_id]["service"]
    _serve(coordinator, fixes, workload.ticks[half:])
    coordinator.shutdown()

    assert checksums(fixes) == checksums(baseline_fixes)
    # The defense was live, not idle: the rogue AP got masked.
    masked = {
        ap
        for stream in baseline_fixes.values()
        for fix in stream
        if fix is not None
        for ap in fix.health.masked_ap_ids
    }
    assert ROGUE_AP in masked


def test_duplicate_shard_ids_rejected_on_reshard(world, tmp_path):
    coordinator = make_cluster(world, tmp_path, 2)
    clone_dir = tmp_path / "clone"
    clone_dir.mkdir()
    clone = make_shards(world, clone_dir, 1)[0]  # another "shard-0"
    try:
        with pytest.raises(ValueError, match="duplicate"):
            coordinator.reshard(
                list(coordinator.shards.values()) + [clone]
            )
    finally:
        clone.shutdown()
        coordinator.shutdown()
