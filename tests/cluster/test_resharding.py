"""Live resharding: checkpoint handoff mid-run, bitwise invisible.

Growing or shrinking the topology halfway through a workload must not
perturb a single fix: moved sessions travel as checkpoint entries (the
same unit recovery restores), stayers are untouched, and the merged
streams still match the single-engine baseline bit for bit.
"""

from __future__ import annotations

import pytest

from repro.cluster import LocalShard, shard_spec

from cluster_helpers import checksums, events_of, make_cluster, make_shards


def _serve(coordinator, fixes, ticks):
    for tick in ticks:
        events = events_of(tick)
        outcome = coordinator.tick_detailed(events)
        for event, fix in zip(events, outcome.fixes):
            fixes[event.session_id].append(fix)


def test_growing_midrun_is_bitwise_invisible(
    world, baseline_fixes, tmp_path
):
    fingerprint_db, motion_db, config, workload = world
    coordinator = make_cluster(world, tmp_path, 2)
    fixes = {sid: [] for sid in workload.sessions}
    half = len(workload.ticks) // 2
    _serve(coordinator, fixes, workload.ticks[:half])

    old_router = coordinator.router
    homes_before = coordinator.session_homes()
    new_shard = LocalShard(
        shard_spec(
            "shard-2",
            fingerprint_db,
            motion_db,
            config,
            wal_path=tmp_path / "shard-2.wal",
            checkpoint_path=tmp_path / "shard-2.ckpt",
        )
    )
    moved = coordinator.reshard(
        list(coordinator.shards.values()) + [new_shard]
    )

    # The migration set is exactly the router's prediction, every move
    # targets the new shard, and the workers agree on the new homes.
    assert moved == old_router.moved_sessions(
        coordinator.router, homes_before
    )
    assert moved, "the fixture should move at least one session"
    assert all(new_home == "shard-2" for _, new_home in moved.values())
    homes_after = coordinator.session_homes()
    for session_id, (_, new_home) in moved.items():
        assert homes_after[session_id] == new_home
    for session_id, home in homes_before.items():
        if session_id not in moved:
            assert homes_after[session_id] == home

    _serve(coordinator, fixes, workload.ticks[half:])
    snapshot = coordinator.metrics_snapshot()
    coordinator.shutdown()
    assert checksums(fixes) == checksums(baseline_fixes)
    counters = snapshot["coordinator"]["counters"]
    assert counters["cluster.reshards"] == 1
    assert counters["cluster.migrated_sessions"] == len(moved)


def test_shrinking_midrun_drains_and_retires_the_shard(
    world, baseline_fixes, tmp_path
):
    workload = world[3]
    coordinator = make_cluster(world, tmp_path, 3)
    fixes = {sid: [] for sid in workload.sessions}
    half = len(workload.ticks) // 2
    _serve(coordinator, fixes, workload.ticks[:half])

    old_router = coordinator.router
    homes_before = coordinator.session_homes()
    survivors = [
        shard
        for shard_id, shard in coordinator.shards.items()
        if shard_id != "shard-2"
    ]
    retired = coordinator.shards["shard-2"]
    moved = coordinator.reshard(survivors)

    assert moved == old_router.moved_sessions(
        coordinator.router, homes_before
    )
    assert all(old_home == "shard-2" for old_home, _ in moved.values())
    assert not retired.is_alive(), "the drained shard must be shut down"
    assert sorted(coordinator.router.shard_ids) == ["shard-0", "shard-1"]

    _serve(coordinator, fixes, workload.ticks[half:])
    coordinator.shutdown()
    assert checksums(fixes) == checksums(baseline_fixes)


def test_duplicate_shard_ids_rejected_on_reshard(world, tmp_path):
    coordinator = make_cluster(world, tmp_path, 2)
    clone_dir = tmp_path / "clone"
    clone_dir.mkdir()
    clone = make_shards(world, clone_dir, 1)[0]  # another "shard-0"
    try:
        with pytest.raises(ValueError, match="duplicate"):
            coordinator.reshard(
                list(coordinator.shards.values()) + [clone]
            )
    finally:
        clone.shutdown()
        coordinator.shutdown()
