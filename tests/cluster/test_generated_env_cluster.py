"""1/2/4-shard cluster equality over a generated environment.

The PR-5 contract — a sharded cluster's merged fix streams are bitwise
identical to one engine's, at any shard count — was proven on the
paper's office hall.  This suite re-proves it over a procedurally
generated warehouse world, so sharding correctness is a property of the
routing and merging machinery, not of one floor plan.
"""

from __future__ import annotations

import dataclasses

import pytest

from cluster_helpers import (
    checksums,
    make_cluster,
    run_cluster,
    single_engine_fixes,
)
from repro.sim.evaluation import multi_session_workload

N_SESSIONS = 6
N_TRACES = 3
N_HOPS = 5


@pytest.fixture(scope="module")
def generated_world(generated_study):
    """``(fingerprint_db, motion_db, config, workload)`` on the warehouse."""
    study = generated_study
    n_aps = study.scenario.survey.database.n_aps
    fingerprint_db = study.fingerprint_db(n_aps)
    motion_db, _ = study.motion_db(n_aps)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:N_HOPS]))
        for trace in study.test_traces[:N_TRACES]
    ]
    workload = multi_session_workload(
        traces, N_SESSIONS, corpus_size=N_TRACES, stagger_ticks=1
    )
    return fingerprint_db, motion_db, study.config, workload


@pytest.fixture(scope="module")
def generated_baseline(generated_world):
    """Single-engine fix streams — the bitwise yardstick."""
    return checksums(single_engine_fixes(generated_world))


class TestGeneratedEnvironmentCluster:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_cluster_matches_single_engine_bitwise(
        self, generated_world, generated_baseline, n_shards, tmp_path
    ):
        coordinator = make_cluster(generated_world, tmp_path, n_shards)
        workload = generated_world[3]
        fixes = run_cluster(coordinator, workload)
        assert checksums(fixes) == generated_baseline, (
            f"{n_shards}-shard cluster diverged on the generated world"
        )

    def test_sessions_actually_spread_across_shards(
        self, generated_world, tmp_path
    ):
        coordinator = make_cluster(generated_world, tmp_path, 4)
        occupied = set(coordinator.session_homes().values())
        assert len(occupied) >= 2
