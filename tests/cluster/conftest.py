"""Cluster suite fixtures.

The golden scenarios and fix serializers live with the serving suite;
rootdir-style test directories don't share modules, so the serving
directory is bridged onto ``sys.path`` here (the same trick its own
tests rely on pytest performing implicitly).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "serving"))

from cluster_helpers import single_engine_fixes, small_world  # noqa: E402


@pytest.fixture(scope="session")
def world(small_study):
    """``(fingerprint_db, motion_db, config, workload)`` for cluster tests."""
    return small_world(small_study)


@pytest.fixture(scope="session")
def baseline_fixes(world):
    """Single-engine fix streams over the same world (the bitwise yardstick)."""
    return single_engine_fixes(world)
