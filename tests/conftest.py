"""Shared fixtures: the paper environment and small-scale prepared studies.

Expensive artifacts (scenario, studies) are session-scoped; tests must not
mutate them.  Small scales keep the suite fast while preserving every code
path; the full paper-scale run lives in the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MoLocConfig
from repro.env.office_hall import OfficeHall, office_hall
from repro.sim.crowdsource import TraceGenerationConfig, generate_traces
from repro.sim.experiments import Study
from repro.sim.scenario import Scenario, build_scenario


@pytest.fixture(scope="session")
def hall() -> OfficeHall:
    """The paper's office-hall environment."""
    return office_hall()


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """A full scenario at default (calibrated) radio parameters."""
    return build_scenario(seed=7)


@pytest.fixture(scope="session")
def small_study(scenario: Scenario) -> Study:
    """A paper-scale study: 150 training walks, 34 test walks (Sec. VI-A).

    Built once per session; its per-AP-count fingerprint and motion
    databases are cached inside the Study.  Anything much smaller leaves
    the sanitized motion database too sparse at the calibrated channel
    noise, and MoLoc's advantage (which the sim and integration tests
    assert) is not representative.
    """
    config = TraceGenerationConfig(n_hops=15)
    training = generate_traces(
        scenario, 150, np.random.default_rng([7, 10]), config=config
    )
    test = generate_traces(
        scenario,
        34,
        np.random.default_rng([7, 11]),
        config=config,
        start_time_s=3600.0,
    )
    return Study(
        scenario=scenario,
        training_traces=training,
        test_traces=test,
        config=MoLocConfig(),
    )


@pytest.fixture(scope="session")
def generated_study() -> Study:
    """A study over a procedurally generated (non-office) warehouse.

    The cross-environment invariant suites run the serving and cluster
    equality checks over this world, proving those guarantees are not
    office-hall-specific.  Smoke scale: the invariants under test are
    bitwise, not statistical, so small volumes lose nothing.
    """
    from repro.env.procedural import EnvironmentSpec, generate_environment
    from repro.sim.experiments import prepare_study

    spec = EnvironmentSpec(
        topology="warehouse",
        rows=4,
        cols=3,
        floor_width_m=20.0,
        floor_height_m=18.0,
        n_aps=4,
        placement="sparse-adversarial",
    )
    environment = generate_environment(spec, seed=303)
    return prepare_study(
        seed=7,
        n_training_traces=24,
        n_test_traces=8,
        trace_config=TraceGenerationConfig(n_hops=6),
        hall=environment.hall,
        samples_per_location=12,
        training_samples=8,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
