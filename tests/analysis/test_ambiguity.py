"""Tests for fingerprint-ambiguity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.ambiguity import analyze_ambiguity
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.env.floorplan import FloorPlan, ReferenceLocation
from repro.env.geometry import Point


@pytest.fixture()
def twin_setup():
    """Locations 1 and 3 are distant twins; 2 sits between, distinct."""
    plan = FloorPlan(
        width=30.0,
        height=10.0,
        reference_locations=[
            ReferenceLocation(1, Point(3.0, 5.0)),
            ReferenceLocation(2, Point(15.0, 5.0)),
            ReferenceLocation(3, Point(27.0, 5.0)),
        ],
    )
    db = FingerprintDatabase(
        {
            1: Fingerprint.from_values([-50.0, -70.0]),
            2: Fingerprint.from_values([-60.0, -60.0]),
            3: Fingerprint.from_values([-50.5, -69.5]),  # twin of 1
        }
    )
    return plan, db


class TestAnalysis:
    def test_all_pairs_scored(self, twin_setup):
        plan, db = twin_setup
        report = analyze_ambiguity(db, plan)
        assert len(report.pairs) == 3

    def test_most_confusable_first(self, twin_setup):
        plan, db = twin_setup
        report = analyze_ambiguity(db, plan)
        risks = [p.confusion_risk for p in report.pairs]
        assert risks == sorted(risks, reverse=True)
        top = report.pairs[0]
        assert (top.location_a, top.location_b) == (1, 3)

    def test_twin_detection(self, twin_setup):
        plan, db = twin_setup
        report = analyze_ambiguity(db, plan, twin_threshold_db=2.0)
        assert [(p.location_a, p.location_b) for p in report.twins] == [(1, 3)]

    def test_distant_twins_filter(self, twin_setup):
        plan, db = twin_setup
        report = analyze_ambiguity(db, plan, twin_threshold_db=2.0)
        assert report.distant_twins(min_distance_m=6.0)
        assert not report.distant_twins(min_distance_m=30.0)

    def test_risk_of_lookup(self, twin_setup):
        plan, db = twin_setup
        report = analyze_ambiguity(db, plan)
        pair = report.risk_of(3, 1)  # order-insensitive
        assert pair.signal_gap_db == pytest.approx(
            db.fingerprint_of(1).dissimilarity(db.fingerprint_of(3))
        )
        with pytest.raises(KeyError):
            report.risk_of(1, 99)

    def test_single_location_rejected(self):
        plan = FloorPlan(
            width=10,
            height=10,
            reference_locations=[ReferenceLocation(1, Point(5, 5))],
        )
        db = FingerprintDatabase({1: Fingerprint.from_values([-50.0])})
        with pytest.raises(ValueError):
            analyze_ambiguity(db, plan)


class TestOnPaperHall:
    def test_hall_has_distant_twins_at_4_aps(self, scenario):
        """The simulated hall reproduces the paper's twin phenomenon."""
        db = scenario.survey.database.truncated(4)
        report = analyze_ambiguity(db, scenario.plan)
        assert report.distant_twins(min_distance_m=6.0)

    def test_twin_count_shrinks_with_more_aps(self, scenario):
        full = scenario.survey.database
        counts = []
        for n_aps in (4, 5, 6):
            db = full.truncated(n_aps) if n_aps < full.n_aps else full
            # Fixed threshold so the comparison is apples to apples.
            report = analyze_ambiguity(db, scenario.plan, twin_threshold_db=8.0)
            counts.append(len(report.twins))
        assert counts[0] >= counts[1] >= counts[2]
        assert counts[0] > counts[2]

    def test_noise_matched_default_threshold(self, scenario):
        report = analyze_ambiguity(scenario.survey.database, scenario.plan)
        assert 3.0 < report.twin_threshold_db < 30.0
