"""Tests for the scenario-matrix runner and its artifact schema."""

from __future__ import annotations

import json

import pytest

from repro.analysis.matrix import (
    FULL_PROFILE,
    SMOKE_PROFILE,
    FaultPlanSpec,
    LoadLevel,
    MatrixProfile,
    run_matrix,
    twin_confusion_rate,
    validate_matrix_document,
    write_matrix_artifacts,
)
from repro.env.procedural import EnvironmentSpec


class _Record:
    def __init__(self, true_id, estimated_id):
        self.true_id = true_id
        self.estimated_id = estimated_id


class _Pair:
    def __init__(self, a, b):
        self.location_a = a
        self.location_b = b


class TestTwinConfusionRate:
    def test_counts_only_partner_hits(self):
        twins = [_Pair(1, 5)]
        records = [
            _Record(1, 5),   # confused with its twin
            _Record(1, 2),   # wrong, but not the twin
            _Record(5, 1),   # confused (symmetric)
            _Record(3, 4),   # not a twin location at all
        ]
        assert twin_confusion_rate(records, twins) == pytest.approx(0.5)

    def test_twin_free_world_scores_zero(self):
        assert twin_confusion_rate([_Record(1, 2)], []) == 0.0

    def test_empty_records_score_zero(self):
        assert twin_confusion_rate([], [_Pair(1, 2)]) == 0.0


class TestSpecs:
    def test_load_level_validation(self):
        with pytest.raises(ValueError, match="n_sessions"):
            LoadLevel("bad", n_sessions=0, corpus_size=1)
        with pytest.raises(ValueError, match="corpus_size"):
            LoadLevel("bad", n_sessions=2, corpus_size=3)

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError, match="none|faults|adversarial"):
            FaultPlanSpec("bad", kind="meteor")
        with pytest.raises(ValueError, match="positive rate"):
            FaultPlanSpec("bad", kind="faults", rate=0.0)

    def test_builtin_profiles_meet_the_acceptance_floor(self):
        for profile in (SMOKE_PROFILE, FULL_PROFILE):
            topologies = {spec.topology for _, spec in profile.environments}
            assert len(topologies) >= 3
            assert len(profile.loads) >= 2
            assert len(profile.fault_plans) >= 2
            assert profile.n_cells >= 12


_MICRO_PROFILE = MatrixProfile(
    name="micro",
    environments=(
        (303, EnvironmentSpec(topology="warehouse", rows=4, cols=3,
                              floor_width_m=20.0, floor_height_m=18.0,
                              n_aps=4, placement="sparse-adversarial")),
    ),
    loads=(LoadLevel("light", n_sessions=2, corpus_size=2),),
    fault_plans=(
        FaultPlanSpec("none"),
        FaultPlanSpec("storm", kind="faults", rate=0.2, chaos_seed=5),
    ),
    samples_per_location=8,
    training_samples=6,
    n_training_traces=12,
    n_test_traces=4,
    trace_hops=5,
)


@pytest.fixture(scope="module")
def micro_document():
    return run_matrix(_MICRO_PROFILE, seed=7)


class TestRunMatrix:
    def test_micro_matrix_validates(self, micro_document):
        assert validate_matrix_document(micro_document) == []
        assert micro_document["n_cells"] == 2

    def test_cells_carry_the_required_metrics(self, micro_document):
        for cell in micro_document["cells"]:
            assert cell["bitwise_reproducible"] is True
            assert 0.0 <= cell["accuracy"]["moloc"] <= 1.0
            assert 0.0 <= cell["twin_confusion_rate"] <= 1.0
            assert cell["throughput"]["intervals_per_s"] > 0
            assert cell["fault_accounting"]["served"] > 0
            assert len(cell["fix_checksum"]) == 64

    def test_storm_cell_accounts_for_faults(self, micro_document):
        storm = [
            cell for cell in micro_document["cells"]
            if cell["fault_plan"]["name"] == "storm"
        ]
        assert storm and all(
            cell["fault_plan"]["scheduled_faults"] > 0 for cell in storm
        )

    def test_document_is_json_serializable_and_rerun_stable(self, micro_document):
        text = json.dumps(micro_document, sort_keys=True)
        assert json.loads(text)["n_cells"] == 2
        again = run_matrix(_MICRO_PROFILE, seed=7)
        for first, second in zip(micro_document["cells"], again["cells"]):
            assert first["fix_checksum"] == second["fix_checksum"]
            assert first["environment_checksum"] == second["environment_checksum"]

    def test_artifact_writer_emits_specs(self, micro_document, tmp_path):
        output = tmp_path / "BENCH_matrix.json"
        specs = tmp_path / "specs"
        write_matrix_artifacts(micro_document, output, specs_dir=specs)
        assert json.loads(output.read_text())["report"] == "matrix"
        spec_files = sorted(specs.glob("*.json"))
        assert len(spec_files) == 1
        restored = EnvironmentSpec.from_dict(
            json.loads(spec_files[0].read_text())
        )
        assert restored.topology == "warehouse"


class TestValidateMatrixDocument:
    def test_rejects_wrong_report_kind(self):
        assert validate_matrix_document({"report": "chaos"})

    def test_rejects_empty_cells(self):
        problems = validate_matrix_document(
            {"report": "matrix", "format_version": 1, "cells": []}
        )
        assert any("no cells" in p for p in problems)

    def test_flags_missing_keys_and_failed_reproducibility(self, micro_document):
        broken = json.loads(json.dumps(micro_document))
        broken["cells"][0].pop("fix_checksum")
        broken["cells"][0]["bitwise_reproducible"] = False
        problems = validate_matrix_document(broken)
        assert any("fix_checksum" in p for p in problems)
        assert any("bitwise reproducibility" in p for p in problems)

    def test_flags_spec_that_cannot_round_trip(self, micro_document):
        broken = json.loads(json.dumps(micro_document))
        broken["environments"][0]["spec"]["topology"] = "dungeon"
        problems = validate_matrix_document(broken)
        assert any("round-trip" in p for p in problems)

    def test_v3_documents_require_the_motion_mix_key(self, micro_document):
        broken = json.loads(json.dumps(micro_document))
        broken["cells"][0].pop("motion_mix")
        problems = validate_matrix_document(broken)
        assert any("motion_mix" in p for p in problems)

    def test_older_documents_are_exempt_from_motion_mix(self, micro_document):
        legacy = json.loads(json.dumps(micro_document))
        legacy["format_version"] = 2
        for cell in legacy["cells"]:
            cell.pop("motion_mix")
        assert validate_matrix_document(legacy) == []


class TestMotionMixAxis:
    def test_unknown_mix_rejected_at_profile_build(self):
        import dataclasses

        with pytest.raises(ValueError, match="unknown motion mix"):
            dataclasses.replace(_MICRO_PROFILE, motion_mixes=("jog-heavy",))

    def test_mix_axis_multiplies_cells_and_labels_them(self):
        profile = MatrixProfile(
            name="micro-gait",
            environments=_MICRO_PROFILE.environments,
            loads=_MICRO_PROFILE.loads,
            fault_plans=(FaultPlanSpec("none"),),
            motion_mixes=("paper-walk", "mixed-gait"),
            samples_per_location=8,
            training_samples=6,
            n_training_traces=12,
            n_test_traces=4,
            trace_hops=5,
        )
        assert profile.n_cells == 2
        document = run_matrix(profile, seed=7)
        assert validate_matrix_document(document) == []
        mixes = {cell["motion_mix"] for cell in document["cells"]}
        assert mixes == {"paper-walk", "mixed-gait"}
        # Different served populations, different streams.
        checksums = {cell["fix_checksum"] for cell in document["cells"]}
        assert len(checksums) == 2

    def test_full_profile_sweeps_the_mixed_gait_population(self):
        assert "mixed-gait" in FULL_PROFILE.motion_mixes
        assert SMOKE_PROFILE.motion_mixes == ("paper-walk",)


@pytest.mark.slow
class TestFullProfiles:
    def test_smoke_profile_end_to_end(self):
        document = run_matrix(SMOKE_PROFILE, seed=7)
        assert validate_matrix_document(document) == []
        assert document["n_cells"] >= 12
        assert not any(cell["twin_free"] for cell in document["cells"])

    def test_full_profile_end_to_end(self):
        document = run_matrix(FULL_PROFILE, seed=7)
        assert validate_matrix_document(document) == []
        assert document["n_cells"] >= 12
        topologies = {cell["topology"] for cell in document["cells"]}
        assert topologies >= {"tower", "mall", "warehouse", "stadium", "corridor"}
