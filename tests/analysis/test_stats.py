"""Tests for summary statistics and bootstrap intervals."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import SummaryStats, bootstrap_ci, summarize

samples = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60
)


class TestSummarize:
    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 10.0])
        assert stats.n == 5
        assert stats.mean == pytest.approx(4.0)
        assert stats.median == 3.0
        assert stats.maximum == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=" in text and "p90=" in text

    @given(samples)
    def test_ordering_invariants(self, values):
        stats = summarize(values)
        epsilon = 1e-9  # the mean of identical values can differ by 1 ULP
        assert stats.median <= stats.p90 <= stats.maximum + epsilon
        assert min(values) - epsilon <= stats.mean <= stats.maximum + epsilon


class TestBootstrap:
    def test_interval_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 1.0, size=200)
        low, high = bootstrap_ci(values)
        assert low <= float(values.mean()) <= high

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, size=20)
        large = rng.normal(0, 1, size=2000)
        low_s, high_s = bootstrap_ci(small)
        low_l, high_l = bootstrap_ci(large)
        assert (high_l - low_l) < (high_s - low_s)

    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(values, seed=5) == bootstrap_ci(values, seed=5)

    def test_custom_statistic(self):
        values = [1.0, 1.0, 1.0, 100.0]
        low, high = bootstrap_ci(values, statistic=np.median)
        assert low >= 1.0

    def test_degenerate_sample(self):
        low, high = bootstrap_ci([7.0, 7.0, 7.0])
        assert low == high == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_resamples=0)

    @given(samples, st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=20, deadline=None)
    def test_bounds_ordered_and_within_range(self, values, confidence):
        low, high = bootstrap_ci(values, confidence=confidence, n_resamples=200)
        epsilon = 1e-9  # the mean of identical values can differ by 1 ULP
        assert low <= high
        assert min(values) - epsilon <= low
        assert high <= max(values) + epsilon
