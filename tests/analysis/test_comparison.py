"""Tests for paired system comparison."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import compare_systems
from repro.sim.evaluation import (
    EvaluationResult,
    LocalizationRecord,
    TraceEvaluation,
)


def _result(per_trace_errors):
    """Build a result from per-trace error lists (0.0 = accurate)."""
    traces = []
    for errors in per_trace_errors:
        records = [
            LocalizationRecord(
                true_id=1,
                estimated_id=1 if e == 0.0 else 2,
                error_m=e,
                used_motion=True,
                is_initial=(k == 0),
            )
            for k, e in enumerate(errors)
        ]
        traces.append(TraceEvaluation(user="u", records=records))
    return EvaluationResult(traces=traces)


class TestValidation:
    def test_trace_count_mismatch(self):
        a = _result([[0.0, 0.0]])
        b = _result([[0.0, 0.0], [4.0]])
        with pytest.raises(ValueError):
            compare_systems(a, b)

    def test_record_count_mismatch(self):
        a = _result([[0.0, 0.0]])
        b = _result([[0.0]])
        with pytest.raises(ValueError):
            compare_systems(a, b)

    def test_confidence_bounds(self):
        a = _result([[0.0]])
        with pytest.raises(ValueError):
            compare_systems(a, a, confidence=1.0)


class TestComparison:
    def test_identical_systems_have_zero_delta(self):
        a = _result([[0.0, 4.0], [0.0, 0.0], [4.0, 0.0]])
        comparison = compare_systems(a, a)
        assert comparison.accuracy_delta == 0.0
        assert comparison.mean_error_delta_m == 0.0
        assert not comparison.a_significantly_more_accurate
        assert not comparison.a_significantly_lower_error

    def test_clear_winner_significant(self):
        better = _result([[0.0, 0.0]] * 20)
        worse = _result([[6.0, 6.0]] * 20)
        comparison = compare_systems(better, worse)
        assert comparison.accuracy_delta == pytest.approx(1.0)
        assert comparison.mean_error_delta_m == pytest.approx(-6.0)
        assert comparison.a_significantly_more_accurate
        assert comparison.a_significantly_lower_error

    def test_noisy_tie_not_significant(self):
        a = _result([[0.0, 4.0]] * 6 + [[4.0, 0.0]] * 6)
        b = _result([[4.0, 0.0]] * 6 + [[0.0, 4.0]] * 6)
        comparison = compare_systems(a, b)
        assert not comparison.a_significantly_more_accurate

    def test_deterministic_given_seed(self):
        a = _result([[0.0, 4.0], [0.0, 0.0]])
        b = _result([[4.0, 4.0], [0.0, 4.0]])
        first = compare_systems(a, b, seed=3)
        second = compare_systems(a, b, seed=3)
        assert first == second


class TestOnStudy:
    def test_moloc_win_is_significant(self, small_study):
        """The headline result survives a paired trace-level bootstrap."""
        from repro.sim.experiments import evaluate_systems

        results = evaluate_systems(small_study, 6)
        comparison = compare_systems(results["moloc"], results["wifi"])
        assert comparison.accuracy_delta > 0.2
        assert comparison.a_significantly_more_accurate
        assert comparison.a_significantly_lower_error
