"""The motion-bench document schema and gate arithmetic.

The expensive end-to-end run lives in the slow CLI gait test and the
committed benchmark; these tests pin the validator's contract on
fabricated documents.
"""

from __future__ import annotations

import json

from repro.analysis.motion import (
    BENCH_MIXES,
    GATE_ERROR_RATIO,
    GATE_MIX,
    SMOKE_MIXES,
    validate_motion_document,
)


def _cell(mean_error, twin, rmse):
    return {
        "n_fixes": 10,
        "accuracy": 0.8,
        "mean_error_m": mean_error,
        "max_error_m": 3 * mean_error,
        "twin_confusion_rate": twin,
        "per_regime": {},
        "speed_rmse_mps": rmse,
        "speed_samples": 0 if rmse is None else 8,
    }


def _document(smoke=False, ratio=0.5):
    fixed_error = 3.0
    mixes = {
        mix: {
            "n_twins": 2,
            "systems": {
                "fixed": _cell(fixed_error, 0.2, None),
                "speed_adaptive": _cell(
                    ratio * fixed_error,
                    0.1,
                    None if mix in ("paper-walk", "cart-heavy") else 0.4,
                ),
            },
        }
        for mix in (SMOKE_MIXES if smoke else BENCH_MIXES)
    }
    return {
        "report": "motion",
        "smoke": smoke,
        "mixes": mixes,
        "gate": {
            "mix": GATE_MIX,
            "error_ratio_limit": GATE_ERROR_RATIO,
            "observed_error_ratio": ratio,
            "twin_confusion_fixed": 0.2,
            "twin_confusion_adaptive": 0.1,
            "error_ok": ratio <= GATE_ERROR_RATIO,
            "twin_ok": True,
            "passed": ratio <= GATE_ERROR_RATIO,
        },
        "limitations": ["cart-heavy is reported, not gated"],
    }


class TestValidateMotionDocument:
    def test_accepts_a_complete_full_document(self):
        assert validate_motion_document(_document()) == []

    def test_accepts_a_smoke_document_with_the_smoke_mixes(self):
        assert validate_motion_document(_document(smoke=True)) == []

    def test_rejects_wrong_report_kind(self):
        assert validate_motion_document({"report": "matrix"})

    def test_full_documents_require_every_mix(self):
        document = _document()
        del document["mixes"]["cart-heavy"]
        problems = validate_motion_document(document)
        assert any("cart-heavy" in p for p in problems)

    def test_smoke_documents_are_exempt_from_unswept_mixes(self):
        document = _document(smoke=True)
        assert "cart-heavy" not in document["mixes"]
        assert validate_motion_document(document) == []

    def test_missing_system_flagged(self):
        document = _document()
        del document["mixes"]["mixed-gait"]["systems"]["speed_adaptive"]
        problems = validate_motion_document(document)
        assert any("speed_adaptive" in p for p in problems)

    def test_gated_mix_requires_a_speed_estimate(self):
        document = _document()
        document["mixes"][GATE_MIX]["systems"]["speed_adaptive"][
            "speed_rmse_mps"
        ] = None
        problems = validate_motion_document(document)
        assert any("speed estimate" in p for p in problems)

    def test_failed_gate_is_a_problem(self):
        problems = validate_motion_document(_document(ratio=0.95))
        assert any("gate failed" in p for p in problems)

    def test_round_trips_through_json(self):
        document = json.loads(json.dumps(_document()))
        assert validate_motion_document(document) == []
