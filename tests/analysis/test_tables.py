"""Tests for text-table rendering."""

from __future__ import annotations

import pytest

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_cdf_series, format_table


class TestFormatTable:
    def test_header_and_rows_present(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert "2.50" in lines[2]
        assert "x" in lines[3]

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["longvalue", 1], ["s", 22]])
        lines = text.splitlines()
        # The second column starts at the same offset on every row.
        offset = lines[0].index("v")
        assert lines[2][offset:].strip() == "1"
        assert lines[3][offset:].strip() == "22"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_floats_two_decimals(self):
        assert "3.14" in format_table(["x"], [[3.14159]])


class TestFormatCdfSeries:
    def test_series_contains_probabilities(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        text = format_cdf_series("WiFi", cdf, [2.0, 4.0])
        assert "WiFi" in text
        assert "2:0.50" in text
        assert "4:1.00" in text
