"""Tests for the empirical CDF."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.cdf import EmpiricalCdf

samples = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([])

    def test_values_sorted(self):
        cdf = EmpiricalCdf.from_samples([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(cdf.values, [1.0, 2.0, 3.0])


class TestProbability:
    def test_below_minimum_is_zero(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0])
        assert cdf.probability_at(0.5) == 0.0

    def test_at_maximum_is_one(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0])
        assert cdf.probability_at(3.0) == 1.0

    def test_right_continuous_at_sample(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_at(2.0) == 0.5

    def test_duplicates_counted(self):
        cdf = EmpiricalCdf.from_samples([1.0, 1.0, 5.0, 9.0])
        assert cdf.probability_at(1.0) == 0.5

    @given(samples, st.floats(min_value=-10, max_value=110))
    def test_probability_in_unit_interval(self, values, x):
        cdf = EmpiricalCdf.from_samples(values)
        assert 0.0 <= cdf.probability_at(x) <= 1.0

    @given(samples, st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100))
    def test_monotone(self, values, x1, x2):
        cdf = EmpiricalCdf.from_samples(values)
        lo, hi = min(x1, x2), max(x1, x2)
        assert cdf.probability_at(lo) <= cdf.probability_at(hi)


class TestQuantiles:
    def test_median(self):
        assert EmpiricalCdf.from_samples([1.0, 2.0, 9.0]).median == 2.0

    def test_maximum(self):
        assert EmpiricalCdf.from_samples([1.0, 9.0, 3.0]).maximum == 9.0

    def test_quantile_bounds(self):
        cdf = EmpiricalCdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(-0.1)
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_range(self, values, q):
        cdf = EmpiricalCdf.from_samples(values)
        assert cdf.values[0] <= cdf.quantile(q) <= cdf.values[-1]


class TestCurve:
    def test_curve_endpoints(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 4.0])
        xs, ps = cdf.curve(n_points=10)
        assert xs[0] == 0.0
        assert xs[-1] == 4.0
        assert ps[-1] == 1.0

    def test_curve_point_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([1.0]).curve(n_points=1)
