"""Tests for deployment coverage analysis."""

from __future__ import annotations

import pytest

from repro.analysis.coverage import analyze_coverage
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.radio.propagation import SENSITIVITY_FLOOR_DBM


@pytest.fixture()
def database() -> FingerprintDatabase:
    return FingerprintDatabase(
        {
            1: Fingerprint.from_values([-50.0, -60.0, -95.0]),  # well served
            2: Fingerprint.from_values([-88.0, -92.0, -99.0]),  # weak corner
            3: Fingerprint.from_values([-70.0, -75.0, -80.0]),
        }
    )


class TestAnalysis:
    def test_weakest_first(self, database):
        report = analyze_coverage(database)
        assert report.weakest.location_id == 2
        ids = [c.location_id for c in report.locations]
        assert ids == [2, 3, 1]

    def test_per_location_values(self, database):
        report = analyze_coverage(database)
        one = report.coverage_of(1)
        assert one.strongest_rss_dbm == -50.0
        assert one.mean_rss_dbm == pytest.approx((-50 - 60 - 95) / 3)
        assert one.usable_aps == 2  # -95 is below the -85 default

    def test_underserved(self, database):
        report = analyze_coverage(database)
        # Location 2 hears no AP above -85 dBm, location 1 hears two,
        # location 3 hears all three; ordering is weakest-first.
        assert [c.location_id for c in report.underserved(3)] == [2, 1]
        assert [c.location_id for c in report.underserved(4)] == [2, 3, 1]
        assert not report.underserved(min_usable_aps=0)

    def test_unknown_location(self, database):
        with pytest.raises(KeyError):
            analyze_coverage(database).coverage_of(9)

    def test_threshold_validation(self, database):
        with pytest.raises(ValueError):
            analyze_coverage(database, usable_threshold_dbm=SENSITIVITY_FLOOR_DBM)

    def test_custom_threshold(self, database):
        report = analyze_coverage(database, usable_threshold_dbm=-95.5)
        assert report.coverage_of(1).usable_aps == 3


class TestOnPaperHall:
    def test_hall_is_fully_covered(self, scenario):
        """The paper states all six APs' signals covered the whole hall."""
        report = analyze_coverage(scenario.survey.database)
        assert report.weakest.strongest_rss_dbm > -85.0
        assert not report.underserved(min_usable_aps=2)

    def test_center_better_served_than_corners(self, scenario):
        report = analyze_coverage(scenario.survey.database)
        # Location 18 is central; location 22 is a far corner.
        center = report.coverage_of(18)
        corner = report.coverage_of(22)
        assert center.mean_rss_dbm > corner.mean_rss_dbm
