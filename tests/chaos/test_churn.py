"""DB churn: the environment moves, the harness models it honestly.

A churn fault is not a corrupted message — it changes the *field*.
From its scheduled tick onward every session's honest scan reads the
changed environment while the serving database still describes the old
one.  Under test here: the :class:`EnvironmentOverlay`'s per-kind scan
transforms, its overlay↔repair symmetry (the seam the staleness
benchmark stands on), and the chaos harness integration — churn
activates once, rewrites every *fresh* scan from that tick on, keeps
redelivered messages byte-stable, and stays inside the
injected/skipped accounting invariant.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import ChaosHarness, FaultKind, FaultPlan, FaultSpec
from repro.chaos.harness import EnvironmentOverlay
from repro.core.fingerprint import RSS_CEILING_DBM, RSS_FLOOR_DBM
from repro.db.epochs import ApRemoved, ApRepowered, DriftDelta, apply_updates
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    build_session_services,
    fix_stream_checksum,
)
from repro.sim.evaluation import multi_session_workload

SCAN = [-40.0, -55.0, -70.0, RSS_FLOOR_DBM]


def _spec(kind, ap_id=None, magnitude=0.0, tick=1):
    return FaultSpec(
        tick=tick,
        session_id="environment",
        kind=kind,
        ap_id=ap_id,
        magnitude=magnitude,
    )


class TestEnvironmentOverlay:
    def test_only_churn_kinds_activate(self):
        overlay = EnvironmentOverlay()
        with pytest.raises(ValueError, match="not a DB churn kind"):
            overlay.activate(
                FaultSpec(tick=1, session_id="alice", kind=FaultKind.DROP_MESSAGE)
            )
        assert len(overlay) == 0

    def test_ap_die_floors_the_reading(self):
        overlay = EnvironmentOverlay()
        overlay.activate(_spec(FaultKind.ENV_AP_DIE, ap_id=1))
        out = overlay.apply_scan(SCAN)
        assert out == [-40.0, RSS_FLOOR_DBM, -70.0, RSS_FLOOR_DBM]

    def test_ap_repower_shifts_one_reading(self):
        overlay = EnvironmentOverlay()
        overlay.activate(
            _spec(FaultKind.ENV_AP_REPOWER, ap_id=0, magnitude=-9.0)
        )
        assert overlay.apply_scan(SCAN)[0] == -49.0

    def test_drift_shifts_non_floored_readings_clipped(self):
        overlay = EnvironmentOverlay()
        overlay.activate(_spec(FaultKind.ENV_DRIFT, magnitude=45.0))
        out = overlay.apply_scan(SCAN)
        # Every live reading moves (clipped at the ceiling); the dead
        # slot stays dead — a floored reading is an absence, not a
        # level.
        assert out == [
            RSS_CEILING_DBM,
            -10.0,
            -25.0,
            RSS_FLOOR_DBM,
        ]

    def test_changes_compose_in_activation_order(self):
        overlay = EnvironmentOverlay()
        overlay.activate(_spec(FaultKind.ENV_DRIFT, magnitude=2.0))
        overlay.activate(_spec(FaultKind.ENV_AP_DIE, ap_id=0))
        out = overlay.apply_scan(SCAN)
        assert out[0] == RSS_FLOOR_DBM  # died after drifting
        assert out[1] == -53.0

    def test_apply_event_leaves_scanless_events_alone(self):
        overlay = EnvironmentOverlay()
        overlay.activate(_spec(FaultKind.ENV_DRIFT, magnitude=2.0))
        event = IntervalEvent(session_id="alice", scan=None)
        assert overlay.apply_event(event) is event

    def test_repair_updates_mirror_the_active_churn(self):
        overlay = EnvironmentOverlay()
        overlay.activate(_spec(FaultKind.ENV_DRIFT, magnitude=2.5))
        overlay.activate(
            _spec(FaultKind.ENV_AP_REPOWER, ap_id=2, magnitude=-9.0)
        )
        overlay.activate(_spec(FaultKind.ENV_AP_DIE, ap_id=1))
        assert overlay.repair_updates(4) == [
            DriftDelta(offsets_db=[2.5] * 4),
            ApRepowered(ap_id=2, shift_db=-9.0),
            ApRemoved(ap_id=1),
        ]

    def test_overlay_and_repair_agree_on_the_field(self, small_study):
        """The symmetry the staleness bench stands on: scanning the
        changed field against the *repaired* database reads like
        scanning the original field against the original database —
        for the readings churn rewrites deterministically."""
        fingerprint_db = small_study.fingerprint_db(6)
        n_aps = fingerprint_db.n_aps
        overlay = EnvironmentOverlay()
        overlay.activate(_spec(FaultKind.ENV_AP_DIE, ap_id=n_aps - 1))
        overlay.activate(
            _spec(FaultKind.ENV_AP_REPOWER, ap_id=0, magnitude=-6.0)
        )
        repaired = apply_updates(
            fingerprint_db, overlay.repair_updates(n_aps)
        )
        for lid in fingerprint_db.location_ids:
            expected = overlay.apply_scan(fingerprint_db.fingerprint_of(lid).rss)
            assert list(repaired.fingerprint_of(lid).rss) == pytest.approx(
                expected
            )


N_SESSIONS = 8
CHURN_TICK = 2


@pytest.fixture(scope="module")
def churn_world(small_study):
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:5]))
        for trace in small_study.test_traces[:4]
    ]
    workload = multi_session_workload(
        traces, N_SESSIONS, corpus_size=4, stagger_ticks=1
    )
    return fingerprint_db, motion_db, small_study.config, workload


def _serve(churn_world, plan):
    fingerprint_db, motion_db, config, workload = churn_world
    services = build_session_services(
        workload, fingerprint_db, motion_db, config
    )
    engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    harness = ChaosHarness(engine, plan) if plan is not None else None
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    per_tick = []
    for tick in workload.ticks:
        events = [
            IntervalEvent(
                session_id=interval.session_id,
                scan=interval.scan,
                imu=interval.imu,
                sequence=interval.sequence,
            )
            for interval in tick
        ]
        if harness is not None:
            harness.tick_detailed(events)
            fixes = {
                sid: engine.sessions.get(sid).last_fix
                for sid in (e.session_id for e in events)
            }
        else:
            fixes = {
                event.session_id: fix
                for event, fix in zip(events, engine.tick(events))
            }
        per_tick.append(fixes)
    return harness, per_tick


class TestHarnessChurn:
    @pytest.fixture(scope="class")
    def churn_runs(self, churn_world):
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=CHURN_TICK,
                    session_id="environment",
                    kind=FaultKind.ENV_DRIFT,
                    magnitude=6.0,
                )
            ]
        )
        _, clean = _serve(churn_world, None)
        harness, churned = _serve(churn_world, plan)
        return harness, clean, churned

    def test_churn_hits_every_session_from_its_tick_onward(
        self, churn_world, churn_runs
    ):
        _, _, _, workload = churn_world
        harness, clean, churned = churn_runs
        # Plan ticks are 1-based: the churn scheduled for CHURN_TICK
        # lands on delivered frame CHURN_TICK - 1.
        first_churned_frame = CHURN_TICK - 1
        for session_id in workload.sessions:
            before = [
                t[session_id]
                for t in clean[:first_churned_frame]
                if session_id in t
            ]
            before_churned = [
                t[session_id]
                for t in churned[:first_churned_frame]
                if session_id in t
            ]
            # Bitwise identical before the field changed ...
            assert fix_stream_checksum(before) == fix_stream_checksum(
                before_churned
            )
        # ... and *some* sessions diverge after (the field moved for
        # everyone; a 6 dB site drift is not absorbed silently).
        after = lambda run: fix_stream_checksum(
            [
                t[sid]
                for t in run[first_churned_frame:]
                for sid in sorted(t)
            ]
        )
        assert after(clean) != after(churned)

    def test_churn_is_injected_not_skipped(self, churn_runs):
        harness, _, _ = churn_runs
        counters = harness.metrics.snapshot()["counters"]
        assert counters["chaos.injected.env-drift"] == 1
        assert counters.get("chaos.skipped", 0) == 0
        assert harness.overlay.active == (
            FaultSpec(
                tick=CHURN_TICK,
                session_id="environment",
                kind=FaultKind.ENV_DRIFT,
                magnitude=6.0,
            ),
        )

    def test_redelivered_events_keep_their_original_bytes(
        self, churn_world
    ):
        """A duplicate redelivered *after* churn activates must carry
        the bytes of its original delivery — a replayed wire message
        does not re-sample the field."""
        fingerprint_db, motion_db, config, workload = churn_world
        victim = sorted(workload.sessions)[0]
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=1, session_id=victim, kind=FaultKind.DUPLICATE_MESSAGE
                ),
                FaultSpec(
                    tick=CHURN_TICK,
                    session_id="environment",
                    kind=FaultKind.ENV_DRIFT,
                    magnitude=6.0,
                ),
            ]
        )
        services = build_session_services(
            workload, fingerprint_db, motion_db, config
        )
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        harness = ChaosHarness(engine, plan)
        for session_id, service in services.items():
            engine.add_session(session_id, service)
        delivered = []
        for tick in workload.ticks:
            events = [
                IntervalEvent(
                    session_id=interval.session_id,
                    scan=interval.scan,
                    imu=interval.imu,
                    sequence=interval.sequence,
                )
                for interval in tick
            ]
            harness.tick_detailed(events)
            delivered.append(list(harness.last_delivered))
        # The duplicated message shows up twice in the delivered frames;
        # both deliveries must carry identical bytes even though the
        # field drifted in between.
        by_key = {}
        for frame in delivered:
            for event in frame:
                if event.session_id == victim:
                    by_key.setdefault(
                        (event.session_id, event.sequence), []
                    ).append(event.scan)
        doubled = {
            key: scans for key, scans in by_key.items() if len(scans) > 1
        }
        assert doubled, "the duplicate never made it back"
        for scans in doubled.values():
            first = scans[0]
            for scan in scans[1:]:
                assert scan == first
