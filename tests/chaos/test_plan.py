"""Fault plans: seeded generation, validation, and exact serialization."""

from __future__ import annotations

import json

import pytest

from repro.chaos import FaultKind, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError, match="tick"):
            FaultSpec(tick=0, session_id="a", kind=FaultKind.RAISE)

    def test_rejects_unknown_phase_for_phase_faults(self):
        with pytest.raises(ValueError, match="phase"):
            FaultSpec(
                tick=1, session_id="a", kind=FaultKind.RAISE, phase="digest"
            )

    def test_phase_is_ignored_for_message_faults(self):
        spec = FaultSpec(
            tick=1,
            session_id="a",
            kind=FaultKind.DROP_MESSAGE,
            phase="irrelevant",
        )
        assert spec.kind is FaultKind.DROP_MESSAGE

    def test_latency_needs_positive_magnitude(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec(
                tick=1, session_id="a", kind=FaultKind.LATENCY, magnitude=0.0
            )


class TestFaultPlan:
    def test_one_fault_per_tick_session_pair(self):
        spec = FaultSpec(tick=3, session_id="a", kind=FaultKind.DROP_MESSAGE)
        other = FaultSpec(tick=3, session_id="a", kind=FaultKind.RAISE)
        with pytest.raises(ValueError, match="multiple faults"):
            FaultPlan([spec, other])

    def test_iteration_is_tick_ordered(self):
        plan = FaultPlan(
            [
                FaultSpec(tick=5, session_id="b", kind=FaultKind.RAISE),
                FaultSpec(tick=1, session_id="a", kind=FaultKind.RAISE),
                FaultSpec(tick=5, session_id="a", kind=FaultKind.RAISE),
            ]
        )
        assert [(f.tick, f.session_id) for f in plan] == [
            (1, "a"),
            (5, "a"),
            (5, "b"),
        ]
        assert len(plan) == 3
        assert len(plan.faults_at(5)) == 2
        assert plan.faults_at(2) == ()

    def test_random_is_deterministic_in_the_seed(self):
        kwargs = dict(
            n_ticks=20, session_ids=["a", "b", "c", "d"], rate=0.3
        )
        first = FaultPlan.random(seed=77, **kwargs)
        second = FaultPlan.random(seed=77, **kwargs)
        assert first.to_dict() == second.to_dict()
        assert len(first) > 0
        different = FaultPlan.random(seed=78, **kwargs)
        assert first.to_dict() != different.to_dict()

    def test_random_respects_the_kind_pool(self):
        plan = FaultPlan.random(
            seed=5,
            n_ticks=30,
            session_ids=["a", "b"],
            rate=0.5,
            kinds=[FaultKind.DROP_MESSAGE],
        )
        assert len(plan) > 0
        assert all(spec.kind is FaultKind.DROP_MESSAGE for spec in plan)

    def test_random_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.random(seed=1, n_ticks=5, session_ids=["a"], rate=1.5)
        with pytest.raises(ValueError, match="n_ticks"):
            FaultPlan.random(seed=1, n_ticks=0, session_ids=["a"])
        with pytest.raises(ValueError, match="fault kind"):
            FaultPlan.random(seed=1, n_ticks=5, session_ids=["a"], kinds=[])

    def test_round_trip_through_json(self):
        plan = FaultPlan.random(
            seed=11, n_ticks=15, session_ids=["a", "b"], rate=0.4
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(payload).to_dict() == plan.to_dict()

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="fault_plan"):
            FaultPlan.from_dict({"kind": "engine_checkpoint"})


class TestClusterKinds:
    """``worker-kill`` extends the vocabulary without disturbing it."""

    def test_worker_kill_is_a_cluster_kind(self):
        from repro.chaos.plan import (
            CLUSTER_KINDS,
            DEFAULT_RANDOM_KINDS,
            MESSAGE_KINDS,
            PHASE_KINDS,
        )

        assert FaultKind.WORKER_KILL in CLUSTER_KINDS
        assert FaultKind.WORKER_KILL not in MESSAGE_KINDS
        assert FaultKind.WORKER_KILL not in PHASE_KINDS
        # Seed stability: the default random pool predates the cluster
        # kinds and must keep its exact membership and order, or every
        # seeded storm in CI and the nightly lane silently changes.
        assert FaultKind.WORKER_KILL not in DEFAULT_RANDOM_KINDS
        assert DEFAULT_RANDOM_KINDS == PHASE_KINDS + MESSAGE_KINDS

    def test_default_random_pool_never_draws_worker_kill(self):
        plan = FaultPlan.random(
            seed=13, n_ticks=40, session_ids=["a", "b", "c"], rate=0.5
        )
        assert len(plan) > 0
        assert all(
            spec.kind is not FaultKind.WORKER_KILL for spec in plan
        )

    def test_worker_kill_round_trips_through_json(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=3, session_id="a", kind=FaultKind.WORKER_KILL
                )
            ]
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        rebuilt = FaultPlan.from_dict(payload)
        assert rebuilt.to_dict() == plan.to_dict()
        assert list(rebuilt)[0].kind is FaultKind.WORKER_KILL


class TestAdversaryKinds:
    """The adversarial vocabulary: opt-in, validated, exactly serialized."""

    def test_adversary_kinds_are_their_own_family(self):
        from repro.chaos.plan import (
            ADVERSARY_KINDS,
            AP_TARGETED_KINDS,
            CLUSTER_KINDS,
            DEFAULT_RANDOM_KINDS,
            MESSAGE_KINDS,
            PHASE_KINDS,
        )

        assert ADVERSARY_KINDS == (
            FaultKind.ROGUE_AP,
            FaultKind.AP_REPOWER,
            FaultKind.REPLAY_SCAN,
            FaultKind.SPOOF_IMU,
        )
        from repro.chaos.plan import DB_CHURN_KINDS

        assert AP_TARGETED_KINDS == (
            FaultKind.ROGUE_AP,
            FaultKind.AP_REPOWER,
            FaultKind.ENV_AP_DIE,
            FaultKind.ENV_AP_REPOWER,
        )
        assert DB_CHURN_KINDS == (
            FaultKind.ENV_AP_DIE,
            FaultKind.ENV_AP_REPOWER,
            FaultKind.ENV_DRIFT,
        )
        for kind in ADVERSARY_KINDS + DB_CHURN_KINDS:
            assert kind not in MESSAGE_KINDS
            assert kind not in PHASE_KINDS
            assert kind not in CLUSTER_KINDS
            # Seed stability: attacks and churn are opt-in; the default
            # pool's membership and order must not move.
            assert kind not in DEFAULT_RANDOM_KINDS
        assert DEFAULT_RANDOM_KINDS == PHASE_KINDS + MESSAGE_KINDS

    def test_default_pool_plans_are_unchanged_by_the_new_kinds(self):
        """Pre-adversarial seeds keep generating byte-identical plans.

        The plan document is pinned structurally: no entry of a
        default-pool storm may carry an ap_id key, so serialized plans
        from before this vocabulary existed compare equal.
        """
        plan = FaultPlan.random(
            seed=13, n_ticks=40, session_ids=["a", "b", "c"], rate=0.5
        )
        document = plan.to_dict()
        assert len(document["faults"]) > 0
        for entry in document["faults"]:
            assert "ap_id" not in entry

    @pytest.mark.parametrize(
        "kind,kwargs",
        [
            (FaultKind.ROGUE_AP, {"ap_id": 3, "magnitude": -30.0}),
            (FaultKind.AP_REPOWER, {"ap_id": 0, "magnitude": 12.0}),
            (FaultKind.REPLAY_SCAN, {}),
            (FaultKind.SPOOF_IMU, {"magnitude": 90.0}),
        ],
    )
    def test_each_kind_round_trips_through_json(self, kind, kwargs):
        plan = FaultPlan(
            [FaultSpec(tick=2, session_id="victim", kind=kind, **kwargs)]
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        rebuilt = FaultPlan.from_dict(payload)
        assert rebuilt.to_dict() == plan.to_dict()
        spec = list(rebuilt)[0]
        assert spec.kind is kind
        assert spec.ap_id == kwargs.get("ap_id")
        assert spec.magnitude == kwargs.get("magnitude", 0.0)

    def test_ap_targeted_kinds_require_an_ap_id(self):
        with pytest.raises(ValueError, match="ap_id"):
            FaultSpec(
                tick=1, session_id="a", kind=FaultKind.ROGUE_AP,
                magnitude=-30.0,
            )
        with pytest.raises(ValueError, match="ap_id"):
            FaultSpec(
                tick=1,
                session_id="a",
                kind=FaultKind.AP_REPOWER,
                magnitude=10.0,
                ap_id=-1,
            )

    def test_repower_needs_a_nonzero_shift(self):
        with pytest.raises(ValueError, match="non-zero"):
            FaultSpec(
                tick=1,
                session_id="a",
                kind=FaultKind.AP_REPOWER,
                ap_id=0,
                magnitude=0.0,
            )

    def test_spoof_needs_a_positive_amplitude(self):
        with pytest.raises(ValueError, match="positive"):
            FaultSpec(
                tick=1,
                session_id="a",
                kind=FaultKind.SPOOF_IMU,
                magnitude=0.0,
            )

    def test_random_adversarial_pool_requires_n_aps(self):
        from repro.chaos.plan import ADVERSARY_KINDS

        with pytest.raises(ValueError, match="n_aps"):
            FaultPlan.random(
                seed=1,
                n_ticks=5,
                session_ids=["a"],
                kinds=list(ADVERSARY_KINDS),
            )

    def test_random_adversarial_storm_is_valid_and_deterministic(self):
        from repro.chaos.plan import ADVERSARY_KINDS, AP_TARGETED_KINDS

        kwargs = dict(
            n_ticks=30,
            session_ids=["a", "b"],
            rate=0.5,
            kinds=list(ADVERSARY_KINDS),
            n_aps=6,
        )
        plan = FaultPlan.random(seed=21, **kwargs)
        assert len(plan) > 0
        assert {spec.kind for spec in plan} <= set(ADVERSARY_KINDS)
        for spec in plan:
            if spec.kind in AP_TARGETED_KINDS:
                assert 0 <= spec.ap_id < 6
            else:
                assert spec.ap_id is None
        assert (
            FaultPlan.random(seed=21, **kwargs).to_dict() == plan.to_dict()
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(payload).to_dict() == plan.to_dict()
