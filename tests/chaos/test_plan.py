"""Fault plans: seeded generation, validation, and exact serialization."""

from __future__ import annotations

import json

import pytest

from repro.chaos import FaultKind, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError, match="tick"):
            FaultSpec(tick=0, session_id="a", kind=FaultKind.RAISE)

    def test_rejects_unknown_phase_for_phase_faults(self):
        with pytest.raises(ValueError, match="phase"):
            FaultSpec(
                tick=1, session_id="a", kind=FaultKind.RAISE, phase="digest"
            )

    def test_phase_is_ignored_for_message_faults(self):
        spec = FaultSpec(
            tick=1,
            session_id="a",
            kind=FaultKind.DROP_MESSAGE,
            phase="irrelevant",
        )
        assert spec.kind is FaultKind.DROP_MESSAGE

    def test_latency_needs_positive_magnitude(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec(
                tick=1, session_id="a", kind=FaultKind.LATENCY, magnitude=0.0
            )


class TestFaultPlan:
    def test_one_fault_per_tick_session_pair(self):
        spec = FaultSpec(tick=3, session_id="a", kind=FaultKind.DROP_MESSAGE)
        other = FaultSpec(tick=3, session_id="a", kind=FaultKind.RAISE)
        with pytest.raises(ValueError, match="multiple faults"):
            FaultPlan([spec, other])

    def test_iteration_is_tick_ordered(self):
        plan = FaultPlan(
            [
                FaultSpec(tick=5, session_id="b", kind=FaultKind.RAISE),
                FaultSpec(tick=1, session_id="a", kind=FaultKind.RAISE),
                FaultSpec(tick=5, session_id="a", kind=FaultKind.RAISE),
            ]
        )
        assert [(f.tick, f.session_id) for f in plan] == [
            (1, "a"),
            (5, "a"),
            (5, "b"),
        ]
        assert len(plan) == 3
        assert len(plan.faults_at(5)) == 2
        assert plan.faults_at(2) == ()

    def test_random_is_deterministic_in_the_seed(self):
        kwargs = dict(
            n_ticks=20, session_ids=["a", "b", "c", "d"], rate=0.3
        )
        first = FaultPlan.random(seed=77, **kwargs)
        second = FaultPlan.random(seed=77, **kwargs)
        assert first.to_dict() == second.to_dict()
        assert len(first) > 0
        different = FaultPlan.random(seed=78, **kwargs)
        assert first.to_dict() != different.to_dict()

    def test_random_respects_the_kind_pool(self):
        plan = FaultPlan.random(
            seed=5,
            n_ticks=30,
            session_ids=["a", "b"],
            rate=0.5,
            kinds=[FaultKind.DROP_MESSAGE],
        )
        assert len(plan) > 0
        assert all(spec.kind is FaultKind.DROP_MESSAGE for spec in plan)

    def test_random_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.random(seed=1, n_ticks=5, session_ids=["a"], rate=1.5)
        with pytest.raises(ValueError, match="n_ticks"):
            FaultPlan.random(seed=1, n_ticks=0, session_ids=["a"])
        with pytest.raises(ValueError, match="fault kind"):
            FaultPlan.random(seed=1, n_ticks=5, session_ids=["a"], kinds=[])

    def test_round_trip_through_json(self):
        plan = FaultPlan.random(
            seed=11, n_ticks=15, session_ids=["a", "b"], rate=0.4
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(payload).to_dict() == plan.to_dict()

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="fault_plan"):
            FaultPlan.from_dict({"kind": "engine_checkpoint"})


class TestClusterKinds:
    """``worker-kill`` extends the vocabulary without disturbing it."""

    def test_worker_kill_is_a_cluster_kind(self):
        from repro.chaos.plan import (
            CLUSTER_KINDS,
            DEFAULT_RANDOM_KINDS,
            MESSAGE_KINDS,
            PHASE_KINDS,
        )

        assert FaultKind.WORKER_KILL in CLUSTER_KINDS
        assert FaultKind.WORKER_KILL not in MESSAGE_KINDS
        assert FaultKind.WORKER_KILL not in PHASE_KINDS
        # Seed stability: the default random pool predates the cluster
        # kinds and must keep its exact membership and order, or every
        # seeded storm in CI and the nightly lane silently changes.
        assert FaultKind.WORKER_KILL not in DEFAULT_RANDOM_KINDS
        assert DEFAULT_RANDOM_KINDS == PHASE_KINDS + MESSAGE_KINDS

    def test_default_random_pool_never_draws_worker_kill(self):
        plan = FaultPlan.random(
            seed=13, n_ticks=40, session_ids=["a", "b", "c"], rate=0.5
        )
        assert len(plan) > 0
        assert all(
            spec.kind is not FaultKind.WORKER_KILL for spec in plan
        )

    def test_worker_kill_round_trips_through_json(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=3, session_id="a", kind=FaultKind.WORKER_KILL
                )
            ]
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        rebuilt = FaultPlan.from_dict(payload)
        assert rebuilt.to_dict() == plan.to_dict()
        assert list(rebuilt)[0].kind is FaultKind.WORKER_KILL
