"""Adversarial storms: exact injected/skipped accounting, both harnesses.

The chaos invariant — every scheduled fault lands in exactly one of
``chaos.injected.*`` or ``chaos.skipped`` — must hold when the storm
vocabulary includes the attack kinds, through the single-engine
:class:`~repro.chaos.ChaosHarness` and through the cluster front door
at 1, 2, and 4 shards.  The cluster runs also pin that the same seeded
attack storm produces the same merged fix stream regardless of shard
count: routing must not change what the attacker achieves.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import ChaosHarness, FaultKind, FaultPlan
from repro.chaos.plan import ADVERSARY_KINDS, MESSAGE_KINDS
from repro.cluster import ClusterChaosHarness
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    build_session_services,
)
from repro.sim.evaluation import multi_session_workload

from tests.cluster.cluster_helpers import (
    checksums,
    make_cluster,
    run_cluster,
)

STORM_SEED = 20260802
N_APS = 6


@pytest.fixture(scope="module")
def world(small_study):
    fingerprint_db = small_study.fingerprint_db(N_APS)
    motion_db, _ = small_study.motion_db(N_APS)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:5]))
        for trace in small_study.test_traces[:4]
    ]
    workload = multi_session_workload(
        traces, 8, corpus_size=4, stagger_ticks=1
    )
    return fingerprint_db, motion_db, small_study.config, workload


@pytest.fixture(scope="module")
def attack_plan(world):
    """A dense mixed storm: every adversarial kind plus message faults."""
    _, _, _, workload = world
    plan = FaultPlan.random(
        seed=STORM_SEED,
        n_ticks=len(workload.ticks),
        session_ids=sorted(workload.sessions),
        rate=0.4,
        kinds=list(ADVERSARY_KINDS) + list(MESSAGE_KINDS),
        n_aps=N_APS,
    )
    kinds = {spec.kind for spec in plan}
    assert set(ADVERSARY_KINDS) <= kinds, (
        "seed did not draw every adversarial kind; pick another"
    )
    return plan


def _accounting(counters):
    injected = sum(
        value
        for name, value in counters.items()
        if name.startswith("chaos.injected.")
    )
    return injected, counters["chaos.skipped"]


class TestEngineHarnessAccounting:
    def test_injected_plus_skipped_equals_plan(self, world, attack_plan):
        fingerprint_db, motion_db, config, workload = world
        services = build_session_services(
            workload, fingerprint_db, motion_db, config
        )
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        harness = ChaosHarness(engine, attack_plan)
        for session_id, service in services.items():
            engine.add_session(session_id, service)
        for tick in workload.ticks:
            harness.tick(
                [
                    IntervalEvent(
                        session_id=interval.session_id,
                        scan=interval.scan,
                        imu=interval.imu,
                        sequence=interval.sequence,
                    )
                    for interval in tick
                    if interval.session_id in engine.sessions
                ]
            )
        counters = engine.metrics_snapshot()["engine"]["counters"]
        injected, skipped = _accounting(counters)
        assert injected + skipped == len(attack_plan)
        # The storm genuinely attacked: at least one adversarial kind
        # was injected, not just skipped away.
        adversarial_injected = sum(
            counters.get(f"chaos.injected.{kind.value}", 0)
            for kind in ADVERSARY_KINDS
        )
        assert adversarial_injected > 0

    def test_replay_waits_for_a_capture(self, world):
        """A replay scheduled before any delivered scan is skipped."""
        fingerprint_db, motion_db, config, workload = world
        services = build_session_services(
            workload, fingerprint_db, motion_db, config
        )
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        victim = sorted(workload.sessions)[0]
        from repro.chaos import FaultSpec

        plan = FaultPlan(
            [
                FaultSpec(
                    tick=1, session_id=victim, kind=FaultKind.REPLAY_SCAN
                ),
                FaultSpec(
                    tick=3, session_id=victim, kind=FaultKind.REPLAY_SCAN
                ),
            ]
        )
        harness = ChaosHarness(engine, plan)
        for session_id, service in services.items():
            engine.add_session(session_id, service)
        for tick in workload.ticks[:4]:
            harness.tick(
                [
                    IntervalEvent(
                        session_id=interval.session_id,
                        scan=interval.scan,
                        imu=interval.imu,
                        sequence=interval.sequence,
                    )
                    for interval in tick
                ]
            )
        counters = engine.metrics_snapshot()["engine"]["counters"]
        # Tick 1 carries the victim's first-ever scan: nothing captured
        # yet, so the replay must reconcile as skipped.  By tick 3 a
        # capture exists and the replay injects.
        assert counters["chaos.skipped"] == 1
        assert counters["chaos.injected.replay-scan"] == 1


class TestClusterHarnessAccounting:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_injected_plus_skipped_equals_plan(
        self, world, attack_plan, tmp_path, n_shards
    ):
        _, _, _, workload = world
        coordinator = make_cluster(world, tmp_path, n_shards)
        harness = ClusterChaosHarness(coordinator, attack_plan)
        run_cluster(coordinator, workload, harness=harness)
        counters = coordinator.metrics_snapshot()["coordinator"]["counters"]
        injected, skipped = _accounting(counters)
        assert injected + skipped == len(attack_plan)
        coordinator.shutdown()

    def test_attack_outcome_is_shard_count_invariant(
        self, world, attack_plan, tmp_path
    ):
        """The same storm yields bitwise-equal streams at 1 and 2 shards."""
        _, _, _, workload = world
        streams = {}
        for n_shards in (1, 2):
            coordinator = make_cluster(
                world, tmp_path / str(n_shards), n_shards
            )
            harness = ClusterChaosHarness(coordinator, attack_plan)
            fixes = run_cluster(coordinator, workload, harness=harness)
            streams[n_shards] = checksums(
                {
                    sid: [fix for fix in stream if fix is not None]
                    for sid, stream in fixes.items()
                }
            )
            coordinator.shutdown()
        assert streams[1] == streams[2]
