"""Chaos storms: the harness mechanics and the never-silently-wrong invariant.

The central assertion: under a seeded 10%+-per-tick fault storm, every
session the storm never touched produces a fix stream *bitwise equal*
to the fault-free run — and every answer the storm did touch is either
flagged degraded, quarantined, or absent.  Nothing is silently wrong.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.chaos import ChaosError, ChaosHarness, FaultKind, FaultPlan, FaultSpec
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    build_session_services,
    fix_stream_checksum,
    serve_batched,
)
from repro.sim.evaluation import multi_session_workload

N_SESSIONS = 8
VICTIMS = ("user-0000", "user-0001", "user-0002", "user-0003")
STORM_SEED = 20260806
STORM_RATE = 0.25


@pytest.fixture(scope="module")
def storm_world(small_study):
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:6]))
        for trace in small_study.test_traces[:4]
    ]
    workload = multi_session_workload(
        traces, N_SESSIONS, corpus_size=4, stagger_ticks=1
    )
    return fingerprint_db, motion_db, small_study.config, workload


def _events_of(tick, engine):
    return [
        IntervalEvent(
            session_id=interval.session_id,
            scan=interval.scan,
            imu=interval.imu,
            sequence=interval.sequence,
        )
        for interval in tick
        if interval.session_id in engine.sessions
    ]


def _run_storm(storm_world, plan):
    """Serve the workload under the plan; returns (engine, streams, outcomes)."""
    fingerprint_db, motion_db, config, workload = storm_world
    services = build_session_services(
        workload, fingerprint_db, motion_db, config
    )
    engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    harness = ChaosHarness(engine, plan)
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    streams = {sid: [] for sid in workload.sessions}
    outcomes = []
    tick_served_fixes = []  # one {session_id: fix} per tick, served only
    for tick in workload.ticks:
        outcome = harness.tick_detailed(_events_of(tick, engine))
        outcomes.append(outcome)
        by_session = {}
        for session_id in outcome.served:
            fix = engine.sessions.get(session_id).last_fix
            streams[session_id].append(fix)
            by_session[session_id] = fix
        tick_served_fixes.append(by_session)
    return engine, streams, outcomes, tick_served_fixes


@pytest.fixture(scope="module")
def storm_plan(storm_world):
    _, _, _, workload = storm_world
    plan = FaultPlan.random(
        seed=STORM_SEED,
        n_ticks=len(workload.ticks),
        session_ids=list(VICTIMS),
        rate=STORM_RATE,
    )
    assert len(plan) > 0, "seed produced an empty storm; pick another"
    return plan


@pytest.fixture(scope="module")
def storm_runs(storm_world, storm_plan):
    fingerprint_db, motion_db, config, workload = storm_world
    baseline_services = build_session_services(
        workload, fingerprint_db, motion_db, config
    )
    baseline_engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    baseline = serve_batched(baseline_engine, workload, baseline_services)
    chaos = _run_storm(storm_world, storm_plan)
    return baseline, chaos


class TestStormInvariant:
    def test_untouched_sessions_are_bitwise_identical(
        self, storm_world, storm_plan, storm_runs
    ):
        _, _, _, workload = storm_world
        baseline, (_, streams, _, _) = storm_runs
        untouched = set(workload.sessions) - set(VICTIMS)
        assert untouched, "the storm covered every session"
        for session_id in sorted(untouched):
            assert fix_stream_checksum(
                streams[session_id]
            ) == fix_stream_checksum(baseline.fixes[session_id]), (
                f"untouched session {session_id} diverged under chaos"
            )

    def test_every_unserved_slot_is_accounted_for(self, storm_runs):
        """No silent losses: each None fix has a reported reason."""
        _, (_, _, outcomes, _) = storm_runs
        for outcome in outcomes:
            unserved = sum(1 for fix in outcome.fixes if fix is None)
            assert unserved == (
                len(outcome.faulted)
                + len(outcome.quarantined)
                + len(outcome.stale)
            )

    def test_corrupted_answers_are_flagged_degraded(
        self, storm_world, storm_plan, storm_runs
    ):
        """A served fix built from a corrupted scan must say so."""
        _, (_, _, outcomes, tick_served_fixes) = storm_runs
        checked = 0
        for served_fixes, tick_specs in zip(
            tick_served_fixes,
            (
                storm_plan.faults_at(index)
                for index in range(1, len(outcomes) + 1)
            ),
        ):
            for spec in tick_specs:
                if spec.kind is not FaultKind.CORRUPT_SCAN:
                    continue
                fix = served_fixes.get(spec.session_id)
                if fix is None:
                    continue  # quarantined away or dropped: also fine
                assert fix.health.faults, (
                    f"corrupted scan for {spec.session_id} served an "
                    "unflagged fix"
                )
                checked += 1
        # The seed is chosen so this test actually bites.
        assert checked > 0

    def test_storm_and_response_share_one_metrics_document(
        self, storm_plan, storm_runs
    ):
        _, (engine, _, _, _) = storm_runs
        counters = engine.metrics_snapshot()["engine"]["counters"]
        injected = sum(
            value
            for name, value in counters.items()
            if name.startswith("chaos.injected.")
        )
        assert 0 < injected <= len(storm_plan)
        # Every applied RAISE fault became exactly one counted session
        # fault — injection and isolation agree.
        assert (
            counters["engine.quarantine.faults"]
            == counters["chaos.injected.raise"]
        )

    def test_every_scheduled_fault_is_accounted_for(
        self, storm_plan, storm_runs
    ):
        """injected + skipped reconciles exactly against the plan."""
        _, (engine, _, _, _) = storm_runs
        counters = engine.metrics_snapshot()["engine"]["counters"]
        injected = sum(
            value
            for name, value in counters.items()
            if name.startswith("chaos.injected.")
        )
        assert injected + counters["chaos.skipped"] == len(storm_plan)

    def test_identical_storms_converge_to_identical_state(
        self, storm_world, storm_plan, storm_runs
    ):
        """Chaos runs are reproducible down to the engine's full state."""
        _, (first_engine, first_streams, _, _) = storm_runs
        second_engine, second_streams, _, _ = _run_storm(storm_world, storm_plan)
        assert json.dumps(
            second_engine.checkpoint(), sort_keys=True
        ) == json.dumps(first_engine.checkpoint(), sort_keys=True)
        for session_id, stream in first_streams.items():
            assert fix_stream_checksum(
                second_streams[session_id]
            ) == fix_stream_checksum(stream)


@pytest.fixture()
def duo_world(small_study):
    """Two sessions over short walks, for targeted message-fault tests."""
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:4]))
        for trace in small_study.test_traces[:2]
    ]
    workload = multi_session_workload(
        traces, 2, corpus_size=2, stagger_ticks=0
    )
    services = build_session_services(
        workload, fingerprint_db, motion_db, small_study.config
    )
    engine = BatchedServingEngine(
        fingerprint_db, motion_db, small_study.config
    )
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    return engine, workload


class TestMessageFaults:
    def test_duplicate_redelivery_is_answered_idempotently(self, duo_world):
        engine, workload = duo_world
        victim = sorted(workload.sessions)[0]
        last_tick = len(workload.ticks)
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=last_tick,
                    session_id=victim,
                    kind=FaultKind.DUPLICATE_MESSAGE,
                )
            ]
        )
        harness = ChaosHarness(engine, plan)
        for tick in workload.ticks:
            harness.tick_detailed(_events_of(tick, engine))
        assert harness.pending_redeliveries == 1
        # The re-delivery lands on the first tick without a fresh event.
        outcome = harness.tick_detailed([])
        assert outcome.duplicates == (victim,)
        assert outcome.fixes == [engine.sessions.get(victim).last_fix]
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["engine.sequence.duplicates"] == 1
        assert counters["chaos.injected.duplicate-message"] == 1

    def test_reorder_produces_a_gap_then_a_stale_drop(self, duo_world):
        engine, workload = duo_world
        victim = sorted(workload.sessions)[0]
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=3,
                    session_id=victim,
                    kind=FaultKind.REORDER_MESSAGE,
                )
            ]
        )
        harness = ChaosHarness(engine, plan)
        for tick in workload.ticks:
            harness.tick_detailed(_events_of(tick, engine))
        outcome = harness.tick_detailed([])
        assert outcome.stale == (victim,)
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["engine.sequence.gaps"] == 1
        assert counters["engine.sequence.stale"] == 1
        assert counters["chaos.injected.reorder-message"] == 1

    def test_dropped_message_never_reaches_the_engine(self, duo_world):
        engine, workload = duo_world
        victim, other = sorted(workload.sessions)
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=2, session_id=victim, kind=FaultKind.DROP_MESSAGE
                )
            ]
        )
        harness = ChaosHarness(engine, plan)
        harness.tick_detailed(_events_of(workload.ticks[0], engine))
        outcome = harness.tick_detailed(_events_of(workload.ticks[1], engine))
        assert victim not in outcome.served
        assert other in outcome.served
        assert len(outcome.fixes) == 1  # the event list shrank
        # The next delivery shows the engine a sequence gap, then serves.
        outcome = harness.tick_detailed(_events_of(workload.ticks[2], engine))
        assert victim in outcome.served
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["chaos.injected.drop-message"] == 1
        assert counters["engine.sequence.gaps"] == 1

    def test_truncated_scan_halves_the_vector(self, duo_world):
        engine, workload = duo_world
        victim = sorted(workload.sessions)[0]
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=2, session_id=victim, kind=FaultKind.TRUNCATE_SCAN
                )
            ]
        )
        harness = ChaosHarness(engine, plan)
        harness.tick_detailed(_events_of(workload.ticks[0], engine))
        outcome = harness.tick_detailed(_events_of(workload.ticks[1], engine))
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["chaos.injected.truncate-scan"] == 1
        # The resilient service flags or coasts — it never serves a
        # clean-looking fix from half a scan.
        fix = engine.sessions.get(victim).last_fix
        if victim in outcome.served:
            assert fix.health.faults


class TestHarnessMechanics:
    def test_refuses_an_engine_with_an_injector(self, duo_world):
        engine, _ = duo_world
        engine.fault_injector = lambda phase, session_id: None
        with pytest.raises(ValueError, match="fault injector"):
            ChaosHarness(engine, FaultPlan())

    def test_uninstall_restores_the_engine_seams(self, duo_world):
        engine, _ = duo_world
        clock = engine.clock
        harness = ChaosHarness(engine, FaultPlan())
        assert engine.fault_injector == harness._inject
        harness.uninstall()
        assert engine.fault_injector is None
        assert engine.clock is clock

    def test_latency_fault_skews_the_clock_not_the_wall(self, duo_world):
        engine, workload = duo_world
        victim = sorted(workload.sessions)[0]
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=1,
                    session_id=victim,
                    kind=FaultKind.LATENCY,
                    phase="prepare",
                    magnitude=2.5,
                )
            ]
        )
        harness = ChaosHarness(engine, plan)
        harness.tick_detailed(_events_of(workload.ticks[0], engine))
        assert harness.clock_skew_s == 2.5
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["chaos.injected.latency"] == 1

    def test_raise_fault_quarantines_the_victim(self, duo_world):
        engine, workload = duo_world
        victim, other = sorted(workload.sessions)
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=1,
                    session_id=victim,
                    kind=FaultKind.RAISE,
                    phase="complete",
                )
            ]
        )
        harness = ChaosHarness(engine, plan)
        outcome = harness.tick_detailed(_events_of(workload.ticks[0], engine))
        assert outcome.served == (other,)
        assert outcome.faulted[0].session_id == victim
        assert "ChaosError" in outcome.faulted[0].error

    def test_unfired_phase_fault_counts_as_skipped(self, duo_world):
        """A RAISE whose victim has no event that tick never fires —
        it must land in chaos.skipped, not silently undercount."""
        engine, workload = duo_world
        victim, other = sorted(workload.sessions)
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=1,
                    session_id=victim,
                    kind=FaultKind.RAISE,
                    phase="complete",
                )
            ]
        )
        harness = ChaosHarness(engine, plan)
        events = [
            event
            for event in _events_of(workload.ticks[0], engine)
            if event.session_id != victim
        ]
        outcome = harness.tick_detailed(events)
        assert outcome.served == (other,)
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["chaos.skipped"] == 1
        assert counters.get("chaos.injected.raise", 0) == 0

    def test_quarantined_victims_fault_counts_as_skipped(self, duo_world):
        """A phase fault aimed at a session inside its backoff window
        is never reached by the injector; it must still be counted."""
        engine, workload = duo_world
        victim, other = sorted(workload.sessions)
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=1,
                    session_id=victim,
                    kind=FaultKind.RAISE,
                    phase="prepare",
                ),
                FaultSpec(
                    tick=2,
                    session_id=victim,
                    kind=FaultKind.RAISE,
                    phase="prepare",
                ),
            ]
        )
        harness = ChaosHarness(engine, plan)
        outcome = harness.tick_detailed(_events_of(workload.ticks[0], engine))
        assert outcome.faulted[0].action == "quarantined"
        # Tick 2: the victim is inside its backoff window, so the
        # scheduled fault has nowhere to fire.
        outcome = harness.tick_detailed(_events_of(workload.ticks[1], engine))
        assert victim in outcome.quarantined
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["chaos.injected.raise"] == 1
        assert counters["chaos.skipped"] == 1

    def test_unroutable_events_are_filtered_not_fatal(self, duo_world):
        engine, workload = duo_world
        victim, other = sorted(workload.sessions)
        engine.remove_session(victim)
        harness = ChaosHarness(engine, FaultPlan())
        events = [
            IntervalEvent(
                session_id=interval.session_id,
                scan=interval.scan,
                imu=interval.imu,
                sequence=interval.sequence,
            )
            for interval in workload.ticks[0]
        ]
        outcome = harness.tick_detailed(events)
        assert outcome.served == (other,)
        counters = engine.metrics_snapshot()["engine"]["counters"]
        assert counters["chaos.unroutable"] == 1


class TestLogicalClockStorms:
    """Latency skew on an injectable logical clock: no wall time anywhere."""

    def test_latency_skew_shedding_is_deterministic(self, storm_world):
        """Deadline shedding under injected latency is schedule-pure.

        The engine runs on a :class:`~repro.serving.LogicalClock`
        (auto-advancing per reading) with a tick budget, and the storm
        injects latency as clock skew — so *which* sessions get shed to
        the fast path is a pure function of the plan, and two runs
        agree exactly.  On a wall clock this assertion is impossible:
        machine load would move the shed boundary between runs.
        """
        from repro.serving import LogicalClock

        fingerprint_db, motion_db, config, workload = storm_world
        plan = FaultPlan(
            [
                FaultSpec(
                    tick=2,
                    session_id=victim,
                    kind=FaultKind.LATENCY,
                    phase="prepare",
                    magnitude=0.5,
                )
                for victim in VICTIMS[:2]
            ]
        )

        def run():
            services = build_session_services(
                workload, fingerprint_db, motion_db, config
            )
            engine = BatchedServingEngine(
                fingerprint_db,
                motion_db,
                config,
                tick_budget_s=0.25,
                clock=LogicalClock(auto_advance_s=0.01),
            )
            harness = ChaosHarness(engine, plan)
            for session_id, service in services.items():
                engine.add_session(session_id, service)
            shed = []
            for tick in workload.ticks:
                outcome = harness.tick_detailed(_events_of(tick, engine))
                shed.append(outcome.shed)
            return shed, harness.clock_skew_s

        first_shed, first_skew = run()
        second_shed, second_skew = run()
        assert first_shed == second_shed
        assert first_skew == second_skew == 1.0
        # The injected second of skew blows the quarter-second budget:
        # the tick the faults land on must shed somebody.
        assert any(shed for shed in first_shed)
