"""Smoke tests for the example scripts.

Every example must at least import cleanly and expose ``main`` (they are
documentation that executes; broken imports are broken docs).  The two
fastest examples are also executed end to end; the rest are exercised by
their underlying APIs throughout the suite and run in CI via the
benchmark harness's identical code paths.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestAllExamples:
    def test_examples_exist(self):
        assert len(ALL_EXAMPLES) >= 9

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
    )
    def test_imports_cleanly_and_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), (
            f"{path.name} must expose a main() function"
        )

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
    )
    def test_has_run_instructions(self, path):
        text = path.read_text()
        assert "Run:" in text, f"{path.name} docstring lacks run instructions"


class TestFastExamplesRun:
    def test_fingerprint_twins_runs(self, capsys):
        module = _load(EXAMPLES_DIR / "fingerprint_twins.py")
        module.main()
        out = capsys.readouterr().out
        assert "twins" in out
        assert "MoLoc" in out
