"""Contracts of the metrics registry: instruments, snapshots, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_is_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    counter.inc(0)
    assert counter.value == 5
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_gauge_last_write_wins():
    gauge = Gauge("g")
    assert gauge.value is None
    gauge.set(3)
    gauge.set(1)
    assert gauge.value == 1
    gauge.reset()
    assert gauge.value is None


def test_histogram_bucketing_edges():
    # Boundaries are upper-exclusive: v lands in bucket i iff
    # boundaries[i-1] <= v < boundaries[i].
    histogram = Histogram("h", (1.0, 2.0, 4.0))
    for value in (0.0, 0.99, 1.0, 1.5, 2.0, 4.0, 100.0):
        histogram.observe(value)
    assert histogram.counts == (2, 2, 1, 2)
    assert histogram.count == 7
    assert histogram.sum == pytest.approx(109.49)
    view = histogram.to_dict()
    assert view["min"] == 0.0
    assert view["max"] == 100.0
    histogram.reset()
    assert histogram.counts == (0, 0, 0, 0)
    assert histogram.to_dict()["min"] is None


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError, match="at least one boundary"):
        Histogram("h", ())
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("h", (1.0, 1.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("h", (2.0, 1.0))


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c", (1.0,)) is registry.histogram("c", (1.0,))


def test_registry_rejects_cross_kind_collisions():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.gauge("x")
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.histogram("x")
    with pytest.raises(ValueError, match="non-empty string"):
        registry.counter("")


def test_registry_rejects_boundary_mismatch():
    registry = MetricsRegistry()
    registry.histogram("h", (1.0, 2.0))
    with pytest.raises(ValueError, match="already exists with boundaries"):
        registry.histogram("h", (1.0, 3.0))


def test_snapshot_is_json_plain_and_sorted():
    registry = MetricsRegistry()
    registry.counter("z.second").inc(2)
    registry.counter("a.first").inc()
    registry.gauge("g").set(7)
    registry.histogram("h", DEFAULT_SIZE_BUCKETS).observe(3)
    snapshot = registry.snapshot()
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    assert list(snapshot["counters"]) == ["a.first", "z.second"]
    assert snapshot["counters"]["z.second"] == 2
    assert snapshot["gauges"]["g"] == 7
    assert snapshot["histograms"]["h"]["count"] == 1
    # Round-trips through json without custom encoders.
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_disabled_registry_hands_out_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c")
    counter.inc(10)
    assert counter.value == 0
    with pytest.raises(ValueError):
        counter.inc(-1)  # the monotonic contract survives disabling
    gauge = registry.gauge("g")
    gauge.set(5)
    assert gauge.value is None
    histogram = registry.histogram("h", DEFAULT_LATENCY_BUCKETS_S)
    histogram.observe(0.5)
    assert histogram.count == 0
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_registry_reset_clears_everything():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(2)
    registry.histogram("h", (1.0,)).observe(0.5)
    registry.reset()
    snapshot = registry.snapshot()
    assert snapshot["counters"]["c"] == 0
    assert snapshot["gauges"]["g"] is None
    assert snapshot["histograms"]["h"]["count"] == 0


def test_aggregate_sums_counters_and_maxes_gauges():
    first = MetricsRegistry()
    second = MetricsRegistry()
    for registry, count, streak in ((first, 2, 5), (second, 3, 1)):
        registry.counter("service.fixes").inc(count)
        registry.gauge("service.coasting_streak").set(streak)
        registry.histogram("h", (1.0, 2.0)).observe(0.5 * count)
    merged = MetricsRegistry.aggregate(
        [first.snapshot(), second.snapshot()]
    )
    assert merged["counters"]["service.fixes"] == 5
    assert merged["gauges"]["service.coasting_streak"] == 5
    histogram = merged["histograms"]["h"]
    assert histogram["count"] == 2
    assert histogram["counts"] == [0, 2, 0]  # 1.0 and 1.5 both in [1, 2)
    assert histogram["sum"] == pytest.approx(2.5)
    assert histogram["min"] == 1.0 and histogram["max"] == 1.5


def test_aggregate_rejects_boundary_mismatch():
    first = MetricsRegistry()
    second = MetricsRegistry()
    first.histogram("h", (1.0,)).observe(0.5)
    second.histogram("h", (2.0,)).observe(0.5)
    with pytest.raises(ValueError, match="boundary mismatch"):
        MetricsRegistry.aggregate([first.snapshot(), second.snapshot()])


def test_aggregate_of_nothing_is_empty():
    assert MetricsRegistry.aggregate([]) == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_aggregate_merges_disjoint_keys_by_union():
    """An instrument only some shards ever touched still aggregates.

    Shards create instruments lazily, so cross-shard merges routinely
    see disjoint key sets; each lone value must pass through unchanged.
    """
    first = MetricsRegistry()
    second = MetricsRegistry()
    first.counter("only.first").inc(2)
    second.counter("only.second").inc(3)
    first.histogram("h.first", (1.0,)).observe(0.5)
    second.gauge("g.second").set(7)
    merged = MetricsRegistry.aggregate([first.snapshot(), second.snapshot()])
    assert merged["counters"] == {"only.first": 2, "only.second": 3}
    assert merged["gauges"]["g.second"] == 7
    assert merged["histograms"]["h.first"]["count"] == 1


def test_aggregate_rejects_schema_version_mismatch():
    first = dict(MetricsRegistry().snapshot(), schema=1)
    second = dict(MetricsRegistry().snapshot(), schema=2)
    with pytest.raises(ValueError, match="schema"):
        MetricsRegistry.aggregate([first, second])


def test_aggregate_carries_the_agreed_schema():
    stamped = dict(MetricsRegistry().snapshot(), schema=1)
    unstamped = MetricsRegistry().snapshot()  # pre-stamp producers join
    merged = MetricsRegistry.aggregate([unstamped, stamped])
    assert merged["schema"] == 1
    assert "schema" not in MetricsRegistry.aggregate([unstamped])


def test_quantile_empty_and_bounds():
    histogram = Histogram("h", (1.0, 2.0, 4.0))
    assert histogram.quantile(0.5) is None
    for value in (0.5, 1.5, 3.0, 8.0):
        histogram.observe(value)
    assert histogram.quantile(0.0) == 0.5
    assert histogram.quantile(1.0) == 8.0
    with pytest.raises(ValueError):
        histogram.quantile(-0.01)
    with pytest.raises(ValueError):
        histogram.quantile(1.01)


def test_quantile_interpolates_within_buckets():
    histogram = Histogram("h", (10.0, 20.0, 40.0))
    # 10 observations in [10, 20): the median sits mid-bucket.
    for _ in range(10):
        histogram.observe(15.0)
    assert histogram.quantile(0.5) == pytest.approx(15.0)
    # A skewed split: 9 in the first bucket, 1 far out in the overflow.
    histogram.reset()
    for _ in range(9):
        histogram.observe(5.0)
    histogram.observe(100.0)
    p50 = histogram.quantile(0.5)
    p99 = histogram.quantile(0.99)
    assert 5.0 <= p50 <= 10.0
    assert p50 <= p99 <= 100.0


def test_quantile_is_clamped_to_observed_range():
    histogram = Histogram("h", (10.0, 20.0))
    histogram.observe(12.0)
    histogram.observe(13.0)
    # Interpolation alone would wander toward the bucket edges; the
    # observed range pins it.
    for q in (0.01, 0.25, 0.5, 0.75, 0.99):
        assert 12.0 <= histogram.quantile(q) <= 13.0


def test_quantile_single_observation_is_that_observation():
    histogram = Histogram("h", (10.0, 20.0))
    histogram.observe(17.5)
    for q in (0.0, 0.5, 1.0):
        assert histogram.quantile(q) == 17.5
