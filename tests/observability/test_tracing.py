"""Contracts of the span tracer: histograms, last-view, hook isolation."""

from __future__ import annotations

import pytest

from repro.observability import MetricsRegistry, SpanTracer


def test_span_records_into_histogram_and_last():
    registry = MetricsRegistry()
    tracer = SpanTracer(registry, prefix="engine.phase")
    with tracer.span("prepare"):
        pass
    histogram = registry.histogram("engine.phase.prepare_s")
    assert histogram.count == 1
    assert tracer.last["prepare"] == pytest.approx(histogram.sum)
    assert tracer.phase_snapshot() == tracer.last
    assert tracer.phase_snapshot() is not tracer.last  # a copy


def test_record_accepts_external_durations():
    tracer = SpanTracer(prefix="p")
    tracer.record("transitions", 0.25)
    tracer.record("transitions", 0.5)
    assert tracer.last["transitions"] == 0.5
    assert tracer.registry.histogram("p.transitions_s").count == 2


def test_span_records_even_when_body_raises():
    tracer = SpanTracer(prefix="p")
    with pytest.raises(RuntimeError):
        with tracer.span("match"):
            raise RuntimeError("boom")
    assert "match" in tracer.last
    assert tracer.registry.histogram("p.match_s").count == 1


def test_hooks_fire_and_are_error_isolated():
    tracer = SpanTracer(prefix="p")
    calls = []
    tracer.add_hook(lambda name, duration: calls.append((name, duration)))

    def bad_hook(name, duration):
        raise ValueError("hook bug")

    tracer.add_hook(bad_hook)
    assert tracer.last_hook_error is None
    tracer.record("phase", 0.1)  # must not raise
    assert calls == [("phase", 0.1)]
    assert tracer.registry.counter("p.hook_errors").value == 1
    assert "hook bug" in tracer.last_hook_error
    tracer.remove_hook(bad_hook)
    tracer.record("phase", 0.2)
    assert tracer.registry.counter("p.hook_errors").value == 1
    assert len(calls) == 2
    with pytest.raises(ValueError):
        tracer.remove_hook(bad_hook)  # already removed
