"""Contracts of the tick profiler: payloads and the ring buffer."""

from __future__ import annotations

import json

import pytest

from repro.observability import TickProfile, TickProfiler


def _profile(tick: int) -> TickProfile:
    return TickProfile(
        tick=tick,
        batch_size=4,
        duration_s=0.01 * tick,
        phases={"prepare": 0.001, "match": 0.002},
    )


def test_profile_to_dict_is_json_plain():
    view = _profile(3).to_dict()
    assert view == {
        "tick": 3,
        "batch_size": 4,
        "duration_s": pytest.approx(0.03),
        "phases": {"prepare": 0.001, "match": 0.002},
    }
    json.dumps(view)


def test_profiler_keeps_a_bounded_ring():
    profiler = TickProfiler(max_ticks=3)
    for tick in range(1, 6):
        profiler(_profile(tick))
    retained = [profile.tick for profile in profiler.profiles]
    assert retained == [3, 4, 5]  # oldest dropped, order kept
    assert [entry["tick"] for entry in profiler.to_json()] == [3, 4, 5]


def test_profiler_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="max_ticks"):
        TickProfiler(max_ticks=0)
