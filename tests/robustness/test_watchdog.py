"""Tests for the divergence watchdog."""

from __future__ import annotations

import pytest

from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.robustness.watchdog import DivergenceWatchdog, WatchdogAction


def stats(offset: float = 5.0) -> PairStatistics:
    return PairStatistics(
        direction_mean_deg=90.0,
        direction_std_deg=5.0,
        offset_mean_m=offset,
        offset_std_m=0.3,
        n_observations=10,
    )


@pytest.fixture()
def motion_db() -> MotionDatabase:
    return MotionDatabase({(1, 2): stats(5.0), (2, 3): stats(5.0)})


@pytest.fixture()
def watchdog(motion_db) -> DivergenceWatchdog:
    return DivergenceWatchdog(motion_db, slack_m=2.0, ewma_alpha=0.5)


class TestConstruction:
    def test_invalid_alpha(self, motion_db):
        with pytest.raises(ValueError):
            DivergenceWatchdog(motion_db, ewma_alpha=0.0)

    def test_invalid_threshold_order(self, motion_db):
        with pytest.raises(ValueError):
            DivergenceWatchdog(motion_db, widen_below=0.2, reset_below=0.5)

    def test_invalid_slack(self, motion_db):
        with pytest.raises(ValueError):
            DivergenceWatchdog(motion_db, slack_m=0.0)

    def test_invalid_widen_factor(self, motion_db):
        with pytest.raises(ValueError):
            DivergenceWatchdog(motion_db, widen_factor=0)


class TestJudgement:
    def test_first_fix_is_neutral(self, watchdog):
        verdict = watchdog.observe(1, 5.0)
        assert verdict.plausible
        assert verdict.confidence == 1.0
        assert verdict.action is WatchdogAction.NONE

    def test_explainable_hop_is_plausible(self, watchdog):
        watchdog.observe(1, None)
        verdict = watchdog.observe(2, 5.0)  # db offset 5 <= 5 + slack
        assert verdict.plausible
        assert verdict.confidence == 1.0

    def test_self_transition_is_plausible(self, watchdog):
        watchdog.observe(1, None)
        verdict = watchdog.observe(1, 0.0)
        assert verdict.plausible

    def test_unknown_pair_is_a_teleport(self, watchdog):
        watchdog.observe(1, None)
        verdict = watchdog.observe(3, 1.0)  # (1, 3) unknown, no plan
        assert not verdict.plausible
        assert verdict.confidence < 1.0

    def test_hop_exceeding_measured_offset_is_implausible(self, watchdog):
        watchdog.observe(1, None)
        verdict = watchdog.observe(2, 0.5)  # db says 5 m apart, measured 0.5
        assert not verdict.plausible

    def test_missing_motion_is_neutral(self, watchdog):
        watchdog.observe(1, None)
        watchdog.observe(3, 1.0)  # drops confidence
        lowered = watchdog.confidence
        verdict = watchdog.observe(1, None)  # unjudgeable: no EWMA update
        assert verdict.confidence == lowered

    def test_plan_coordinates_sharpen_distance(self, motion_db, hall):
        plan = hall.plan
        watchdog = DivergenceWatchdog(motion_db, plan=plan, slack_m=2.0)
        ids = plan.location_ids
        far_pair = max(
            ((a, b) for a in ids for b in ids),
            key=lambda p: plan.position_of(p[0]).distance_to(
                plan.position_of(p[1])
            ),
        )
        watchdog.observe(far_pair[0], None)
        verdict = watchdog.observe(far_pair[1], 1.0)
        assert not verdict.plausible


def teleport_until(watchdog, action, max_hops=20):
    """Alternate between the unconnected fixes 1 and 3 until ``action``."""
    fixes = [3, 1] * (max_hops // 2)
    for fix in fixes:
        verdict = watchdog.observe(fix, 1.0)
        if verdict.action is action:
            return verdict
    raise AssertionError(f"{action} never requested in {max_hops} hops")


class TestEscalation:
    def test_sustained_divergence_widens_then_resets(self, watchdog):
        watchdog.observe(1, None)
        actions = []
        for fix in [3, 1, 3, 1, 3, 1]:
            actions.append(watchdog.observe(fix, 1.0).action)
        assert WatchdogAction.WIDEN in actions
        assert WatchdogAction.RESET in actions
        assert actions.index(WatchdogAction.WIDEN) < actions.index(
            WatchdogAction.RESET
        )

    def test_reset_verdict_reports_pre_reset_confidence(self, watchdog):
        watchdog.observe(1, None)
        verdict = teleport_until(watchdog, WatchdogAction.RESET)
        assert verdict.confidence < 0.25
        # The watchdog itself restarts fully confident.
        assert watchdog.confidence == 1.0

    def test_after_reset_the_next_fix_is_unjudged(self, watchdog):
        watchdog.observe(1, None)
        teleport_until(watchdog, WatchdogAction.RESET)
        verdict = watchdog.observe(3, 1.0)  # no previous fix anymore
        assert verdict.plausible
        assert verdict.confidence == 1.0

    def test_recovery_restores_confidence(self, watchdog):
        watchdog.observe(1, None)
        watchdog.observe(3, 1.0)
        assert watchdog.confidence < 1.0
        for _ in range(10):
            watchdog.observe(3, 0.0)  # self-transitions: all plausible
        assert watchdog.confidence > 0.95

    def test_explicit_reset(self, watchdog):
        watchdog.observe(1, None)
        watchdog.observe(3, 1.0)
        watchdog.reset()
        assert watchdog.confidence == 1.0
        assert watchdog.observe(3, 1.0).confidence == 1.0
