"""Tests for the calibration monitor (stale placement-offset detection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.robustness.calibration import CalibrationMonitor


def stats(direction: float) -> PairStatistics:
    return PairStatistics(
        direction_mean_deg=direction,
        direction_std_deg=5.0,
        offset_mean_m=5.0,
        offset_std_m=0.3,
        n_observations=10,
    )


@pytest.fixture()
def motion_db() -> MotionDatabase:
    return MotionDatabase(
        {(1, 2): stats(90.0), (2, 3): stats(0.0), (3, 4): stats(270.0)}
    )


@pytest.fixture()
def monitor(motion_db) -> CalibrationMonitor:
    return CalibrationMonitor(motion_db, drift_threshold_deg=40.0, window=3)


def observe_shifted_walk(monitor, shift_deg, jitter=(0.0, 0.0, 0.0)):
    """Walk 1→2→3→4 with every measured direction rotated by ``shift_deg``."""
    hops = [(1, 2, 90.0), (2, 3, 0.0), (3, 4, 270.0)]
    for (a, b, course), eps in zip(hops, jitter):
        measured = (course + shift_deg + eps) % 360.0
        readings = np.full(8, (course + shift_deg + eps) % 360.0)
        monitor.observe(a, b, measured, readings)


class TestConstruction:
    def test_invalid_threshold(self, motion_db):
        with pytest.raises(ValueError):
            CalibrationMonitor(motion_db, drift_threshold_deg=0.0)

    def test_invalid_window(self, motion_db):
        with pytest.raises(ValueError):
            CalibrationMonitor(motion_db, window=1)

    def test_invalid_resultant(self, motion_db):
        with pytest.raises(ValueError):
            CalibrationMonitor(motion_db, min_resultant=0.0)


class TestQualification:
    def test_no_previous_anchor_ignored(self, monitor):
        monitor.observe(None, 2, 90.0, np.full(4, 90.0))
        assert monitor.residuals == ()

    def test_self_transition_ignored(self, monitor):
        monitor.observe(2, 2, 90.0, np.full(4, 90.0))
        assert monitor.residuals == ()

    def test_unknown_pair_ignored(self, monitor):
        monitor.observe(1, 4, 90.0, np.full(4, 90.0))
        assert monitor.residuals == ()

    def test_qualifying_hop_records_signed_residual(self, monitor):
        monitor.observe(1, 2, 120.0, np.full(4, 120.0))
        assert monitor.residuals == (30.0,)
        monitor.observe(2, 3, 350.0, np.full(4, 350.0))
        assert monitor.residuals[-1] == pytest.approx(-10.0)


class TestDetection:
    def test_partial_window_never_fires(self, monitor):
        observe_shifted_walk(monitor, 120.0)
        # Only fill two of three slots.
        partial = CalibrationMonitor(monitor._motion_db, window=3)
        partial.observe(1, 2, 210.0, np.full(4, 210.0))
        partial.observe(2, 3, 120.0, np.full(4, 120.0))
        assert not partial.drift_detected

    def test_systematic_rotation_detected(self, monitor):
        observe_shifted_walk(monitor, 120.0, jitter=(2.0, -3.0, 1.0))
        assert monitor.drift_detected

    def test_negative_rotation_detected(self, monitor):
        observe_shifted_walk(monitor, -90.0)
        assert monitor.drift_detected

    def test_small_rotation_not_drift(self, monitor):
        """Residuals agree but stay inside compass-noise territory."""
        observe_shifted_walk(monitor, 10.0)
        assert not monitor.drift_detected

    def test_scattered_residuals_not_drift(self, monitor):
        """Large but inconsistent residuals are twin mismatches, not a
        grip shift — the resultant gate must reject them."""
        observe_shifted_walk(monitor, 0.0, jitter=(150.0, -120.0, 60.0))
        assert not monitor.drift_detected

    def test_reset_clears_window(self, monitor):
        observe_shifted_walk(monitor, 120.0)
        monitor.reset()
        assert not monitor.drift_detected
        assert monitor.residuals == ()


class TestRecalibration:
    def test_without_evidence_raises(self, monitor):
        with pytest.raises(RuntimeError):
            monitor.recalibrate()

    def test_recovers_the_shift(self, monitor):
        """Readings rotated by a constant against known edges: the
        re-estimated placement offset is that constant."""
        observe_shifted_walk(monitor, 120.0)
        assert monitor.drift_detected
        offset = monitor.recalibrate()
        assert offset == pytest.approx(120.0, abs=1e-6)

    def test_recalibrate_resets_the_window(self, monitor):
        observe_shifted_walk(monitor, 120.0)
        monitor.recalibrate()
        assert monitor.residuals == ()
        with pytest.raises(RuntimeError):
            monitor.recalibrate()
