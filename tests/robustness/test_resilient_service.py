"""Tests for ResilientMoLocService: the degradation-aware serving facade.

The acceptance bar: under every injector in :mod:`repro.sim.failures`
the service produces a fix on 100% of intervals, the attached
:class:`HealthStatus` names the injected fault class, and degraded-input
accuracy beats the plain service where the fault is maskable.
"""

from __future__ import annotations

import pytest

from repro.motion.pedestrian import BodyProfile
from repro.robustness import (
    FaultType,
    ResilientFix,
    ResilientMoLocService,
    ServingMode,
)
from repro.service import MoLocService
from repro.sim.failures import (
    inject_ap_outage,
    inject_grip_shift,
    inject_imu_dropout,
)


def make_service(study, cls=ResilientMoLocService, **kwargs):
    motion_db, _ = study.motion_db(6)
    return cls(
        study.fingerprint_db(6),
        motion_db,
        body=BodyProfile(height_m=1.72),
        config=study.config,
        **kwargs,
    )


def calibration_from_trace(trace, n_hops=2):
    return [
        (hop.imu.compass_readings, hop.imu.true_course_deg)
        for hop in trace.hops[:n_hops]
    ]


def drive(service, trace):
    """Run a whole trace through a service; return one fix per interval."""
    service._stride.step_length_m = trace.estimated_step_length_m
    service.calibrate_heading(calibration_from_trace(trace))
    fixes = [service.on_interval(trace.initial_fingerprint.rss)]
    fixes.extend(
        service.on_interval(hop.arrival_fingerprint.rss, hop.imu)
        for hop in trace.hops
    )
    return fixes


def hop_errors(plan, fixes, trace):
    truth = [trace.true_start] + [hop.true_to for hop in trace.hops]
    return [
        plan.position_of(fix.location_id).distance_to(plan.position_of(true))
        for fix, true in zip(fixes, truth)
    ]


class TestContract:
    def test_every_fix_is_resilient_and_healthy(self, small_study):
        service = make_service(small_study)
        fixes = drive(service, small_study.test_traces[0])
        for fix in fixes:
            assert isinstance(fix, ResilientFix)
            assert fix.location_id in small_study.scenario.plan.location_ids
            assert 0.0 <= fix.health.confidence <= 1.0
        assert service.last_health is fixes[-1].health

    def test_clean_trace_serves_motion_assisted_without_faults(
        self, small_study
    ):
        service = make_service(small_study)
        fixes = drive(service, small_study.test_traces[0])
        modes = [fix.health.mode for fix in fixes[1:]]
        assert modes.count(ServingMode.MOTION_ASSISTED) >= len(modes) - 1
        assert not fixes[0].health.has_fault(FaultType.IMU_DROPOUT)

    def test_motion_before_calibration_serves_instead_of_raising(
        self, small_study
    ):
        trace = small_study.test_traces[0]
        service = make_service(small_study)
        service.on_interval(trace.initial_fingerprint.rss)
        fix = service.on_interval(
            trace.hops[0].arrival_fingerprint.rss, trace.hops[0].imu
        )
        assert fix.health.mode is ServingMode.WIFI_ONLY
        assert fix.health.has_fault(FaultType.UNCALIBRATED)
        assert not fix.used_motion

    def test_end_session_resets_robustness_state(self, small_study):
        trace = small_study.test_traces[0]
        service = make_service(small_study)
        drive(service, inject_ap_outage(trace, 5))
        service.end_session()
        assert service.last_health is None
        assert service._sanitizer.consecutive_floored == (0,) * 6
        assert service._watchdog.confidence == 1.0


class TestScanFaults:
    def test_scan_loss_coasts_and_recovers(self, small_study):
        trace = small_study.test_traces[0]
        service = make_service(small_study)
        service._stride.step_length_m = trace.estimated_step_length_m
        service.calibrate_heading(calibration_from_trace(trace))
        service.on_interval(trace.initial_fingerprint.rss)

        lost = service.on_interval(None, trace.hops[0].imu)
        assert lost.health.mode is ServingMode.DEAD_RECKONING
        assert lost.health.has_fault(FaultType.SCAN_LOSS)
        assert lost.location_id in small_study.scenario.plan.location_ids

        recovered = service.on_interval(
            trace.hops[1].arrival_fingerprint.rss, trace.hops[1].imu
        )
        assert recovered.health.mode is ServingMode.MOTION_ASSISTED

    def test_cold_start_without_scan_still_fixes(self, small_study):
        service = make_service(small_study)
        fix = service.on_interval(None)
        assert fix.health.mode is ServingMode.DEAD_RECKONING
        assert fix.location_id in small_study.scenario.plan.location_ids

    def test_dead_ap_is_diagnosed_and_masked(self, small_study):
        trace = inject_ap_outage(small_study.test_traces[0], ap_id=5)
        service = make_service(small_study)
        fixes = drive(service, trace)
        flagged = [
            fix
            for fix in fixes
            if fix.health.has_fault(FaultType.DEAD_AP)
            and 5 in fix.health.masked_ap_ids
        ]
        assert len(flagged) >= len(fixes) - 3  # detector needs warm-up scans

    def test_masking_beats_the_plain_service_under_outage(self, small_study):
        plan = small_study.scenario.plan
        plain_errors, resilient_errors = [], []
        for trace in small_study.test_traces[:8]:
            broken = inject_ap_outage(trace, ap_id=5)
            plain = make_service(small_study, cls=MoLocService)
            resilient = make_service(small_study)
            plain_errors.extend(hop_errors(plan, drive(plain, broken), broken))
            resilient_errors.extend(
                hop_errors(plan, drive(resilient, broken), broken)
            )
        assert sum(resilient_errors) < sum(plain_errors)


class TestCoastingPrior:
    def test_seeded_coasting_prior_influences_next_locate(self, small_study):
        """A dead-reckoning coast seeds the localizer's retained set, and
        that seeded prior must actually shape the *next* scan-based fix —
        Eq. 6 evaluates against it and reweights the posterior away from
        fingerprint-only probabilities.  (Previously only the coast's own
        fix was asserted, so a dropped ``seed_candidates`` call would
        have passed the suite.)"""
        trace = small_study.test_traces[0]
        service = make_service(small_study)
        service._stride.step_length_m = trace.estimated_step_length_m
        service.calibrate_heading(calibration_from_trace(trace))
        service.on_interval(trace.initial_fingerprint.rss)

        coasted = service.on_interval(None, trace.hops[0].imu)
        prior = service.localizer.retained_candidates
        assert prior is not None
        # The retained set IS the coasted distribution, not the pre-loss one.
        assert sorted(lid for lid, _ in prior) == sorted(
            candidate.location_id for candidate in coasted.candidates
        )
        assert dict(prior) == {
            candidate.location_id: candidate.probability
            for candidate in coasted.candidates
        }

        recovered = service.on_interval(
            trace.hops[1].arrival_fingerprint.rss, trace.hops[1].imu
        )
        # Motion evidence against the seeded prior contributed: the
        # posterior is not the fingerprint-only distribution.
        assert recovered.used_motion
        assert any(
            candidate.probability != candidate.fingerprint_probability
            for candidate in recovered.candidates
        )


class TestImuFaults:
    def test_flat_lined_imu_serves_wifi_only(self, small_study):
        trace = inject_imu_dropout(
            small_study.test_traces[0],
            range(small_study.test_traces[0].n_hops),
        )
        service = make_service(small_study)
        fixes = drive(service, trace)
        for fix in fixes[1:]:
            assert fix.health.mode is ServingMode.WIFI_ONLY
            assert fix.health.has_fault(FaultType.IMU_DROPOUT)
            assert not fix.used_motion

    def test_missing_imu_mid_session_is_a_dropout(self, small_study):
        trace = small_study.test_traces[0]
        service = make_service(small_study)
        service._stride.step_length_m = trace.estimated_step_length_m
        service.calibrate_heading(calibration_from_trace(trace))
        service.on_interval(trace.initial_fingerprint.rss)
        fix = service.on_interval(trace.hops[0].arrival_fingerprint.rss, None)
        assert fix.health.has_fault(FaultType.IMU_DROPOUT)
        assert fix.health.mode is ServingMode.WIFI_ONLY


class TestCalibrationDrift:
    def test_grip_shift_triggers_recalibration_somewhere(self, small_study):
        """Across several shifted traces the monitor both detects the
        drift and repairs it (grip shift of 120 deg after the first hop)."""
        detected = 0
        repaired = 0
        for trace in small_study.test_traces[:8]:
            shifted = inject_grip_shift(trace, after_hop=1, shift_deg=120.0)
            service = make_service(small_study)
            fixes = drive(service, shifted)
            if any(
                fix.health.has_fault(FaultType.CALIBRATION_DRIFT)
                for fix in fixes
            ):
                detected += 1
            if any(fix.health.recalibrated for fix in fixes):
                repaired += 1
        assert detected >= 2
        assert repaired == detected

    def test_clean_traces_never_recalibrate(self, small_study):
        for trace in small_study.test_traces[:8]:
            service = make_service(small_study)
            fixes = drive(service, trace)
            assert not any(fix.health.recalibrated for fix in fixes)


class TestCombinedFaults:
    def test_combined_fault_storm_served_every_interval(self, small_study):
        """The ISSUE's combined-fault scenario: an AP outage, a grip
        shift, and an IMU dropout on the same walk.  The service must
        neither crash nor claim motion assistance on dropped-IMU hops."""
        trace = small_study.test_traces[0]
        dropped = range(0, trace.n_hops, 2)
        broken = inject_imu_dropout(
            inject_grip_shift(
                inject_ap_outage(trace, ap_id=5), after_hop=1, shift_deg=120.0
            ),
            dropped,
        )
        service = make_service(small_study)
        fixes = drive(service, broken)

        assert len(fixes) == trace.n_hops + 1  # one fix per interval
        plan_ids = small_study.scenario.plan.location_ids
        assert all(fix.location_id in plan_ids for fix in fixes)
        for index in dropped:
            fix = fixes[index + 1]  # interval 0 is the initial fix
            assert not fix.used_motion
            assert fix.health.has_fault(FaultType.IMU_DROPOUT)
        assert any(fix.health.has_fault(FaultType.DEAD_AP) for fix in fixes)

    @pytest.mark.parametrize("scan_value", [float("nan"), -150.0, 20.0])
    def test_corrupt_scan_values_never_crash(self, small_study, scan_value):
        trace = small_study.test_traces[0]
        service = make_service(small_study)
        service._stride.step_length_m = trace.estimated_step_length_m
        service.calibrate_heading(calibration_from_trace(trace))
        scan = list(trace.initial_fingerprint.rss)
        scan[2] = scan_value
        fix = service.on_interval(scan)
        assert fix.location_id in small_study.scenario.plan.location_ids
        assert fix.health.faults  # the corruption was noticed
