"""Tests for per-AP trust scoring and hysteresis quarantine."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.robustness.trust import ApTrustMonitor, TrustObservation

N_APS = 4
EXPECTED = [-50.0, -60.0, -70.0, -55.0]


def monitor(**kwargs) -> ApTrustMonitor:
    defaults = dict(
        n_aps=N_APS,
        suspect_residual_db=16.0,
        quarantine_after=2,
        parole_after=3,
        min_trusted_aps=2,
    )
    defaults.update(kwargs)
    return ApTrustMonitor(**defaults)


def lying_scan(ap_id: int, lie_db: float = 25.0):
    scan = list(EXPECTED)
    scan[ap_id] += lie_db
    return scan


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_aps": 0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"suspect_residual_db": 0.0},
            {"quarantine_after": 0},
            {"parole_after": 0},
            {"min_trusted_aps": 0},
            {"max_attributable": 0},
            # Repair must be the rarer, higher bar.
            {"suspect_residual_db": 20.0, "repair_residual_db": 20.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        merged = dict(n_aps=N_APS)
        merged.update(kwargs)
        with pytest.raises(ValueError):
            ApTrustMonitor(**merged)

    def test_fresh_monitor_trusts_everyone(self):
        m = monitor()
        assert m.quarantined_ap_ids == ()
        assert m.trust_scores == (1.0,) * N_APS
        assert m.residual_means == (None,) * N_APS
        assert m.residual_variances == (None,) * N_APS

    def test_config_is_json_plain(self):
        m = monitor()
        config = m.config
        assert json.loads(json.dumps(config)) == config
        assert config["quarantine_after"] == 2


class TestResidualStatistics:
    def test_first_observation_seeds_the_ewma(self):
        m = monitor()
        m.observe(lying_scan(1, 10.0), EXPECTED)
        assert m.residual_means[1] == pytest.approx(10.0)
        assert m.residual_means[0] == pytest.approx(0.0)
        assert m.residual_variances[1] == pytest.approx(0.0)

    def test_ewma_converges_toward_a_persistent_residual(self):
        m = monitor(  # statistics only: thresholds out of reach
            suspect_residual_db=50.0, repair_residual_db=90.0
        )
        for _ in range(40):
            m.observe(lying_scan(2, 12.0), EXPECTED)
        assert m.residual_means[2] == pytest.approx(12.0, abs=1e-6)
        assert m.residual_variances[2] == pytest.approx(0.0, abs=1e-6)

    def test_trust_score_halves_at_the_suspect_threshold(self):
        m = monitor(suspect_residual_db=16.0, quarantine_after=99)
        m.observe(lying_scan(3, 16.0), EXPECTED)
        assert m.trust_scores[3] == pytest.approx(0.5)

    def test_inactive_aps_carry_no_information(self):
        m = monitor()
        m.observe(
            lying_scan(0, 30.0), EXPECTED, active_aps=(False, True, True, True)
        )
        assert m.residual_means[0] is None
        assert m.trust_scores[0] == 1.0

    def test_length_mismatches_raise(self):
        m = monitor()
        with pytest.raises(ValueError, match="4-AP"):
            m.observe([-50.0], EXPECTED)
        with pytest.raises(ValueError, match="active_aps"):
            m.observe(EXPECTED, EXPECTED, active_aps=(True,))


class TestHysteresis:
    def test_quarantine_needs_the_full_streak(self):
        m = monitor(quarantine_after=3)
        assert m.observe(lying_scan(1), EXPECTED) == TrustObservation((), ())
        assert m.observe(lying_scan(1), EXPECTED) == TrustObservation((), ())
        result = m.observe(lying_scan(1), EXPECTED)
        assert result.newly_quarantined == (1,)
        assert m.quarantined_ap_ids == (1,)

    def test_one_clean_interval_resets_the_streak(self):
        m = monitor(quarantine_after=2)
        m.observe(lying_scan(1), EXPECTED)
        m.observe(EXPECTED, EXPECTED)  # honest again
        m.observe(lying_scan(1), EXPECTED)
        assert m.quarantined_ap_ids == ()

    def test_parole_after_sustained_honesty(self):
        m = monitor(quarantine_after=2, parole_after=3)
        m.observe(lying_scan(1), EXPECTED)
        m.observe(lying_scan(1), EXPECTED)
        assert m.quarantined_ap_ids == (1,)
        m.observe(EXPECTED, EXPECTED)
        m.observe(EXPECTED, EXPECTED)
        assert m.quarantined_ap_ids == (1,)  # not yet
        result = m.observe(EXPECTED, EXPECTED)
        assert result.newly_paroled == (1,)
        assert m.quarantined_ap_ids == ()

    def test_relapse_during_parole_countdown_holds_quarantine(self):
        m = monitor(quarantine_after=2, parole_after=3)
        m.observe(lying_scan(1), EXPECTED)
        m.observe(lying_scan(1), EXPECTED)
        m.observe(EXPECTED, EXPECTED)
        m.observe(lying_scan(1), EXPECTED)  # the attacker is back
        m.observe(EXPECTED, EXPECTED)
        m.observe(EXPECTED, EXPECTED)
        assert m.quarantined_ap_ids == (1,)

    def test_quarantine_floor_is_never_crossed(self):
        m = monitor(min_trusted_aps=3, quarantine_after=2)
        for _ in range(2):
            m.observe(lying_scan(0), EXPECTED)
        assert m.quarantined_ap_ids == (0,)  # 3 trusted left: allowed
        for _ in range(2):
            m.observe(lying_scan(1), EXPECTED)
        # Benching AP 1 would leave only 2 trusted APs — refused.
        assert m.quarantined_ap_ids == (0,)

    def test_reset_forgets_everything(self):
        m = monitor(quarantine_after=2)
        m.observe(lying_scan(1), EXPECTED)
        m.observe(lying_scan(1), EXPECTED)
        m.reset()
        assert m.quarantined_ap_ids == ()
        assert m.residual_means == (None,) * N_APS


class TestBlameAttribution:
    def test_many_suspects_convict_nobody(self):
        """Two trusted APs suspect at once = a wrong estimate, not liars."""
        m = monitor(quarantine_after=2)
        scan = list(EXPECTED)
        scan[0] += 25.0
        scan[1] -= 25.0
        for _ in range(5):
            result = m.observe(scan, EXPECTED)
            assert result == TrustObservation((), ())
        assert m.quarantined_ap_ids == ()
        # EWMA observability still tracked the residuals.
        assert m.residual_means[0] == pytest.approx(25.0)

    def test_ambiguous_interval_holds_streaks_rather_than_resetting(self):
        m = monitor(quarantine_after=2)
        m.observe(lying_scan(1), EXPECTED)  # streak 1 for AP 1
        scan = list(EXPECTED)
        scan[0] += 25.0
        scan[1] += 25.0
        m.observe(scan, EXPECTED)  # ambiguous: streak must hold at 1
        result = m.observe(lying_scan(1), EXPECTED)
        assert result.newly_quarantined == (1,)

    def test_quarantined_aps_do_not_consume_the_budget(self):
        """A persisting attack on a benched AP must not veto detection
        of a second rogue."""
        m = monitor(quarantine_after=2)
        m.observe(lying_scan(0), EXPECTED)
        m.observe(lying_scan(0), EXPECTED)
        assert m.quarantined_ap_ids == (0,)
        both = list(EXPECTED)
        both[0] += 25.0  # still lying from the bench
        both[1] += 25.0  # the new rogue
        m.observe(both, EXPECTED)
        result = m.observe(both, EXPECTED)
        assert result.newly_quarantined == (1,)
        assert m.quarantined_ap_ids == (0, 1)


class TestAttributableSuspect:
    def test_single_egregious_residual_is_named(self):
        m = monitor(repair_residual_db=30.0)
        assert m.attributable_suspect(lying_scan(2, 35.0), EXPECTED) == 2

    def test_no_suspect_below_the_repair_bar(self):
        m = monitor(repair_residual_db=30.0)
        assert m.attributable_suspect(lying_scan(2, 25.0), EXPECTED) is None

    def test_two_egregious_residuals_repair_nothing(self):
        m = monitor(repair_residual_db=30.0)
        scan = list(EXPECTED)
        scan[0] += 35.0
        scan[2] -= 35.0
        assert m.attributable_suspect(scan, EXPECTED) is None

    def test_masked_slots_are_ignored(self):
        m = monitor(repair_residual_db=30.0)
        assert (
            m.attributable_suspect(
                lying_scan(0, 40.0),
                EXPECTED,
                active_aps=(False, True, True, True),
            )
            is None
        )

    def test_is_pure(self):
        m = monitor()
        before = m.state_dict()
        m.attributable_suspect(lying_scan(1, 40.0), EXPECTED)
        assert m.state_dict() == before

    def test_length_mismatch_raises(self):
        m = monitor()
        with pytest.raises(ValueError):
            m.attributable_suspect([-50.0], EXPECTED)


class TestStateRoundTrip:
    def _exercised(self) -> ApTrustMonitor:
        m = monitor(quarantine_after=2, parole_after=3)
        m.observe(lying_scan(1), EXPECTED)
        m.observe(lying_scan(1), EXPECTED)
        m.observe(EXPECTED, EXPECTED)
        return m

    def test_round_trip_restores_exact_decisions(self):
        source = self._exercised()
        clone = monitor(quarantine_after=2, parole_after=3)
        clone.load_state_dict(source.state_dict())
        assert clone.state_dict() == source.state_dict()
        # The next decisions match bitwise, parole countdown included.
        for _ in range(2):
            assert clone.observe(EXPECTED, EXPECTED) == source.observe(
                EXPECTED, EXPECTED
            )
            assert clone.state_dict() == source.state_dict()

    def test_state_survives_json(self):
        source = self._exercised()
        encoded = json.dumps(source.state_dict(), sort_keys=True)
        clone = monitor(quarantine_after=2, parole_after=3)
        clone.load_state_dict(json.loads(encoded))
        assert clone.state_dict() == source.state_dict()

    def test_wrong_width_checkpoint_is_rejected(self):
        source = self._exercised()
        narrow = ApTrustMonitor(n_aps=2)
        with pytest.raises(ValueError, match="2-AP trust monitor"):
            narrow.load_state_dict(source.state_dict())

    @given(
        residuals=st.lists(
            st.lists(
                st.floats(-40.0, 40.0, allow_nan=False),
                min_size=N_APS,
                max_size=N_APS,
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_state_dict_fixpoint_property(self, residuals):
        """load_state_dict(state_dict()) is exact after any history."""
        m = monitor()
        for offsets in residuals:
            scan = [e + r for e, r in zip(EXPECTED, offsets)]
            m.observe(scan, EXPECTED)
        state = m.state_dict()
        clone = monitor()
        clone.load_state_dict(json.loads(json.dumps(state)))
        assert clone.state_dict() == state
        # And the clone's next observation is bitwise the same decision.
        probe = [e + 1.0 for e in EXPECTED]
        assert clone.observe(probe, EXPECTED) == m.observe(probe, EXPECTED)
        assert clone.state_dict() == m.state_dict()
