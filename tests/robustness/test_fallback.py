"""Tests for the graceful-fallback chain (mode choice and coasting)."""

from __future__ import annotations

import math

import pytest

from repro.core.config import MoLocConfig
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.motion.rlm import MotionMeasurement
from repro.robustness.fallback import choose_mode, coast
from repro.robustness.health import ServingMode


def stats(direction: float, offset: float = 5.0) -> PairStatistics:
    return PairStatistics(
        direction_mean_deg=direction,
        direction_std_deg=5.0,
        offset_mean_m=offset,
        offset_std_m=0.3,
        n_observations=10,
    )


@pytest.fixture()
def motion_db() -> MotionDatabase:
    """1 -west-> 2 and 1 -east-> 3 (the twin geometry)."""
    return MotionDatabase({(1, 2): stats(270.0), (1, 3): stats(90.0)})


class TestChooseMode:
    def test_all_evidence_is_motion_assisted(self):
        assert (
            choose_mode(scan_usable=True, imu_usable=True, calibrated=True)
            is ServingMode.MOTION_ASSISTED
        )

    def test_bad_imu_is_wifi_only(self):
        assert (
            choose_mode(scan_usable=True, imu_usable=False, calibrated=True)
            is ServingMode.WIFI_ONLY
        )

    def test_uncalibrated_is_wifi_only(self):
        assert (
            choose_mode(scan_usable=True, imu_usable=True, calibrated=False)
            is ServingMode.WIFI_ONLY
        )

    def test_no_scan_is_dead_reckoning_regardless(self):
        for imu_usable in (True, False):
            assert (
                choose_mode(False, imu_usable, calibrated=True)
                is ServingMode.DEAD_RECKONING
            )


class TestCoast:
    def test_empty_retained_rejected(self, motion_db):
        with pytest.raises(ValueError):
            coast(motion_db, [], None, MoLocConfig())

    def test_without_measurement_holds_distribution(self, motion_db):
        estimate = coast(motion_db, [(1, 0.6), (2, 0.2)], None, MoLocConfig())
        assert not estimate.used_motion
        assert estimate.location_id == 1
        probs = {c.location_id: c.probability for c in estimate.candidates}
        assert probs[1] == pytest.approx(0.75)
        assert probs[2] == pytest.approx(0.25)

    def test_motion_moves_the_mass_to_the_reached_neighbor(self, motion_db):
        westward = MotionMeasurement(direction_deg=270.0, offset_m=5.0)
        estimate = coast(motion_db, [(1, 1.0)], westward, MoLocConfig())
        assert estimate.used_motion
        assert estimate.location_id == 2

    def test_opposite_motion_selects_the_other_neighbor(self, motion_db):
        eastward = MotionMeasurement(direction_deg=90.0, offset_m=5.0)
        estimate = coast(motion_db, [(1, 1.0)], eastward, MoLocConfig())
        assert estimate.location_id == 3

    def test_unexplainable_motion_holds_position(self, motion_db):
        """Coasting never invents movement the database cannot explain."""
        northward = MotionMeasurement(direction_deg=0.0, offset_m=50.0)
        estimate = coast(motion_db, [(1, 1.0)], northward, MoLocConfig())
        assert not estimate.used_motion
        assert estimate.location_id == 1

    def test_degenerate_retained_holds_first(self, motion_db):
        estimate = coast(motion_db, [(2, 0.0), (3, 0.0)], None, MoLocConfig())
        assert estimate.location_id == 2
        assert estimate.probability == 1.0

    def test_coasted_probabilities_normalized(self, motion_db):
        westward = MotionMeasurement(direction_deg=270.0, offset_m=5.0)
        estimate = coast(
            motion_db, [(1, 0.7), (2, 0.3)], westward, MoLocConfig()
        )
        assert sum(c.probability for c in estimate.candidates) == pytest.approx(
            1.0
        )

    def test_fingerprint_evidence_marked_absent(self, motion_db):
        """Coasted candidates carry NaN dissimilarity and a uniform
        fingerprint probability — fingerprints did not participate."""
        estimate = coast(motion_db, [(1, 1.0)], None, MoLocConfig())
        for candidate in estimate.candidates:
            assert math.isnan(candidate.dissimilarity)
            assert candidate.fingerprint_probability == pytest.approx(
                1.0 / len(estimate.candidates)
            )
