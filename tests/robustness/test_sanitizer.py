"""Tests for scan sanitization and IMU credibility checks."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.robustness.health import FaultType
from repro.robustness.sanitizer import ScanSanitizer, check_imu

CLEAN = [-50.0, -60.0, -70.0, -55.0]


@pytest.fixture()
def sanitizer() -> ScanSanitizer:
    return ScanSanitizer(n_aps=4, dead_ap_scans=3)


class TestConstruction:
    def test_invalid_n_aps(self):
        with pytest.raises(ValueError):
            ScanSanitizer(n_aps=0)

    def test_invalid_dead_ap_scans(self):
        with pytest.raises(ValueError):
            ScanSanitizer(n_aps=4, dead_ap_scans=0)

    def test_invalid_min_active_aps(self):
        with pytest.raises(ValueError):
            ScanSanitizer(n_aps=4, min_active_aps=0)


class TestCleanScan:
    def test_passes_untouched(self, sanitizer):
        result = sanitizer.sanitize(CLEAN)
        assert result.usable
        assert result.fingerprint.rss == tuple(CLEAN)
        assert result.active_aps == (True,) * 4
        assert result.masked_ap_ids == ()
        assert result.faults == ()


class TestScanLoss:
    def test_none_is_scan_loss(self, sanitizer):
        result = sanitizer.sanitize(None)
        assert not result.usable
        assert result.fingerprint is None
        assert result.active_aps is None
        assert FaultType.SCAN_LOSS in result.faults

    def test_wrong_length_is_malformed_and_lost(self, sanitizer):
        result = sanitizer.sanitize([-50.0, -60.0])
        assert not result.usable
        assert FaultType.MALFORMED_SCAN in result.faults
        assert FaultType.SCAN_LOSS in result.faults

    def test_malformed_scan_leaves_rolling_stats_untouched(self, sanitizer):
        sanitizer.sanitize([-100.0, -60.0, -70.0, -55.0])
        before = sanitizer.consecutive_floored
        sanitizer.sanitize([-50.0])
        assert sanitizer.consecutive_floored == before

    def test_all_floored_is_scan_loss(self, sanitizer):
        result = sanitizer.sanitize([-100.0] * 4)
        assert not result.usable
        assert FaultType.SCAN_LOSS in result.faults


class TestCorruptions:
    def test_non_finite_floored_and_flagged(self, sanitizer):
        result = sanitizer.sanitize([float("nan"), -60.0, float("inf"), -55.0])
        assert result.usable
        assert FaultType.NON_FINITE_SCAN in result.faults
        assert result.fingerprint.rss[0] == -100.0
        assert result.fingerprint.rss[2] == -100.0
        assert result.fingerprint.rss[1] == -60.0

    def test_out_of_range_clipped_and_flagged(self, sanitizer):
        result = sanitizer.sanitize([10.0, -60.0, -150.0, -55.0])
        assert result.usable
        assert FaultType.OUT_OF_RANGE_SCAN in result.faults
        assert result.fingerprint.rss[0] == 0.0
        assert result.fingerprint.rss[2] == -100.0


class TestDeadApDetection:
    def test_sustained_flooring_masks_the_ap(self, sanitizer):
        scan = [-100.0, -60.0, -70.0, -55.0]
        for _ in range(2):
            result = sanitizer.sanitize(scan)
            assert result.masked_ap_ids == ()
        result = sanitizer.sanitize(scan)
        assert FaultType.DEAD_AP in result.faults
        assert result.masked_ap_ids == (0,)
        assert result.active_aps == (False, True, True, True)

    def test_intermittent_flooring_resets_the_counter(self, sanitizer):
        dead = [-100.0, -60.0, -70.0, -55.0]
        sanitizer.sanitize(dead)
        sanitizer.sanitize(dead)
        sanitizer.sanitize(CLEAN)  # the AP came back
        result = sanitizer.sanitize(dead)
        assert result.masked_ap_ids == ()

    def test_mask_stops_at_min_active_aps(self):
        sanitizer = ScanSanitizer(n_aps=3, dead_ap_scans=1, min_active_aps=2)
        result = sanitizer.sanitize([-100.0, -100.0, -50.0])
        assert not result.usable
        assert FaultType.SCAN_LOSS in result.faults
        assert FaultType.DEAD_AP not in result.faults

    def test_reset_clears_counters(self, sanitizer):
        dead = [-100.0, -60.0, -70.0, -55.0]
        for _ in range(3):
            sanitizer.sanitize(dead)
        sanitizer.reset()
        assert sanitizer.consecutive_floored == (0, 0, 0, 0)
        assert sanitizer.sanitize(dead).masked_ap_ids == ()


class TestStateRoundTrip:
    def test_wrong_width_checkpoint_is_rejected(self, sanitizer):
        with pytest.raises(ValueError, match="4-AP sanitizer"):
            sanitizer.load_state_dict({"consecutive_floored": [0, 0]})

    @given(
        scans=st.lists(
            st.lists(
                st.one_of(
                    st.floats(-100.0, 0.0, allow_nan=False),
                    st.just(-100.0),  # weight the floor: dead-AP streaks
                ),
                min_size=4,
                max_size=4,
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_state_dict_fixpoint_property(self, scans):
        """load_state_dict(state_dict()) is exact after any scan history."""
        source = ScanSanitizer(n_aps=4, dead_ap_scans=3)
        for scan in scans:
            source.sanitize(scan)
        state = source.state_dict()
        clone = ScanSanitizer(n_aps=4, dead_ap_scans=3)
        clone.load_state_dict(json.loads(json.dumps(state)))
        assert clone.state_dict() == state
        assert clone.consecutive_floored == source.consecutive_floored
        # The clone's next verdict — mask, faults and all — matches
        # bitwise, dead-AP streak continuation included.
        probe = [-100.0, -60.0, -70.0, -55.0]
        assert clone.sanitize(probe) == source.sanitize(probe)
        assert clone.state_dict() == source.state_dict()


class TestImuCheck:
    def test_none_is_dropout(self):
        check = check_imu(None)
        assert not check.usable
        assert check.faults == (FaultType.IMU_DROPOUT,)
        assert check.tripped == "missing"

    def test_flat_lined_accel_is_dropout(self, rng):
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.imu import ImuSegment

        accel = AccelerometerModel().idle(2.0, rng)
        flat = ImuSegment(
            accel=type(accel)(
                samples=np.full_like(accel.samples, 9.81),
                rate_hz=accel.rate_hz,
                true_step_times=np.empty(0),
            ),
            compass_readings=np.full(10, 90.0),
            true_course_deg=90.0,
            true_distance_m=0.0,
        )
        check = check_imu(flat)
        assert not check.usable
        assert FaultType.IMU_DROPOUT in check.faults
        assert check.tripped == "flat-line"

    def test_real_idle_noise_is_credible(self, rng):
        """A genuinely idle sensor still shows noise: not a dropout."""
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.imu import ImuSegment

        segment = ImuSegment(
            accel=AccelerometerModel().idle(2.0, rng),
            compass_readings=np.full(10, 90.0),
            true_course_deg=90.0,
            true_distance_m=0.0,
        )
        check = check_imu(segment)
        assert check.usable
        assert check.faults == ()
        assert check.tripped is None

    def test_standing_dwell_is_not_a_dropout(self, rng):
        """Regression: a legitimate standing user must not be vetoed.

        The flat-line threshold used to sit at 0.02 m/s² — above the
        ~0.008 quiescent noise of a phone held still — so every standing
        dwell was misdiagnosed as a dead accelerometer and served
        WiFi-only.  Only *exact* flatness (a dead register repeating one
        value, std 0.0) is a dropout.
        """
        from repro.env.geometry import Point
        from repro.motion.pedestrian import Pedestrian
        from repro.sim.gait import GAIT_PROFILES, record_gait_hop

        user = Pedestrian.sample("user-0", rng)
        segment, _, speed = record_gait_hop(
            user,
            GAIT_PROFILES["stand"],
            Point(0.0, 0.0),
            Point(6.0, 0.0),
            rng,
            previous_course_deg=90.0,
        )
        assert speed == 0.0
        check = check_imu(segment)
        assert check.usable
        assert check.faults == ()

    def test_non_finite_readings_are_dropout(self, rng):
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.imu import ImuSegment

        segment = ImuSegment(
            accel=AccelerometerModel().idle(2.0, rng),
            compass_readings=np.array([90.0, float("nan")]),
            true_course_deg=90.0,
            true_distance_m=0.0,
        )
        check = check_imu(segment)
        assert not check.usable
        assert check.tripped == "non-finite"

    def test_tuple_unpacking_still_works(self):
        """ImuCheck stays a (usable, faults, tripped) named tuple."""
        usable, faults, tripped = check_imu(None)
        assert not usable
        assert faults == (FaultType.IMU_DROPOUT,)
        assert tripped == "missing"


class TestImuSpoofDetection:
    def _segment(self, rng, readings):
        from repro.sensors.accelerometer import AccelerometerModel
        from repro.sensors.imu import ImuSegment

        return ImuSegment(
            accel=AccelerometerModel().idle(2.0, rng),
            compass_readings=np.asarray(readings, dtype=float),
            true_course_deg=90.0,
            true_distance_m=0.0,
        )

    def test_oscillating_compass_is_spoof(self, rng):
        """A ±90° alternating heading is physically implausible walking."""
        readings = 90.0 + 90.0 * np.array([1.0, -1.0] * 5)
        check = check_imu(self._segment(rng, readings))
        assert not check.usable
        assert check.faults == (FaultType.IMU_SPOOF,)
        assert check.tripped == "heading-rate"

    def test_noisy_but_steady_heading_is_credible(self, rng):
        """Realistic compass noise (a few degrees) stays under the veto."""
        readings = 90.0 + rng.normal(0.0, 4.0, size=12)
        check = check_imu(self._segment(rng, readings))
        assert check.usable
        assert check.faults == ()

    def test_gentle_turn_is_credible(self, rng):
        """A genuine 90° corner spread over a hop does not trip the veto."""
        readings = np.linspace(0.0, 90.0, 12) + rng.normal(0.0, 4.0, size=12)
        check = check_imu(self._segment(rng, readings))
        assert check.usable

    def test_wraparound_does_not_false_positive(self, rng):
        """Heading noise straddling 0°/360° is circular, not a spoof."""
        readings = (rng.normal(0.0, 4.0, size=12)) % 360.0
        check = check_imu(self._segment(rng, readings))
        assert check.usable

    def test_single_reading_cannot_trip_heading_rate(self, rng):
        check = check_imu(self._segment(rng, [90.0]))
        assert check.usable
