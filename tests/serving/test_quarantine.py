"""Per-session fault isolation: quarantine, eviction, sequences, deadlines.

One session's failure must cost that session — and only that session —
its answer.  These tests drive faults through the engine's injector
seam (the same one the chaos harness uses) and assert the strike /
backoff / eviction lifecycle, idempotent duplicate handling, stale-drop
and gap accounting, and deadline shedding under a synthetic clock.
"""

from __future__ import annotations

import itertools

import pytest

from repro.motion.pedestrian import BodyProfile
from repro.robustness import ResilientMoLocService
from repro.robustness.health import FaultType, ServingMode
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    QuarantinePolicy,
    fix_stream_checksum,
)
from repro.serving.benchmark import build_session_services
from repro.sim.evaluation import multi_session_workload


@pytest.fixture()
def world(small_study):
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    workload = multi_session_workload(
        small_study.test_traces, 2, corpus_size=2, stagger_ticks=0
    )
    services = build_session_services(
        workload, fingerprint_db, motion_db, small_study.config
    )
    engine = BatchedServingEngine(
        fingerprint_db, motion_db, small_study.config
    )
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    return engine, workload


def _events_of(tick):
    return [
        IntervalEvent(
            session_id=interval.session_id,
            scan=interval.scan,
            imu=interval.imu,
            sequence=interval.sequence,
        )
        for interval in tick
    ]


def _raise_for(session_id, phase="prepare", ticks=None):
    """An injector that fails one session in one phase (optionally only
    on the given engine tick indices)."""

    def injector(current_phase, current_session, _ticks=ticks):
        if current_session != session_id or current_phase != phase:
            return
        raise RuntimeError("injected dependency failure")

    return injector


class TestQuarantineLifecycle:
    def test_fault_quarantines_only_the_faulting_session(self, world):
        engine, workload = world
        victim, healthy = sorted(workload.sessions)
        engine.fault_injector = _raise_for(victim)
        outcome = engine.tick_detailed(_events_of(workload.ticks[0]))
        assert outcome.served == (healthy,)
        assert [fault.session_id for fault in outcome.faulted] == [victim]
        fault = outcome.faulted[0]
        assert fault.phase == "prepare"
        assert fault.strikes == 1
        assert fault.action == "quarantined"
        assert fault.backoff_ticks >= 1
        assert "RuntimeError" in fault.error
        record = engine.sessions.get(victim)
        assert record.strikes == 1
        assert record.quarantined_until == engine.tick_index + fault.backoff_ticks

    def test_quarantined_session_is_skipped_until_backoff_expires(self, world):
        engine, workload = world
        victim, healthy = sorted(workload.sessions)
        engine.fault_injector = _raise_for(victim)
        outcome = engine.tick_detailed(_events_of(workload.ticks[0]))
        backoff = outcome.faulted[0].backoff_ticks
        engine.fault_injector = None  # the dependency has recovered
        victim_events = [
            event
            for tick in workload.ticks[1:]
            for event in _events_of(tick)
            if event.session_id == victim
        ]
        # While quarantined, the victim's events are skipped ...
        for index in range(backoff):
            outcome = engine.tick_detailed([victim_events[index]])
            assert outcome.quarantined == (victim,)
            assert outcome.fixes == [None]
        # ... and the first event after expiry is the retry: it serves,
        # and a full successful interval clears the strike count.
        outcome = engine.tick_detailed([victim_events[backoff]])
        assert outcome.served == (victim,)
        assert outcome.fixes[0] is not None
        record = engine.sessions.get(victim)
        assert record.strikes == 0
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.quarantine.recoveries"] == 1
        assert snapshot["counters"]["engine.quarantine.skipped"] == backoff

    def test_persistent_faults_escalate_to_eviction(self, world):
        engine, workload = world
        victim, healthy = sorted(workload.sessions)
        engine.fault_injector = _raise_for(victim, phase="complete")
        events = itertools.cycle(
            [
                event
                for tick in workload.ticks
                for event in _events_of(tick)
                if event.session_id == victim
            ]
        )
        max_strikes = engine.quarantine_policy.max_strikes
        evicted_at = None
        for _ in range(64):  # bounded: backoffs are capped
            outcome = engine.tick_detailed([next(events)])
            if outcome.evicted:
                evicted_at = outcome
                break
        assert evicted_at is not None, "session never evicted"
        assert evicted_at.evicted == (victim,)
        assert evicted_at.faulted[-1].action == "evicted"
        assert evicted_at.faulted[-1].strikes == max_strikes
        assert victim not in engine.sessions
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.quarantine.evictions"] == 1
        assert snapshot["counters"]["engine.quarantine.faults"] == max_strikes
        # Post-eviction the id is unknown: a stranded event for it is
        # dropped as unroutable instead of aborting the batch.
        outcome = engine.tick_detailed([next(events)])
        assert outcome.unroutable == (victim,)
        assert outcome.fixes == [None]

    def test_faulty_neighbor_leaves_healthy_stream_bitwise_intact(
        self, small_study
    ):
        """The central isolation promise, asserted at the bit level."""
        fingerprint_db = small_study.fingerprint_db(6)
        motion_db, _ = small_study.motion_db(6)
        workload = multi_session_workload(
            small_study.test_traces, 2, corpus_size=2, stagger_ticks=0
        )
        victim, healthy = sorted(workload.sessions)

        def serve(inject: bool):
            services = build_session_services(
                workload, fingerprint_db, motion_db, small_study.config
            )
            engine = BatchedServingEngine(
                fingerprint_db, motion_db, small_study.config
            )
            for session_id, service in services.items():
                engine.add_session(session_id, service)
            if inject:
                engine.fault_injector = _raise_for(victim)
            stream = []
            for tick in workload.ticks:
                # A persistently faulting victim is eventually evicted;
                # the transport stops routing to dead sessions.
                events = [
                    event
                    for event in _events_of(tick)
                    if event.session_id in engine.sessions
                ]
                for event, fix in zip(events, engine.tick(events)):
                    if event.session_id == healthy:
                        stream.append(fix)
            return stream

        assert fix_stream_checksum(serve(True)) == fix_stream_checksum(
            serve(False)
        )

    def test_match_phase_faults_are_isolated_too(self, world):
        engine, workload = world
        victim, healthy = sorted(workload.sessions)
        engine.fault_injector = _raise_for(victim, phase="match")
        outcome = engine.tick_detailed(_events_of(workload.ticks[0]))
        assert outcome.served == (healthy,)
        assert outcome.faulted[0].phase == "match"

    def test_non_isolable_errors_propagate(self, world):
        engine, workload = world
        victim = sorted(workload.sessions)[0]

        def blow_up(phase, session_id):
            if session_id == victim:
                raise MemoryError("process-level failure")

        engine.fault_injector = blow_up
        with pytest.raises(MemoryError):
            engine.tick(_events_of(workload.ticks[0]))


class TestQuarantinePolicy:
    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = QuarantinePolicy(
            max_strikes=10, backoff_base_ticks=1, backoff_cap_ticks=8
        )
        lengths = [policy.backoff_ticks("user", s) for s in range(1, 7)]
        bases = [1, 2, 4, 8, 8, 8]
        for length, base in zip(lengths, bases):
            assert base <= length <= base + 1  # +1 is the hash jitter

    def test_jitter_is_deterministic_per_session(self):
        policy = QuarantinePolicy()
        assert policy.backoff_ticks("alice", 1) == policy.backoff_ticks(
            "alice", 1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(max_strikes=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(backoff_base_ticks=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(backoff_base_ticks=4, backoff_cap_ticks=2)
        with pytest.raises(ValueError):
            QuarantinePolicy().backoff_ticks("user", 0)


class TestSequenceAdmission:
    def test_duplicate_delivery_is_answered_idempotently(self, world):
        engine, workload = world
        session_id = sorted(workload.sessions)[0]
        events = [
            event
            for tick in workload.ticks[:2]
            for event in _events_of(tick)
            if event.session_id == session_id
        ]
        engine.tick([events[0]])
        (first_fix,) = engine.tick([events[1]])
        record = engine.sessions.get(session_id)
        state_before = record.service.state_dict()
        served_before = record.intervals_served
        # The transport re-delivers the same message.
        outcome = engine.tick_detailed([events[1]])
        assert outcome.duplicates == (session_id,)
        assert outcome.served == ()
        assert outcome.fixes[0] is first_fix
        # Idempotent means *no state advanced*: the posterior would
        # otherwise double-count the scan.
        assert record.service.state_dict() == state_before
        assert record.intervals_served == served_before
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.sequence.duplicates"] == 1

    def test_duplicate_during_quarantine_is_answered_idempotently(
        self, world
    ):
        """Answering from the cache re-faults nothing, so a backoff
        window must not swallow a duplicate redelivery."""
        engine, workload = world
        victim = sorted(workload.sessions)[0]
        victim_events = [
            event
            for tick in workload.ticks[:2]
            for event in _events_of(tick)
            if event.session_id == victim
        ]
        # Tick 1 serves cleanly: the victim now has a cached fix.
        (cached,) = engine.tick([victim_events[0]])
        assert cached is not None
        # Tick 2 faults: the victim enters a backoff window.
        engine.fault_injector = _raise_for(victim)
        outcome = engine.tick_detailed([victim_events[1]])
        assert outcome.faulted[0].action == "quarantined"
        engine.fault_injector = None
        record = engine.sessions.get(victim)
        assert record.quarantined_until > engine.tick_index
        strikes_before = record.strikes
        # The transport re-delivers the already-served interval while
        # the window is still open.
        outcome = engine.tick_detailed([victim_events[0]])
        assert outcome.duplicates == (victim,)
        assert outcome.quarantined == ()
        assert outcome.fixes[0] is cached
        # The quarantine itself is untouched: no state, no strikes.
        assert record.strikes == strikes_before
        assert record.quarantined_until >= engine.tick_index

    def test_stale_delivery_is_dropped(self, world):
        engine, workload = world
        session_id = sorted(workload.sessions)[0]
        events = [
            event
            for tick in workload.ticks[:3]
            for event in _events_of(tick)
            if event.session_id == session_id
        ]
        for event in events:
            engine.tick([event])
        record = engine.sessions.get(session_id)
        state_before = record.service.state_dict()
        outcome = engine.tick_detailed([events[0]])  # sequence 0 again
        assert outcome.stale == (session_id,)
        assert outcome.fixes == [None]
        assert record.service.state_dict() == state_before
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.sequence.stale"] == 1

    def test_delivery_gap_is_counted_but_served(self, world):
        engine, workload = world
        session_id = sorted(workload.sessions)[0]
        events = [
            event
            for tick in workload.ticks[:4]
            for event in _events_of(tick)
            if event.session_id == session_id
        ]
        engine.tick([events[0]])
        engine.tick([events[1]])
        outcome = engine.tick_detailed([events[3]])  # sequence 2 lost
        assert outcome.served == (session_id,)
        assert outcome.fixes[0] is not None
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.sequence.gaps"] == 1
        assert engine.sessions.get(session_id).last_sequence == 3

    def test_unsequenced_events_skip_ordering_checks(self, world):
        engine, workload = world
        session_id = sorted(workload.sessions)[0]
        events = [
            IntervalEvent(event.session_id, event.scan, event.imu, None)
            for tick in workload.ticks[:2]
            for event in _events_of(tick)
            if event.session_id == session_id
        ]
        for event in events:
            outcome = engine.tick_detailed([event])
            assert outcome.served == (session_id,)
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.sequence.duplicates"] == 0
        assert snapshot["counters"]["engine.sequence.stale"] == 0
        assert engine.sessions.get(session_id).last_sequence is None


class TestDeadlineShedding:
    def _engine(self, small_study, budget_s):
        fingerprint_db = small_study.fingerprint_db(6)
        motion_db, _ = small_study.motion_db(6)
        workload = multi_session_workload(
            small_study.test_traces, 2, corpus_size=2, stagger_ticks=0
        )
        services = build_session_services(
            workload, fingerprint_db, motion_db, small_study.config
        )
        # Each clock() call advances a full second: any positive budget
        # below 1 s is blown the moment the completion loop checks it.
        ticker = itertools.count()
        engine = BatchedServingEngine(
            fingerprint_db,
            motion_db,
            small_study.config,
            tick_budget_s=budget_s,
            clock=lambda: float(next(ticker)),
        )
        for session_id, service in services.items():
            engine.add_session(session_id, service)
        return engine, workload

    def test_over_budget_completions_shed_to_wifi_only(self, small_study):
        engine, workload = self._engine(small_study, budget_s=0.5)
        # Tick 1: initial intervals carry no IMU, so nothing sheds ...
        outcome = engine.tick_detailed(_events_of(workload.ticks[0]))
        assert outcome.shed == ()
        # ... tick 2: motion-assisted completions cross the deadline.
        outcome = engine.tick_detailed(_events_of(workload.ticks[1]))
        assert set(outcome.shed) == set(workload.sessions)
        for fix in outcome.fixes:
            assert fix is not None, "a shed session is served, not dropped"
            assert fix.health.mode is ServingMode.WIFI_ONLY
            assert FaultType.DEADLINE_SHED in fix.health.faults
        snapshot = engine.metrics.snapshot()
        assert snapshot["counters"]["engine.deadline.shed"] == len(
            workload.sessions
        )

    def test_no_budget_means_no_shedding(self, small_study):
        engine, workload = self._engine(small_study, budget_s=None)
        for tick in workload.ticks[:3]:
            outcome = engine.tick_detailed(_events_of(tick))
            assert outcome.shed == ()
        assert (
            engine.metrics.snapshot()["counters"]["engine.deadline.shed"] == 0
        )

    def test_budget_validation(self, small_study):
        fingerprint_db = small_study.fingerprint_db(6)
        motion_db, _ = small_study.motion_db(6)
        with pytest.raises(ValueError, match="tick_budget_s"):
            BatchedServingEngine(
                fingerprint_db,
                motion_db,
                small_study.config,
                tick_budget_s=0.0,
            )
