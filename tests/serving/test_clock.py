"""The logical clock and its threading through spec, worker, and engine.

The wall-clock determinism bug this closes: engines defaulted to
``time.perf_counter`` with no way to build a shard on anything else, so
every deadline-shed decision — and therefore every latency-skew chaos
replay — depended on machine load.  The spec's ``clock`` field and the
worker's ``advance_clock`` op make shard time injectable end to end.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterWireError,
    LocalShard,
    build_engine,
    shard_spec,
)
from repro.serving import LogicalClock
from repro.serving.clock import LogicalClock as DirectLogicalClock


class TestLogicalClock:
    def test_starts_at_zero_and_reads_advance(self):
        clock = LogicalClock(auto_advance_s=0.5)
        assert clock.now_s == 0.0
        assert clock() == 0.0
        assert clock() == 0.5
        assert clock.now_s == 1.0
        assert clock.readings == 2

    def test_no_auto_advance_is_frozen(self):
        clock = LogicalClock()
        assert clock() == clock() == 0.0
        assert clock.readings == 2

    def test_advance_and_set_move_forward_only(self):
        clock = LogicalClock()
        assert clock.advance(1.5) == 1.5
        clock.set(4.0)
        assert clock.now_s == 4.0
        with pytest.raises(ValueError, match="monotonic"):
            clock.advance(-0.1)
        with pytest.raises(ValueError, match="monotonic"):
            clock.set(3.0)

    def test_rejects_negative_auto_advance(self):
        with pytest.raises(ValueError):
            LogicalClock(auto_advance_s=-1.0)

    def test_package_export_is_the_same_class(self):
        assert LogicalClock is DirectLogicalClock


class TestSpecClockThreading:
    def spec(self, world, tmp_path, **kwargs):
        fingerprint_db, motion_db, config, _ = world
        return shard_spec(
            "s0",
            fingerprint_db,
            motion_db,
            config,
            wal_path=tmp_path / "s0.wal",
            checkpoint_path=tmp_path / "s0.ckpt",
            **kwargs,
        )

    @pytest.fixture()
    def world(self, small_study):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "cluster")
        )
        from cluster_helpers import small_world

        return small_world(small_study)

    def test_default_spec_builds_a_wall_clock_engine(self, world, tmp_path):
        import time

        engine, _ = build_engine(self.spec(world, tmp_path))
        assert engine.clock is time.perf_counter

    def test_logical_spec_builds_a_logical_clock(self, world, tmp_path):
        spec = self.spec(
            world, tmp_path, clock="logical", clock_auto_advance_s=0.25
        )
        engine, _ = build_engine(spec)
        assert isinstance(engine.clock, LogicalClock)
        assert engine.clock.auto_advance_s == 0.25
        # Respawning from the same spec rebuilds the same time source
        # from zero — recovery cannot inherit wall time.
        again, _ = build_engine(spec)
        assert isinstance(again.clock, LogicalClock)
        assert again.clock.now_s == 0.0

    def test_pre_clock_specs_still_build(self, world, tmp_path):
        import time

        spec = self.spec(world, tmp_path)
        del spec["clock"], spec["clock_auto_advance_s"]
        engine, _ = build_engine(spec)
        assert engine.clock is time.perf_counter

    def test_spec_validation(self, world, tmp_path):
        with pytest.raises(ValueError, match="unknown clock"):
            self.spec(world, tmp_path, clock="sundial")
        with pytest.raises(ValueError, match="clock_auto_advance_s"):
            self.spec(world, tmp_path, clock_auto_advance_s=-1.0)
        with pytest.raises(ValueError, match="requires the logical clock"):
            self.spec(
                world, tmp_path, clock="monotonic", clock_auto_advance_s=0.5
            )

    def test_advance_clock_op_drives_a_logical_shard(self, world, tmp_path):
        shard = LocalShard(
            self.spec(world, tmp_path, clock="logical")
        )
        reply = shard.request({"op": "advance_clock", "dt_s": 2.5})
        assert reply["now_s"] == 2.5
        reply = shard.request({"op": "advance_clock", "dt_s": 0.5})
        assert reply["now_s"] == 3.0
        shard.shutdown()

    def test_advance_clock_op_refuses_a_wall_clock_shard(
        self, world, tmp_path
    ):
        shard = LocalShard(self.spec(world, tmp_path))
        with pytest.raises(ClusterWireError, match="wall clock"):
            shard.request({"op": "advance_clock", "dt_s": 1.0})
        shard.shutdown()
