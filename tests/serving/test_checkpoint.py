"""Crash safety: checkpoint/restore, the WAL, and kill-anywhere recovery.

The contract under test is the strongest one serving makes: kill the
process after *any* tick, restore the newest checkpoint into a fresh
engine, replay the write-ahead log — and the post-crash fix stream is
bitwise identical to the run that never crashed.  Serialization
round-trips are property-tested (JSON floats round-trip exactly), and
the WAL's torn-tail tolerance is exercised directly.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MoLocConfig
from repro.io.serialize import (
    fix_from_dict,
    fix_to_dict,
    imu_segment_from_dict,
    imu_segment_to_dict,
)
from repro.motion.pedestrian import BodyProfile
from repro.robustness import ResilientMoLocService
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    WriteAheadLog,
    build_session_services,
    fix_stream_checksum,
    recover_engine,
)
from repro.serving.checkpoint import event_from_dict, event_to_dict
from repro.sim.evaluation import multi_session_workload

N_SESSIONS = 64


@pytest.fixture(scope="module")
def crash_world(small_study):
    """A 64-session workload over truncated walks, plus its databases.

    Five hops per walk keep the kill-at-every-tick sweep (a full serve
    per possible crash point) affordable while still crossing every
    checkpointed state: calibration, retention, stride personalization,
    and the robustness monitors all engage within the first intervals.
    """
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:5]))
        for trace in small_study.test_traces[:4]
    ]
    workload = multi_session_workload(
        traces, N_SESSIONS, corpus_size=4, stagger_ticks=0
    )
    return fingerprint_db, motion_db, small_study.config, workload


def _make_service_factory(fingerprint_db, motion_db, config):
    """The restore-side factory: same kind of service, fresh state."""

    def make_service(session_id: str) -> ResilientMoLocService:
        return ResilientMoLocService(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=config,
        )

    return make_service


def _events_of(tick):
    return [
        IntervalEvent(
            session_id=interval.session_id,
            scan=interval.scan,
            imu=interval.imu,
            sequence=interval.sequence,
        )
        for interval in tick
    ]


def _checkpoint_text(engine: BatchedServingEngine) -> str:
    return json.dumps(engine.checkpoint(), sort_keys=True)


@pytest.fixture(scope="module")
def baseline_run(crash_world, tmp_path_factory):
    """The uninterrupted run: WAL, per-tick fixes, per-tick checkpoints.

    Checkpoints are JSON-round-tripped before use, so every restore in
    this module also proves the checkpoint survives serialization to
    disk, not just in-memory hand-off.
    """
    fingerprint_db, motion_db, config, workload = crash_world
    wal_path = tmp_path_factory.mktemp("wal") / "serving.wal"
    services = build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )
    engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    tick_fixes = []  # one {session_id: fix} per tick, in tick order
    checkpoints = {0: json.loads(json.dumps(engine.checkpoint()))}
    with WriteAheadLog(wal_path, fsync=False) as wal:
        for tick in workload.ticks:
            events = _events_of(tick)
            wal.append(engine.tick_index + 1, events)
            fixes = engine.tick(events)
            tick_fixes.append(
                {
                    event.session_id: fix
                    for event, fix in zip(events, fixes)
                }
            )
            checkpoints[engine.tick_index] = json.loads(
                json.dumps(engine.checkpoint())
            )
    return engine, wal_path, tick_fixes, checkpoints


class TestKillAnywhere:
    def test_restore_and_replay_is_bitwise_exact_at_every_crash_point(
        self, crash_world, baseline_run
    ):
        """Crash after tick t, for every t: identical streams and state."""
        fingerprint_db, motion_db, config, workload = crash_world
        engine, wal_path, tick_fixes, checkpoints = baseline_run
        final_state = _checkpoint_text(engine)
        make_service = _make_service_factory(fingerprint_db, motion_db, config)
        n_ticks = len(workload.ticks)
        assert engine.tick_index == n_ticks

        for crash_after in range(n_ticks + 1):
            fresh = BatchedServingEngine(fingerprint_db, motion_db, config)
            fresh.restore(checkpoints[crash_after], make_service)
            assert fresh.tick_index == crash_after
            replayed = {sid: [] for sid in workload.sessions}
            with WriteAheadLog(wal_path, fsync=False) as wal:
                for _, events in wal.events_after(crash_after):
                    for event, fix in zip(events, fresh.tick(events)):
                        replayed[event.session_id].append(fix)
            assert fresh.tick_index == n_ticks
            # The replayed suffix matches the uninterrupted run bit for
            # bit, for every session ...
            for session_id, fixes in replayed.items():
                baseline = [
                    tick_fixes[t][session_id]
                    for t in range(crash_after, n_ticks)
                    if session_id in tick_fixes[t]
                ]
                assert fix_stream_checksum(fixes) == fix_stream_checksum(
                    baseline
                ), f"stream diverged for {session_id} (crash at {crash_after})"
            # ... and so does the engine's own end state.
            assert _checkpoint_text(fresh) == final_state

    def test_recover_engine_replays_the_tail(self, crash_world, baseline_run):
        fingerprint_db, motion_db, config, workload = crash_world
        engine, wal_path, _, checkpoints = baseline_run
        crash_after = 2
        fresh = BatchedServingEngine(
            fingerprint_db, motion_db, config, tick_budget_s=5.0
        )
        with WriteAheadLog(wal_path, fsync=False) as wal:
            replayed = recover_engine(
                fresh,
                checkpoints[crash_after],
                wal,
                _make_service_factory(fingerprint_db, motion_db, config),
            )
        assert replayed == len(workload.ticks) - crash_after
        assert fresh.tick_index == engine.tick_index
        assert _checkpoint_text(fresh) == _checkpoint_text(engine)
        # The budget was suspended for the replay, not lost.
        assert fresh.tick_budget_s == 5.0


class TestCheckpointValidation:
    def test_restore_rejects_wrong_kind(self, crash_world):
        fingerprint_db, motion_db, config, _ = crash_world
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        with pytest.raises(ValueError, match="engine_checkpoint"):
            engine.restore({"kind": "fault_plan"}, lambda sid: None)

    def test_restore_rejects_unknown_version(self, crash_world):
        fingerprint_db, motion_db, config, _ = crash_world
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        with pytest.raises(ValueError, match="version"):
            engine.restore(
                {"kind": "engine_checkpoint", "format_version": 99},
                lambda sid: None,
            )

    def test_restore_requires_a_fresh_engine(self, crash_world, baseline_run):
        fingerprint_db, motion_db, config, _ = crash_world
        _, _, _, checkpoints = baseline_run
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        engine.add_session(
            "occupant",
            ResilientMoLocService(
                fingerprint_db,
                motion_db,
                body=BodyProfile(height_m=1.72),
                config=config,
            ),
        )
        with pytest.raises(ValueError, match="fresh engine"):
            engine.restore(
                checkpoints[0],
                _make_service_factory(fingerprint_db, motion_db, config),
            )


class TestWriteAheadLog:
    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "torn.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, [IntervalEvent("alice", [1.5, -2.25])])
            wal.append(2, [IntervalEvent("alice", [0.5, -0.5])])
        # The process died mid-write: a truncated JSON tail.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "tick": 3, "eve')
        with WriteAheadLog(path, fsync=False) as wal:
            ticks = [tick for tick, _ in wal.replay()]
        assert ticks == [1, 2]

    def test_torn_tail_is_truncated_before_appending(self, tmp_path):
        """Crash, recover and keep appending, crash again: no lost tick.

        Without the torn-tail guard the recovered process's first new
        line concatenates onto the fragment, producing one undecodable
        line — and a tick that WAS served silently vanishes from the
        next replay.
        """
        path = tmp_path / "torn-append.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, [IntervalEvent("alice", [1.5])])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "tick": 2, "eve')  # died mid-append
        # The recovered process re-runs tick 2 (the torn one was never
        # served) and keeps appending to the same WAL.
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(2, [IntervalEvent("alice", [0.5])])
        with WriteAheadLog(path, fsync=False) as wal:
            replayed = list(wal.replay())
        assert [tick for tick, _ in replayed] == [1, 2]
        assert replayed[1][1][0].scan == [0.5]

    def test_mid_file_corruption_raises_instead_of_skipping(self, tmp_path):
        """A corrupted *served* tick must fail loudly, not vanish."""
        path = tmp_path / "corrupt.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            for tick in (1, 2, 3):
                wal.append(tick, [IntervalEvent("bob", [float(tick)])])
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[1] = '{"v": 1, "tick": 2, GARBAGE}\n'
        path.write_text("".join(lines), encoding="utf-8")
        with WriteAheadLog(path, fsync=False) as wal:
            with pytest.raises(ValueError, match="undecodable line 2"):
                list(wal.replay())

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "future.wal"
        path.write_text('{"v": 99, "tick": 1, "events": []}\n')
        with WriteAheadLog(path, fsync=False) as wal:
            with pytest.raises(ValueError, match="unsupported WAL version"):
                list(wal.replay())

    def test_events_after_filters_by_tick(self, tmp_path):
        path = tmp_path / "tail.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            for tick in (1, 2, 3):
                wal.append(tick, [IntervalEvent("bob", [float(tick)])])
            tail = list(wal.events_after(1))
        assert [tick for tick, _ in tail] == [2, 3]
        assert tail[0][1][0].scan == [2.0]


finite = st.floats(allow_nan=False, allow_infinity=True, width=64)


class TestSerializationRoundTrips:
    @given(
        scan=st.one_of(
            st.none(), st.lists(finite, min_size=1, max_size=12)
        ),
        sequence=st.one_of(st.none(), st.integers(min_value=0, max_value=9999)),
    )
    @settings(max_examples=50, deadline=None)
    def test_event_round_trip_is_bitwise(self, scan, sequence):
        event = IntervalEvent(
            session_id="user-0001", scan=scan, imu=None, sequence=sequence
        )
        payload = json.loads(json.dumps(event_to_dict(event)))
        back = event_from_dict(payload)
        assert back.session_id == event.session_id
        assert back.sequence == event.sequence
        if scan is None:
            assert back.scan is None
        else:
            # Exact float equality, sign of zero included.
            assert [value.hex() for value in back.scan] == [
                value.hex() for value in scan
            ]

    def test_event_round_trip_preserves_nan(self):
        event = IntervalEvent("u", [float("nan"), -65.0])
        back = event_from_dict(json.loads(json.dumps(event_to_dict(event))))
        assert math.isnan(back.scan[0]) and back.scan[1] == -65.0

    def test_imu_segment_round_trip_is_bitwise(self, small_study):
        for hop in small_study.test_traces[0].hops[:3]:
            payload = json.loads(json.dumps(imu_segment_to_dict(hop.imu)))
            back = imu_segment_from_dict(payload)
            np.testing.assert_array_equal(
                back.accel.samples, hop.imu.accel.samples
            )
            np.testing.assert_array_equal(
                back.compass_readings, hop.imu.compass_readings
            )
            assert back.accel.rate_hz == hop.imu.accel.rate_hz
            assert back.true_course_deg == hop.imu.true_course_deg
            assert back.true_distance_m == hop.imu.true_distance_m

    def test_served_fix_round_trip_is_bitwise(self, crash_world):
        """A real served fix (health, candidates and all) survives JSON."""
        fingerprint_db, motion_db, config, workload = crash_world
        services = build_session_services(
            workload, fingerprint_db, motion_db, config, resilient=True
        )
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        session_id = next(iter(services))
        engine.add_session(session_id, services[session_id])
        fixes = []
        for tick in workload.ticks[:3]:
            for interval in tick:
                if interval.session_id != session_id:
                    continue
                (fix,) = engine.tick(_events_of([interval]))
                fixes.append(fix)
        assert fixes
        for fix in fixes:
            back = fix_from_dict(json.loads(json.dumps(fix_to_dict(fix))))
            assert fix_stream_checksum([back]) == fix_stream_checksum([fix])
