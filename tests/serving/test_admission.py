"""Admission control: the bounded intake queue and its shedding policies."""

from __future__ import annotations

import pytest

from repro.observability import MetricsRegistry
from repro.serving import AdmissionController, IntervalEvent


def _event(session_id: str, value: float = -60.0) -> IntervalEvent:
    return IntervalEvent(session_id=session_id, scan=[value])


class TestOffer:
    def test_admits_until_capacity(self):
        controller = AdmissionController(capacity=2)
        assert controller.offer(_event("a"))
        assert controller.offer(_event("b"))
        assert len(controller) == 2

    def test_reject_newest_refuses_when_full(self):
        controller = AdmissionController(capacity=1, policy="reject-newest")
        assert controller.offer(_event("a"))
        assert not controller.offer(_event("b"))
        # The in-flight event survived; the newcomer is gone.
        assert [e.session_id for e in controller.drain()] == ["a"]
        counters = controller.metrics.snapshot()["counters"]
        assert counters["admission.rejected"] == 1
        assert counters["admission.accepted"] == 1

    def test_drop_oldest_evicts_the_head(self):
        controller = AdmissionController(capacity=2, policy="drop-oldest")
        for session_id in ("a", "b", "c"):
            assert controller.offer(_event(session_id))
        # "a" (the oldest) was displaced to admit "c".
        assert [e.session_id for e in controller.drain()] == ["b", "c"]
        counters = controller.metrics.snapshot()["counters"]
        assert counters["admission.dropped"] == 1
        assert counters["admission.accepted"] == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionController(capacity=0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(capacity=1, policy="drop-random")


class TestDrain:
    def test_arrival_order_preserved(self):
        controller = AdmissionController(capacity=8)
        for session_id in ("c", "a", "b"):
            controller.offer(_event(session_id))
        assert [e.session_id for e in controller.drain()] == ["c", "a", "b"]
        assert len(controller) == 0

    def test_one_event_per_session_per_batch(self):
        controller = AdmissionController(capacity=8)
        controller.offer(_event("a", -50.0))
        controller.offer(_event("b"))
        controller.offer(_event("a", -55.0))  # a's *next* interval
        batch = controller.drain()
        assert [e.session_id for e in batch] == ["a", "b"]
        assert batch[0].scan == [-50.0]
        # The held-back event leads the next batch, order intact.
        followup = controller.drain()
        assert [e.session_id for e in followup] == ["a"]
        assert followup[0].scan == [-55.0]

    def test_held_events_keep_their_relative_order(self):
        controller = AdmissionController(capacity=8)
        for session_id, value in (
            ("a", -1.0),
            ("a", -2.0),
            ("b", -3.0),
            ("a", -4.0),
        ):
            controller.offer(_event(session_id, value))
        assert [(e.session_id, e.scan[0]) for e in controller.drain()] == [
            ("a", -1.0),
            ("b", -3.0),
        ]
        assert [(e.session_id, e.scan[0]) for e in controller.drain()] == [
            ("a", -2.0)
        ]
        assert [(e.session_id, e.scan[0]) for e in controller.drain()] == [
            ("a", -4.0)
        ]

    def test_max_batch_caps_the_tick(self):
        controller = AdmissionController(capacity=8)
        for index in range(5):
            controller.offer(_event(f"s{index}"))
        batch = controller.drain(max_batch=2)
        assert [e.session_id for e in batch] == ["s0", "s1"]
        assert len(controller) == 3
        with pytest.raises(ValueError, match="max_batch"):
            controller.drain(max_batch=0)

    def test_depth_gauge_tracks_the_queue(self):
        registry = MetricsRegistry()
        controller = AdmissionController(capacity=8, metrics=registry)
        for index in range(3):
            controller.offer(_event(f"s{index}"))
        assert registry.snapshot()["gauges"]["admission.depth"] == 3
        controller.drain()
        assert registry.snapshot()["gauges"]["admission.depth"] == 0
        assert registry.snapshot()["counters"]["admission.drained"] == 3


class TestDrainFairness:
    """Drain fairness is deterministic — regression-pinned here because
    the cluster coordinator drains this same queue at the front door,
    and a fairness change would silently reshuffle cluster batches."""

    def test_chatty_session_cannot_starve_the_queue(self):
        controller = AdmissionController(capacity=64)
        for index in range(6):
            controller.offer(_event("chatty", float(-index)))
        controller.offer(_event("quiet-1"))
        controller.offer(_event("quiet-2"))
        # One chatty event per batch; the quiet sessions ride along in
        # the very first drain instead of waiting out chatty's backlog.
        first = controller.drain()
        assert [e.session_id for e in first] == [
            "chatty",
            "quiet-1",
            "quiet-2",
        ]
        for index in range(1, 6):
            batch = controller.drain()
            assert [(e.session_id, e.scan[0]) for e in batch] == [
                ("chatty", float(-index))
            ]
        assert len(controller) == 0

    def test_drain_sequence_is_deterministic_in_the_arrival_order(self):
        offers = [
            ("a", -1.0),
            ("b", -2.0),
            ("a", -3.0),
            ("c", -4.0),
            ("b", -5.0),
            ("a", -6.0),
        ]

        def run():
            controller = AdmissionController(capacity=16)
            for session_id, value in offers:
                controller.offer(_event(session_id, value))
            batches = []
            while len(controller):
                batches.append(
                    [
                        (e.session_id, e.scan[0])
                        for e in controller.drain(max_batch=2)
                    ]
                )
            return batches

        assert run() == run()
        assert run() == [
            [("a", -1.0), ("b", -2.0)],
            [("a", -3.0), ("c", -4.0)],
            [("b", -5.0), ("a", -6.0)],
        ]
