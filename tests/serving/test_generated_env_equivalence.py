"""Batched-vs-sequential bitwise equality over a generated environment.

The PR-2 contract — the batched engine is the same function as the
sequential path, bit for bit — was proven on the paper's office hall.
This suite re-proves it over a procedurally generated warehouse world
(sparse-adversarial AP placement, heavy twins), so the guarantee is a
property of the engine, not of one floor plan.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    BatchedServingEngine,
    build_session_services,
    fix_stream_checksum,
    serve_batched,
    serve_sequential,
    workload_checksum,
)
from repro.sim.evaluation import multi_session_workload

N_SESSIONS = 6


@pytest.fixture(scope="module")
def generated_world(generated_study):
    """``(fingerprint_db, motion_db, config, plan, workload)``."""
    study = generated_study
    n_aps = study.scenario.survey.database.n_aps
    fingerprint_db = study.fingerprint_db(n_aps)
    motion_db, _ = study.motion_db(n_aps)
    workload = multi_session_workload(
        study.test_traces, N_SESSIONS, corpus_size=3, stagger_ticks=1
    )
    return fingerprint_db, motion_db, study.config, study.scenario.plan, workload


def _serve_both(generated_world):
    fingerprint_db, motion_db, config, plan, workload = generated_world

    def services():
        return build_session_services(
            workload, fingerprint_db, motion_db, config,
            resilient=True, plan=plan,
        )

    sequential = serve_sequential(workload, services())
    engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    batched = serve_batched(engine, workload, services())
    return sequential, batched


class TestGeneratedEnvironmentEquivalence:
    def test_batched_equals_sequential_bitwise(self, generated_world):
        sequential, batched = _serve_both(generated_world)
        assert batched.n_intervals == sequential.n_intervals
        for session_id in sequential.fixes:
            assert fix_stream_checksum(
                batched.fixes[session_id]
            ) == fix_stream_checksum(sequential.fixes[session_id]), (
                f"session {session_id} diverged on the generated world"
            )

    def test_batched_run_is_deterministic(self, generated_world):
        _, first = _serve_both(generated_world)
        _, second = _serve_both(generated_world)
        assert workload_checksum(first) == workload_checksum(second)

    def test_workload_mixes_sessions_per_tick(self, generated_world):
        *_, workload = generated_world
        assert len(workload.sessions) == N_SESSIONS
        assert any(len(tick) > 1 for tick in workload.ticks)
