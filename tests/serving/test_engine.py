"""Unit contracts of the serving engine and session manager.

The equivalence suite proves the numbers; these tests pin the lifecycle
and guard rails — duplicate registration, cross-database sessions,
config mismatches, per-tick scheduling rules — that keep the shared
caches sound.
"""

from __future__ import annotations

import pytest

from repro.core.config import MoLocConfig
from repro.motion.pedestrian import BodyProfile
from repro.robustness import ResilientMoLocService
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    SessionManager,
)
from repro.service import MoLocService


@pytest.fixture()
def world(small_study):
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    engine = BatchedServingEngine(
        fingerprint_db, motion_db, small_study.config
    )

    def make_service(cls=ResilientMoLocService, **kwargs):
        kwargs.setdefault("config", small_study.config)
        return cls(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            **kwargs,
        )

    return engine, make_service, small_study


def test_duplicate_session_id_rejected(world):
    engine, make_service, _ = world
    engine.add_session("alice", make_service())
    with pytest.raises(ValueError, match="already registered"):
        engine.add_session("alice", make_service())


def test_foreign_database_session_rejected(world):
    engine, _, study = world
    foreign = MoLocService(
        study.fingerprint_db(4),
        study.motion_db(4)[0],
        body=BodyProfile(height_m=1.72),
        config=study.config,
    )
    with pytest.raises(ValueError, match="different fingerprint database"):
        engine.add_session("bob", foreign)


def test_mismatched_config_session_rejected(world):
    engine, make_service, _ = world
    other = make_service(config=MoLocConfig(k=3))
    with pytest.raises(ValueError, match="config differs"):
        engine.add_session("carol", other)


def test_same_session_twice_in_one_tick_rejected(world):
    engine, make_service, study = world
    engine.add_session("dave", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    events = [
        IntervalEvent(session_id="dave", scan=scan),
        IntervalEvent(session_id="dave", scan=scan),
    ]
    with pytest.raises(ValueError, match="appears twice"):
        engine.tick(events)


def test_unknown_session_dropped_as_unroutable(world):
    """A stranded event for a dead session must not abort the batch."""
    engine, make_service, study = world
    engine.add_session("alive", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    outcome = engine.tick_detailed(
        [
            IntervalEvent(session_id="nobody", scan=scan),
            IntervalEvent(session_id="alive", scan=scan),
        ]
    )
    assert outcome.unroutable == ("nobody",)
    assert outcome.fixes[0] is None
    assert outcome.served == ("alive",)
    assert outcome.fixes[1] is not None
    snapshot = engine.metrics.snapshot()
    assert snapshot["counters"]["engine.unroutable"] == 1


def test_tick_serves_and_counts(world):
    engine, make_service, study = world
    engine.add_session("erin", make_service())
    engine.add_session("frank", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    fixes = engine.tick(
        [
            IntervalEvent(session_id="erin", scan=scan),
            IntervalEvent(session_id="frank", scan=scan),
        ]
    )
    assert len(fixes) == 2
    # Identical first-interval inputs coalesce within the tick: one
    # einsum row is computed (the miss), the duplicate subscribes to it;
    # the *next* tick's identical queries are pure cache hits.
    assert engine.matcher.cache_misses == 1
    assert engine.matcher.coalesced_hits == 1
    assert engine.matcher.cache_hits == 0
    engine.tick(
        [
            IntervalEvent(session_id="erin", scan=scan),
            IntervalEvent(session_id="frank", scan=scan),
        ]
    )
    assert engine.matcher.cache_hits == 2
    assert engine.ticks_served == 2
    assert engine.intervals_served == 4
    record = engine.sessions.get("erin")
    assert record.intervals_served == 2
    assert record.last_fix is not None


def test_remove_session_ends_service(world):
    engine, make_service, study = world
    service = make_service()
    engine.add_session("gina", service)
    scan = study.test_traces[0].initial_fingerprint.rss
    engine.tick([IntervalEvent(session_id="gina", scan=scan)])
    assert service.fix_count == 1
    engine.remove_session("gina")
    assert service.fix_count == 0  # end_session ran
    with pytest.raises(KeyError):
        engine.sessions.get("gina")


def test_session_manager_standalone():
    manager = SessionManager()
    assert len(manager) == 0
    with pytest.raises(KeyError):
        manager.get("x")
    with pytest.raises(KeyError):
        manager.remove("x")
