"""Crash safety under attack: trust state survives checkpoint/restore.

The adversarial acceptance bar: serve a workload that carries a live
rogue-AP attack with the trust defense enabled, kill the engine after
*any* tick, restore the newest checkpoint into a fresh engine with
fresh trust monitors, replay the write-ahead log — and the post-crash
fix stream (masked APs, fault attributions, confidences and all) is
bitwise identical to the run that never crashed.  Quarantine streaks,
parole countdowns and EWMA residual statistics all live in the
checkpoint; losing any of them would flip a post-restore quarantine
decision and diverge the stream.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.motion.pedestrian import BodyProfile
from repro.robustness import ResilientMoLocService
from repro.robustness.trust import ApTrustMonitor
from repro.serving import (
    BatchedServingEngine,
    IntervalEvent,
    WriteAheadLog,
    build_session_services,
    fix_stream_checksum,
)
from repro.sim.adversary import inject_rogue_ap
from repro.sim.evaluation import multi_session_workload

N_SESSIONS = 16
N_APS = 6
ROGUE_AP = 5
ONSET_INTERVAL = 2


def _defended_service(fingerprint_db, motion_db, config):
    # One monitor per service: trust state is per-user.
    return ResilientMoLocService(
        fingerprint_db,
        motion_db,
        body=BodyProfile(height_m=1.72),
        config=config,
        trust=ApTrustMonitor(n_aps=N_APS),
    )


@pytest.fixture(scope="module")
def attack_world(small_study):
    """A 16-session workload whose every walk carries a rogue AP.

    The forgery lands at interval 2, so the first ticks build honest
    EWMA statistics and the quarantine streak is mid-flight at several
    crash points — exactly the state a lossy restore would corrupt.
    """
    fingerprint_db = small_study.fingerprint_db(N_APS)
    motion_db, _ = small_study.motion_db(N_APS)
    traces = [
        inject_rogue_ap(
            dataclasses.replace(trace, hops=list(trace.hops[:5])),
            ROGUE_AP,
            ONSET_INTERVAL,
        )
        for trace in small_study.test_traces[:4]
    ]
    workload = multi_session_workload(
        traces, N_SESSIONS, corpus_size=4, stagger_ticks=0
    )
    return fingerprint_db, motion_db, small_study.config, workload


def _events_of(tick):
    return [
        IntervalEvent(
            session_id=interval.session_id,
            scan=interval.scan,
            imu=interval.imu,
            sequence=interval.sequence,
        )
        for interval in tick
    ]


def _checkpoint_text(engine: BatchedServingEngine) -> str:
    return json.dumps(engine.checkpoint(), sort_keys=True)


@pytest.fixture(scope="module")
def baseline_run(attack_world, tmp_path_factory):
    """The uninterrupted defended run under attack, fully journaled."""
    fingerprint_db, motion_db, config, workload = attack_world
    wal_path = tmp_path_factory.mktemp("wal-adv") / "serving.wal"
    services = build_session_services(
        workload,
        fingerprint_db,
        motion_db,
        config,
        make_service=lambda trace: _defended_service(
            fingerprint_db, motion_db, config
        ),
    )
    engine = BatchedServingEngine(fingerprint_db, motion_db, config)
    for session_id, service in services.items():
        engine.add_session(session_id, service)
    tick_fixes = []
    checkpoints = {0: json.loads(json.dumps(engine.checkpoint()))}
    with WriteAheadLog(wal_path, fsync=False) as wal:
        for tick in workload.ticks:
            events = _events_of(tick)
            wal.append(engine.tick_index + 1, events)
            fixes = engine.tick(events)
            tick_fixes.append(
                {
                    event.session_id: fix
                    for event, fix in zip(events, fixes)
                }
            )
            checkpoints[engine.tick_index] = json.loads(
                json.dumps(engine.checkpoint())
            )
    return engine, services, wal_path, tick_fixes, checkpoints


class TestDefendedKillAnywhere:
    def test_the_attack_and_the_defense_actually_engaged(self, baseline_run):
        """A vacuous baseline would make the sweep below meaningless."""
        _, services, _, tick_fixes, checkpoints = baseline_run
        quarantines = sum(
            service.metrics.counter("service.trust.quarantines").value
            for service in services.values()
        )
        assert quarantines > 0
        masked = {
            ap
            for fixes in tick_fixes
            for fix in fixes.values()
            for ap in fix.health.masked_ap_ids
        }
        assert ROGUE_AP in masked
        # The final checkpoint carries live trust state for the rogue.
        final = checkpoints[len(tick_fixes)]
        trust_states = [
            entry["service"]["trust"] for entry in final["sessions"]
        ]
        assert all("quarantined" in state for state in trust_states)
        assert any(state["quarantined"][ROGUE_AP] for state in trust_states)

    def test_restore_and_replay_is_bitwise_exact_at_every_crash_point(
        self, attack_world, baseline_run
    ):
        """Crash after tick t, for every t: identical defended streams."""
        fingerprint_db, motion_db, config, workload = attack_world
        engine, _, wal_path, tick_fixes, checkpoints = baseline_run
        final_state = _checkpoint_text(engine)
        n_ticks = len(workload.ticks)
        assert engine.tick_index == n_ticks

        for crash_after in range(n_ticks + 1):
            fresh = BatchedServingEngine(fingerprint_db, motion_db, config)
            fresh.restore(
                checkpoints[crash_after],
                lambda session_id: _defended_service(
                    fingerprint_db, motion_db, config
                ),
            )
            assert fresh.tick_index == crash_after
            replayed = {sid: [] for sid in workload.sessions}
            with WriteAheadLog(wal_path, fsync=False) as wal:
                for _, events in wal.events_after(crash_after):
                    for event, fix in zip(events, fresh.tick(events)):
                        replayed[event.session_id].append(fix)
            assert fresh.tick_index == n_ticks
            for session_id, fixes in replayed.items():
                baseline = [
                    tick_fixes[t][session_id]
                    for t in range(crash_after, n_ticks)
                    if session_id in tick_fixes[t]
                ]
                assert fix_stream_checksum(fixes) == fix_stream_checksum(
                    baseline
                ), f"stream diverged for {session_id} (crash at {crash_after})"
            assert _checkpoint_text(fresh) == final_state

    def test_pre_trust_checkpoint_restores_with_a_clean_monitor(
        self, attack_world, baseline_run
    ):
        """A checkpoint written before the defense existed still loads.

        The trust key is absent from such documents; restore must reset
        the monitor rather than crash or carry stale quarantines.
        """
        fingerprint_db, motion_db, config, _ = attack_world
        _, _, _, _, checkpoints = baseline_run
        legacy = json.loads(json.dumps(checkpoints[3]))
        for entry in legacy["sessions"]:
            entry["service"].pop("trust", None)
        fresh = BatchedServingEngine(fingerprint_db, motion_db, config)
        fresh.restore(
            legacy,
            lambda session_id: _defended_service(
                fingerprint_db, motion_db, config
            ),
        )
        for entry in legacy["sessions"]:
            monitor = fresh.sessions.get(entry["session_id"]).service.trust
            assert monitor.quarantined_ap_ids == ()
            assert monitor.residual_means == (None,) * N_APS
