"""Golden-trace equivalence: the batched engine is not an approximation.

Three seeded scenarios (clean, single-AP outage, twin-heavy 4-AP
deployment) are served twice — one ``on_interval`` at a time, and
through the :class:`~repro.serving.BatchedServingEngine` — and the fix
streams must agree **bitwise**: same candidate sets (ids, hex-equal
dissimilarities and probabilities), same argmax, same health modes and
fault lists, fault injection included.

The sequential streams are additionally pinned against serialized
fixtures in ``golden/`` (regenerate with ``generate_golden.py`` after an
intentional numerical change), so the pair of paths cannot drift
together unnoticed.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.serving import ServeResult, workload_checksum

from golden_scenarios import (
    SCENARIOS,
    golden_path,
    load_golden,
    serialize_fix,
    serialize_result,
    serve_scenario,
)

_served: Dict[str, Tuple[ServeResult, ServeResult]] = {}


def served(study, name: str) -> Tuple[ServeResult, ServeResult]:
    """Serve a scenario once per test session, both ways."""
    if name not in _served:
        _served[name] = serve_scenario(study, name)
    return _served[name]


@pytest.mark.parametrize("name", SCENARIOS)
def test_batched_reproduces_sequential_bitwise(small_study, name):
    sequential, batched = served(small_study, name)
    assert set(sequential.fixes) == set(batched.fixes)
    for session_id, sequential_stream in sequential.fixes.items():
        batched_stream = batched.fixes[session_id]
        assert len(sequential_stream) == len(batched_stream)
        for interval, (sequential_fix, batched_fix) in enumerate(
            zip(sequential_stream, batched_stream)
        ):
            assert serialize_fix(sequential_fix) == serialize_fix(
                batched_fix
            ), f"{name}: {session_id} diverges at interval {interval}"
    assert workload_checksum(sequential) == workload_checksum(batched)


@pytest.mark.parametrize("name", SCENARIOS)
def test_sequential_matches_golden_fixture(small_study, name):
    assert golden_path(name).exists(), (
        f"missing golden fixture for {name!r}; run "
        "PYTHONPATH=src:tests/serving python tests/serving/generate_golden.py"
    )
    sequential, _ = served(small_study, name)
    assert serialize_result(sequential) == load_golden(name)


def test_ap_outage_scenario_actually_degrades(small_study):
    """The fault-injection scenario exercises the robustness chain: the
    dead AP is diagnosed and masked somewhere in every session."""
    sequential, _ = served(small_study, "ap_outage")
    for session_id, fixes in sequential.fixes.items():
        assert any(
            5 in fix.health.masked_ap_ids for fix in fixes
        ), f"{session_id} never masked the dead AP"


def test_twin_heavy_scenario_uses_motion(small_study):
    """The 4-AP scenario leans on Eq. 6: motion assists most intervals."""
    sequential, _ = served(small_study, "twin_heavy")
    for session_id, fixes in sequential.fixes.items():
        assisted = sum(fix.used_motion for fix in fixes)
        assert assisted >= len(fixes) // 2, session_id
