"""The three golden serving scenarios and their serialization.

Shared between the equivalence tests and ``generate_golden.py`` (the
regeneration script), so the fixtures on disk and the assertions in the
suite can never disagree about what a scenario contains.

Scenarios (all seeded, all replayed by 4 concurrent sessions with
staggered starts so ticks mix sessions at different walk phases):

* ``clean`` — held-out walks, 6 APs, nothing injected;
* ``ap_outage`` — AP 5 dead for every session's whole walk (the
  robustness chain must diagnose and mask it, batched or not);
* ``twin_heavy`` — the 4-AP deployment prefix, where fingerprint twins
  dominate and motion evidence does the disambiguation.

Floats are serialized with ``float.hex`` so "equal" means bit-equal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.serving import (
    BatchedServingEngine,
    ServeResult,
    build_session_services,
    serve_batched,
    serve_sequential,
)
from repro.sim.evaluation import MultiSessionWorkload, multi_session_workload
from repro.sim.experiments import Study
from repro.sim.failures import inject_ap_outage

SCENARIOS = ("clean", "ap_outage", "twin_heavy")
N_SESSIONS = 4
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def scenario_case(study: Study, name: str):
    """``(fingerprint_db, motion_db, workload)`` for one scenario."""
    traces = study.test_traces[:N_SESSIONS]
    n_aps = 6
    if name == "ap_outage":
        traces = [inject_ap_outage(trace, ap_id=5) for trace in traces]
    elif name == "twin_heavy":
        n_aps = 4
    elif name != "clean":
        raise ValueError(f"unknown golden scenario {name!r}")
    fingerprint_db = study.fingerprint_db(n_aps)
    motion_db, _ = study.motion_db(n_aps)
    workload = multi_session_workload(
        traces,
        N_SESSIONS,
        corpus_size=N_SESSIONS,
        stagger_ticks=1,
        n_aps=None if n_aps == 6 else n_aps,
    )
    return fingerprint_db, motion_db, workload


def serve_scenario(
    study: Study, name: str
) -> Tuple[ServeResult, ServeResult]:
    """Serve one scenario both ways: ``(sequential, batched)``.

    Both paths get identically built and calibrated services; the
    batched run goes through a fresh engine with default caches.
    """
    fingerprint_db, motion_db, workload = scenario_case(study, name)
    plan = study.scenario.plan

    def services() -> Dict[str, object]:
        return build_session_services(
            workload,
            fingerprint_db,
            motion_db,
            study.config,
            resilient=True,
            plan=plan,
        )

    sequential = serve_sequential(workload, services())
    engine = BatchedServingEngine(fingerprint_db, motion_db, study.config)
    batched = serve_batched(engine, workload, services())
    return sequential, batched


def serialize_fix(fix: object) -> dict:
    """One fix as a JSON-safe dict with bit-exact (hex) floats."""
    estimate = getattr(fix, "estimate", fix)
    record = {
        "location_id": estimate.location_id,
        "probability": estimate.probability.hex(),
        "used_motion": estimate.used_motion,
        "candidates": [
            [
                candidate.location_id,
                candidate.dissimilarity.hex(),
                candidate.fingerprint_probability.hex(),
                candidate.probability.hex(),
            ]
            for candidate in estimate.candidates
        ],
    }
    health = getattr(fix, "health", None)
    if health is not None:
        record["mode"] = health.mode.value
        record["faults"] = [fault.value for fault in health.faults]
        record["confidence"] = health.confidence.hex()
        record["masked_ap_ids"] = sorted(health.masked_ap_ids)
        record["recalibrated"] = bool(health.recalibrated)
    return record


def serialize_result(result: ServeResult) -> Dict[str, List[dict]]:
    """Every session's fix stream, serialized, keyed by session id."""
    return {
        session_id: [serialize_fix(fix) for fix in fixes]
        for session_id, fixes in sorted(result.fixes.items())
    }


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def load_golden(name: str) -> Dict[str, List[dict]]:
    return json.loads(golden_path(name).read_text())
