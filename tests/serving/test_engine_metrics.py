"""The engine's observability surface: snapshots, phases, tick hooks."""

from __future__ import annotations

import json

import pytest

from repro.motion.pedestrian import BodyProfile
from repro.observability import TickProfiler
from repro.robustness import ResilientMoLocService
from repro.serving import BatchedServingEngine, IntervalEvent

PHASES = ("prepare", "match", "transitions", "complete")


@pytest.fixture()
def world(small_study):
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    engine = BatchedServingEngine(
        fingerprint_db, motion_db, small_study.config
    )

    def make_service():
        return ResilientMoLocService(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=small_study.config,
        )

    return engine, make_service, small_study


def test_metrics_snapshot_shape(world):
    engine, make_service, study = world
    engine.add_session("ana", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    engine.tick([IntervalEvent(session_id="ana", scan=scan)])
    snapshot = engine.metrics_snapshot()
    assert snapshot["schema"] == 2
    assert set(snapshot) == {
        "schema",
        "engine",
        "matcher",
        "transitions",
        "sessions",
    }
    for section in ("engine", "matcher", "transitions", "sessions"):
        assert set(snapshot[section]) == {
            "counters",
            "gauges",
            "histograms",
        }
    # JSON-plain without custom encoders.
    assert json.loads(json.dumps(snapshot)) == snapshot
    counters = snapshot["engine"]["counters"]
    assert counters["engine.ticks"] == 1
    assert counters["engine.intervals"] == 1
    assert snapshot["engine"]["gauges"]["engine.sessions"] == 1
    assert snapshot["engine"]["histograms"]["engine.tick.batch_size"][
        "count"
    ] == 1
    assert snapshot["matcher"]["counters"]["matcher.cache_misses"] == 1
    assert snapshot["sessions"]["counters"]["service.fixes"] == 1
    assert (
        snapshot["sessions"]["counters"][
            "service.fixes_by_mode.wifi-only"
        ]
        == 1
    )


def test_counters_are_monotonic_across_ticks(world):
    engine, make_service, study = world
    engine.add_session("bo", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    event = IntervalEvent(session_id="bo", scan=scan)
    engine.tick([event])
    first = engine.metrics_snapshot()
    engine.tick([event])
    engine.tick([event])
    second = engine.metrics_snapshot()
    for section in ("engine", "matcher", "transitions", "sessions"):
        for name, value in first[section]["counters"].items():
            assert second[section]["counters"][name] >= value, name
    assert second["engine"]["counters"]["engine.ticks"] == 3
    assert (
        second["engine"]["histograms"]["engine.tick.latency_s"]["count"]
        == 3
    )


def test_sessions_aggregate_tracks_membership(world):
    engine, make_service, study = world
    engine.add_session("carla", make_service())
    engine.add_session("dean", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    engine.tick(
        [
            IntervalEvent(session_id="carla", scan=scan),
            IntervalEvent(session_id="dean", scan=scan),
        ]
    )
    both = engine.metrics_snapshot()
    assert both["sessions"]["counters"]["service.fixes"] == 2
    engine.remove_session("dean")
    remaining = engine.metrics_snapshot()
    assert remaining["sessions"]["counters"]["service.fixes"] == 1
    assert remaining["engine"]["gauges"]["engine.sessions"] == 1


def test_last_tick_phases_are_disjoint_and_positive(world):
    engine, make_service, study = world
    engine.add_session("eva", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    engine.tick([IntervalEvent(session_id="eva", scan=scan)])
    phases = engine.last_tick_phases
    assert set(phases) == set(PHASES)
    assert all(duration >= 0.0 for duration in phases.values())
    tick_s = engine.metrics.histogram("engine.tick.latency_s").sum
    # The four phases partition the tick (modulo loop overhead).
    assert sum(phases.values()) <= tick_s


def test_profiling_hooks_receive_profiles_and_are_isolated(world):
    engine, make_service, study = world
    engine.add_session("finn", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    event = IntervalEvent(session_id="finn", scan=scan)

    profiler = TickProfiler(max_ticks=8)
    engine.add_profiling_hook(profiler)

    def broken_hook(profile):
        raise RuntimeError("hook bug")

    engine.add_profiling_hook(broken_hook)
    assert engine.last_hook_error is None
    engine.tick([event])
    engine.tick([event])

    assert [profile.tick for profile in profiler.profiles] == [1, 2]
    first = profiler.profiles[0]
    assert first.batch_size == 1
    assert first.duration_s > 0.0
    assert set(first.phases) == set(PHASES)
    assert engine.metrics.counter("engine.tick_hook_errors").value == 2
    # The swallowed exception is still diagnosable: the last error's
    # repr is kept alongside the counter.
    assert "hook bug" in engine.last_hook_error

    engine.remove_profiling_hook(broken_hook)
    engine.tick([event])
    assert engine.metrics.counter("engine.tick_hook_errors").value == 2
    assert len(profiler.profiles) == 3
    with pytest.raises(ValueError):
        engine.remove_profiling_hook(broken_hook)


def test_checkpoint_serialization_is_instrumented(world):
    """``checkpoint()``/``restore()`` observe size and timing histograms.

    The snapshot pins the instrument names and semantics the cluster's
    migration path budgets against: one ``checkpoint.bytes`` and
    ``checkpoint.encode_seconds`` observation per full checkpoint, one
    ``checkpoint.restore_seconds`` observation per session restored
    (``restore`` and per-session ``load_session`` alike).
    """
    engine, make_service, study = world
    engine.add_session("gil", make_service())
    engine.add_session("hana", make_service())
    scan = study.test_traces[0].initial_fingerprint.rss
    engine.tick(
        [
            IntervalEvent(session_id="gil", scan=scan),
            IntervalEvent(session_id="hana", scan=scan),
        ]
    )
    document = engine.checkpoint()
    engine.checkpoint()
    histograms = engine.metrics_snapshot()["engine"]["histograms"]
    assert histograms["checkpoint.bytes"]["count"] == 2
    # The observed size is the actual JSON encoding's byte length.
    import json as _json

    encoded = len(_json.dumps(document, sort_keys=True).encode("utf-8"))
    assert histograms["checkpoint.bytes"]["min"] <= encoded
    assert histograms["checkpoint.bytes"]["max"] >= encoded
    assert histograms["checkpoint.encode_seconds"]["count"] == 2
    assert histograms["checkpoint.encode_seconds"]["sum"] >= 0.0
    assert histograms["checkpoint.restore_seconds"]["count"] == 0

    other = BatchedServingEngine(
        study.fingerprint_db(6), study.motion_db(6)[0], study.config
    )
    other.restore(document, lambda session_id: make_service())
    restored = other.metrics_snapshot()["engine"]["histograms"]
    assert restored["checkpoint.restore_seconds"]["count"] == 2

    entry = engine.checkpoint_session("gil")
    other.remove_session("gil")
    other.load_session(entry, lambda session_id: make_service())
    restored = other.metrics_snapshot()["engine"]["histograms"]
    assert restored["checkpoint.restore_seconds"]["count"] == 3
