"""The online speed estimator and the stride-cadence model."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MoLocConfig
from repro.serving.speed import SpeedEstimator, adaptive_step_length_m

_CONFIG = MoLocConfig()


def _observations():
    """Random (steps-or-None, duration, stride) observation sequences."""
    one = st.tuples(
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=30.0)),
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.4, max_value=1.1),
    )
    return st.lists(one, min_size=0, max_size=20)


class TestAdaptiveStepLength:
    def test_reference_cadence_returns_the_base_stride(self):
        base = 0.70
        reference_cadence = _CONFIG.speed_reference_mps / base
        assert adaptive_step_length_m(
            reference_cadence, base, _CONFIG
        ) == pytest.approx(base)

    def test_grows_linearly_with_cadence(self):
        base = 0.70
        reference = _CONFIG.speed_reference_mps / base
        assert adaptive_step_length_m(
            1.2 * reference, base, _CONFIG
        ) == pytest.approx(1.2 * base)

    def test_clamped_to_a_plausible_stride_band(self):
        assert adaptive_step_length_m(0.1, 0.70, _CONFIG) == 0.3
        assert adaptive_step_length_m(9.0, 0.70, _CONFIG) == 1.3

    def test_rejects_non_positive_inputs(self):
        with pytest.raises(ValueError, match="cadence"):
            adaptive_step_length_m(0.0, 0.7, _CONFIG)
        with pytest.raises(ValueError, match="step length"):
            adaptive_step_length_m(2.0, 0.0, _CONFIG)


class TestSpeedEstimator:
    def test_unknown_speed_leaves_the_paper_model_alone(self):
        estimator = SpeedEstimator(_CONFIG)
        assert estimator.speed_mps is None
        assert estimator.beta_scale == 1.0
        assert not estimator.dwell

    def test_walked_interval_updates_the_estimate(self):
        estimator = SpeedEstimator(_CONFIG)
        # The paper gait: 0.52 s steps at a 0.70 m stride.
        estimator.observe(10.0, 5.2, 0.70)
        assert estimator.speed_mps == pytest.approx(1.35, rel=0.05)
        assert estimator.samples == 1
        assert estimator.beta_scale == pytest.approx(1.0, rel=0.05)

    def test_dwell_holds_the_estimate(self):
        estimator = SpeedEstimator(_CONFIG)
        estimator.observe(10.0, 5.2, 0.70)
        before = estimator.speed_mps
        estimator.observe(None, 4.0, 0.70)
        assert estimator.dwell
        assert estimator.dwells == 1
        assert estimator.speed_mps == before
        # Sub-threshold shuffling is a dwell too.
        estimator.observe(0.1, 10.0, 0.70)
        assert estimator.dwell
        assert estimator.speed_mps == before

    def test_beta_scale_clamps_to_the_configured_band(self):
        estimator = SpeedEstimator(_CONFIG)
        for _ in range(40):
            estimator.observe(28.0, 5.0, 1.1)  # absurdly fast
        assert estimator.beta_scale == _CONFIG.speed_beta_scale_max

    def test_running_widening_and_offsets_exceed_walking(self):
        walk = SpeedEstimator(_CONFIG)
        run = SpeedEstimator(_CONFIG)
        for _ in range(10):
            walk.observe(10.0, 5.2, 0.70)
            run.observe(10.0, 3.8, 0.70)  # run cadence, walk-calibrated
        assert run.speed_mps > walk.speed_mps
        assert run.beta_scale > walk.beta_scale

    def test_rejects_non_positive_duration_and_stride(self):
        estimator = SpeedEstimator(_CONFIG)
        with pytest.raises(ValueError, match="duration"):
            estimator.observe(10.0, 0.0, 0.7)
        with pytest.raises(ValueError, match="step length"):
            estimator.observe(10.0, 5.0, -1.0)

    @given(_observations())
    @settings(max_examples=60, deadline=None)
    def test_state_dict_restore_is_a_fixpoint(self, observations):
        source = SpeedEstimator(_CONFIG)
        for steps, duration, stride in observations:
            source.observe(steps, duration, stride)
        state = json.loads(json.dumps(source.state_dict()))
        clone = SpeedEstimator(_CONFIG)
        clone.load_state_dict(state)
        assert clone.state_dict() == source.state_dict()
        assert clone.beta_scale == source.beta_scale
        # The clone continues identically.
        clone.observe(11.0, 5.0, 0.68)
        source.observe(11.0, 5.0, 0.68)
        assert clone.state_dict() == source.state_dict()
