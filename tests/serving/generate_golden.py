"""Regenerate the golden serving fixtures in ``tests/serving/golden/``.

Run from the repo root after an *intentional* numerical change to the
serving pipeline:

    PYTHONPATH=src:tests/serving python tests/serving/generate_golden.py

The fixtures capture the **sequential** path's fix streams (the batched
engine is required to reproduce them bitwise, so it gets no say).  The
study here must stay identical to the ``small_study`` fixture in
``tests/conftest.py`` — same seed, same volumes — or the suite and the
fixtures will silently describe different worlds.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.config import MoLocConfig
from repro.sim.crowdsource import TraceGenerationConfig, generate_traces
from repro.sim.experiments import Study
from repro.sim.scenario import build_scenario

from golden_scenarios import (
    GOLDEN_DIR,
    SCENARIOS,
    golden_path,
    serialize_result,
    serve_scenario,
)


def build_study() -> Study:
    """The exact study ``tests/conftest.py::small_study`` builds."""
    scenario = build_scenario(seed=7)
    config = TraceGenerationConfig(n_hops=15)
    training = generate_traces(
        scenario, 150, np.random.default_rng([7, 10]), config=config
    )
    test = generate_traces(
        scenario,
        34,
        np.random.default_rng([7, 11]),
        config=config,
        start_time_s=3600.0,
    )
    return Study(
        scenario=scenario,
        training_traces=training,
        test_traces=test,
        config=MoLocConfig(),
    )


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    study = build_study()
    for name in SCENARIOS:
        sequential, _ = serve_scenario(study, name)
        path = golden_path(name)
        path.write_text(
            json.dumps(serialize_result(sequential), indent=1, sort_keys=True)
            + "\n"
        )
        n_fixes = sum(len(fixes) for fixes in sequential.fixes.values())
        print(f"wrote {path} ({n_fixes} fixes)")


if __name__ == "__main__":
    main()
