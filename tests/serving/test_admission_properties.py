"""Admission accounting: every offered event reaches exactly one fate.

The invariant the ingress layer leans on (its clients each wait for
exactly one answer): for any interleaving of offers and drains, under
either shedding policy,

    ``accepted == drained + dropped + depth``  and
    ``offered == accepted + rejected``

with every drop reported through ``on_evict`` exactly once, for an
event that was genuinely offered and is not simultaneously drained.
Property-tested over seeded burst schedules, not just the golden paths.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import AdmissionController, IntervalEvent

# An op schedule: each entry is either an offer burst (session slot) or
# a drain with a batch cap.  Small alphabets force session collisions
# (the one-per-session hold-back path) and capacity overruns.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.integers(min_value=0, max_value=4)),
        st.tuples(st.just("drain"), st.integers(min_value=1, max_value=5)),
    ),
    min_size=1,
    max_size=60,
)


def run_schedule(ops, capacity, policy):
    evicted = []
    controller = AdmissionController(
        capacity, policy=policy, on_evict=evicted.append
    )
    offered, accepted_events, drained_events = [], [], []
    rejected = 0
    for index, (op, arg) in enumerate(ops):
        if op == "offer":
            event = IntervalEvent(
                session_id=f"user-{arg}", scan=None, sequence=index
            )
            offered.append(event)
            if controller.offer(event):
                accepted_events.append(event)
            else:
                rejected += 1
        else:
            drained_events.extend(controller.drain(max_batch=arg))
    return controller, offered, accepted_events, drained_events, evicted, rejected


@settings(max_examples=60, deadline=None)
@given(
    ops=OPS,
    capacity=st.integers(min_value=1, max_value=6),
    policy=st.sampled_from(["reject-newest", "drop-oldest"]),
)
def test_every_event_has_exactly_one_fate(ops, capacity, policy):
    controller, offered, accepted, drained, evicted, rejected = run_schedule(
        ops, capacity, policy
    )
    counters = controller.metrics.snapshot()["counters"]

    # Counter arithmetic matches observed reality.
    assert counters["admission.accepted"] == len(accepted)
    assert counters["admission.rejected"] == rejected
    assert counters["admission.dropped"] == len(evicted)
    assert counters["admission.drained"] == len(drained)
    assert len(offered) == len(accepted) + rejected

    # The conservation law: everything accepted is drained, dropped,
    # or still queued — counted exactly once.
    assert len(accepted) == len(drained) + len(evicted) + len(controller)

    # Fates are disjoint and genuine (object identity, not equality).
    drained_ids = {id(event) for event in drained}
    evicted_ids = {id(event) for event in evicted}
    offered_ids = {id(event) for event in offered}
    assert len(drained_ids) == len(drained)
    assert len(evicted_ids) == len(evicted)
    assert drained_ids.isdisjoint(evicted_ids)
    assert drained_ids <= offered_ids
    assert evicted_ids <= offered_ids

    # Policy-specific exclusions.
    if policy == "reject-newest":
        assert not evicted
    else:
        assert rejected == 0


@settings(max_examples=40, deadline=None)
@given(ops=OPS, capacity=st.integers(min_value=1, max_value=6))
def test_drop_oldest_evicts_in_arrival_order(ops, capacity):
    _, _, accepted, _, evicted, _ = run_schedule(ops, capacity, "drop-oldest")
    # Evictions happen oldest-first, so the evicted sequence numbers of
    # the accepted stream appear in their original arrival order.
    positions = {id(event): slot for slot, event in enumerate(accepted)}
    evicted_slots = [positions[id(event)] for event in evicted]
    assert evicted_slots == sorted(evicted_slots)


@settings(max_examples=40, deadline=None)
@given(ops=OPS, capacity=st.integers(min_value=1, max_value=6))
def test_depth_gauge_tracks_the_live_queue(ops, capacity):
    controller, *_ = run_schedule(ops, capacity, "drop-oldest")
    gauges = controller.metrics.snapshot()["gauges"]
    assert gauges["admission.depth"] == len(controller)
