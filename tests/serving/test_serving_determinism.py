"""Determinism: same seeded workload, same metrics, same fix streams.

The engine's LRU caches and mask-bucketed batching reorder *work*, and
must never reorder *results*: two full benchmark passes over the same
seeded workload have to agree on every checksum, interval count, and
cache tally in ``BENCH_serving.json``'s deterministic view.  Wall-clock
fields are excluded by construction (that is what
:func:`~repro.serving.deterministic_view` is for).
"""

from __future__ import annotations

import pytest

from repro.serving import deterministic_view, throughput_report

SESSION_COUNTS = (1, 8)


@pytest.fixture(scope="module")
def reports(small_study):
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)

    def run():
        return throughput_report(
            fingerprint_db,
            motion_db,
            small_study.config,
            small_study.test_traces,
            plan=small_study.scenario.plan,
            session_counts=SESSION_COUNTS,
            corpus_size=4,
            stagger_ticks=1,
        )

    return run(), run()


def test_two_runs_agree_on_every_deterministic_metric(reports):
    first, second = reports
    assert deterministic_view(first) == deterministic_view(second)


def test_fix_streams_are_reproducible_and_equivalent(reports):
    first, second = reports
    for entry_a, entry_b in zip(first["results"], second["results"]):
        a, b = entry_a["deterministic"], entry_b["deterministic"]
        # Batched == sequential within each run (equivalence) ...
        assert a["equal"] and b["equal"]
        # ... and across runs (reproducibility), at every concurrency.
        assert a["sequential_checksum"] == b["sequential_checksum"]
        assert a["batched_checksum"] == b["batched_checksum"]


def test_report_covers_requested_concurrency_levels(reports):
    first, _ = reports
    assert [e["sessions"] for e in first["results"]] == list(SESSION_COUNTS)
    for entry in first["results"]:
        timing = entry["batched"]
        assert timing["intervals_per_s"] > 0
        assert timing["p95_tick_ms"] >= timing["p50_tick_ms"] >= 0.0
