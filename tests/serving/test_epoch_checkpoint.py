"""Crash safety across a database-epoch flip.

``tests/serving/test_checkpoint.py`` proves kill-anywhere recovery for
a frozen database.  This module proves the same contract when the
database itself moves mid-run: an engine over an
:class:`~repro.db.epochs.EpochalDatabase` flips to epoch 1 halfway
through the workload (WAL-logged first, same append-before-act
discipline as ticks), the process is killed after *any* tick — before,
at, or after the flip — and the restored engine replays to a bitwise
identical fix stream and end state.

Also under test: the checkpoint format seams the flip introduced —
frozen engines keep writing byte-stable version-1 checkpoints, epochal
engines write version 2 with an embedded epoch snapshot, a version-1
checkpoint restored into an epochal engine pins it back to epoch 0,
and anything newer than version 2 fails loudly.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.db.epochs import (
    ApRepowered,
    DriftDelta,
    EpochalDatabase,
    update_from_dict,
)
from repro.motion.pedestrian import BodyProfile
from repro.robustness import ResilientMoLocService
from repro.serving import (
    CHECKPOINT_FORMAT_VERSION,
    EPOCHAL_CHECKPOINT_FORMAT_VERSION,
    BatchedServingEngine,
    IntervalEvent,
    WriteAheadLog,
    build_session_services,
    fix_stream_checksum,
    recover_engine,
)

N_SESSIONS = 16


@pytest.fixture(scope="module")
def epoch_world(small_study):
    """A small multi-session workload plus its databases and updates."""
    from repro.sim.evaluation import multi_session_workload

    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)
    traces = [
        dataclasses.replace(trace, hops=list(trace.hops[:5]))
        for trace in small_study.test_traces[:4]
    ]
    workload = multi_session_workload(
        traces, N_SESSIONS, corpus_size=4, stagger_ticks=0
    )
    updates = [
        ApRepowered(ap_id=0, shift_db=-6.0),
        DriftDelta(offsets_db=(1.0,) * fingerprint_db.n_aps),
    ]
    return fingerprint_db, motion_db, small_study.config, workload, updates


def _make_service_factory(engine, motion_db, config):
    """Restore-side factory bound to the *engine's* current database.

    Restore re-binds the epoch before rebuilding sessions, so the
    factory must read ``engine.fingerprint_db`` at call time — a
    closure over the epoch-0 database would reject under the engine's
    same-database check after a post-flip restore.  (The cluster
    bootstrap does exactly this.)
    """

    def make_service(session_id: str) -> ResilientMoLocService:
        return ResilientMoLocService(
            engine.fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=config,
        )

    return make_service


def _events_of(tick):
    return [
        IntervalEvent(
            session_id=interval.session_id,
            scan=interval.scan,
            imu=interval.imu,
            sequence=interval.sequence,
        )
        for interval in tick
    ]


def _checkpoint_text(engine: BatchedServingEngine) -> str:
    return json.dumps(engine.checkpoint(), sort_keys=True)


def _fresh_epochal_engine(fingerprint_db, motion_db, config):
    return BatchedServingEngine(
        EpochalDatabase(fingerprint_db), motion_db, config
    )


@pytest.fixture(scope="module")
def flip_baseline(epoch_world, tmp_path_factory):
    """The uninterrupted epochal run with a WAL-logged mid-run flip.

    Returns the finished engine, the WAL path, per-tick fixes, per-tick
    (JSON-round-tripped) checkpoints — and, for the flip tick itself,
    an extra checkpoint captured *after* the flip, so recovery is
    exercised from both sides of the crash window the flip opens.
    """
    fingerprint_db, motion_db, config, workload, updates = epoch_world
    wal_path = tmp_path_factory.mktemp("epoch-wal") / "serving.wal"
    flip_after = len(workload.ticks) // 2

    engine = _fresh_epochal_engine(fingerprint_db, motion_db, config)
    services = build_session_services(
        workload, fingerprint_db, motion_db, config, resilient=True
    )
    for session_id, service in services.items():
        engine.add_session(session_id, service)

    tick_fixes = []
    checkpoints = {0: json.loads(json.dumps(engine.checkpoint()))}
    post_flip_checkpoint = None
    with WriteAheadLog(wal_path, fsync=False) as wal:
        for tick in workload.ticks:
            if engine.tick_index == flip_after and engine.epoch_id == 0:
                staged = engine.epochal_db.stage(updates)
                wal.append_epoch(
                    engine.tick_index,
                    staged.epoch_id,
                    staged.checksum,
                    updates,
                )
                engine.advance_epoch(
                    updates, expected_checksum=staged.checksum
                )
                post_flip_checkpoint = json.loads(
                    json.dumps(engine.checkpoint())
                )
            events = _events_of(tick)
            wal.append(engine.tick_index + 1, events)
            fixes = engine.tick(events)
            tick_fixes.append(
                {
                    event.session_id: fix
                    for event, fix in zip(events, fixes)
                }
            )
            checkpoints[engine.tick_index] = json.loads(
                json.dumps(engine.checkpoint())
            )
    assert engine.epoch_id == 1
    assert post_flip_checkpoint is not None
    return (
        engine,
        wal_path,
        tick_fixes,
        checkpoints,
        post_flip_checkpoint,
        flip_after,
    )


def _replay_tail(fresh, wal_path, crash_after, sessions):
    """Replay the WAL tail by hand, collecting per-session fixes."""
    replayed = {sid: [] for sid in sessions}
    with WriteAheadLog(wal_path, fsync=False) as wal:
        for kind, _, payload in wal.records_after(crash_after):
            if kind == "epoch":
                if int(payload["target"]) <= fresh.epoch_id:
                    continue
                fresh.advance_epoch(
                    updates=[
                        update_from_dict(entry)
                        for entry in payload["updates"]
                    ],
                    expected_checksum=payload["checksum"],
                )
                continue
            for event, fix in zip(payload, fresh.tick(payload)):
                replayed[event.session_id].append(fix)
    return replayed


class TestKillAnywhereAcrossTheFlip:
    def test_restore_and_replay_is_bitwise_exact_at_every_crash_point(
        self, epoch_world, flip_baseline
    ):
        fingerprint_db, motion_db, config, workload, _ = epoch_world
        engine, wal_path, tick_fixes, checkpoints, _, flip_after = (
            flip_baseline
        )
        final_state = _checkpoint_text(engine)
        n_ticks = len(workload.ticks)

        for crash_after in range(n_ticks + 1):
            fresh = _fresh_epochal_engine(fingerprint_db, motion_db, config)
            fresh.restore(
                checkpoints[crash_after],
                _make_service_factory(fresh, motion_db, config),
            )
            # Checkpoints up to and including the flip tick were taken
            # at epoch 0 (the flip lands just before the next tick).
            assert fresh.epoch_id == (0 if crash_after <= flip_after else 1)
            replayed = _replay_tail(
                fresh, wal_path, crash_after, workload.sessions
            )
            assert fresh.tick_index == n_ticks
            assert fresh.epoch_id == 1
            for session_id, fixes in replayed.items():
                baseline = [
                    tick_fixes[t][session_id]
                    for t in range(crash_after, n_ticks)
                    if session_id in tick_fixes[t]
                ]
                assert fix_stream_checksum(fixes) == fix_stream_checksum(
                    baseline
                ), f"stream diverged for {session_id} (crash at {crash_after})"
            assert _checkpoint_text(fresh) == final_state

    def test_crash_between_flip_and_next_checkpoint(
        self, epoch_world, flip_baseline
    ):
        """The flip's own crash window: checkpoint already at epoch 1.

        ``records_after`` re-yields the flip logged at the checkpoint's
        own tick; the replay must recognize it as already folded in and
        skip it rather than double-apply.
        """
        fingerprint_db, motion_db, config, workload, _ = epoch_world
        engine, wal_path, tick_fixes, _, post_flip, flip_after = (
            flip_baseline
        )
        fresh = _fresh_epochal_engine(fingerprint_db, motion_db, config)
        fresh.restore(
            post_flip, _make_service_factory(fresh, motion_db, config)
        )
        assert fresh.epoch_id == 1
        replayed = _replay_tail(
            fresh, wal_path, flip_after, workload.sessions
        )
        assert fresh.epoch_id == 1
        for session_id, fixes in replayed.items():
            baseline = [
                tick_fixes[t][session_id]
                for t in range(flip_after, len(workload.ticks))
                if session_id in tick_fixes[t]
            ]
            assert fix_stream_checksum(fixes) == fix_stream_checksum(baseline)
        assert _checkpoint_text(fresh) == _checkpoint_text(engine)

    def test_recover_engine_replays_ticks_and_the_flip(
        self, epoch_world, flip_baseline
    ):
        fingerprint_db, motion_db, config, workload, _ = epoch_world
        engine, wal_path, _, checkpoints, _, _ = flip_baseline
        crash_after = 1  # before the flip
        fresh = _fresh_epochal_engine(fingerprint_db, motion_db, config)
        with WriteAheadLog(wal_path, fsync=False) as wal:
            replayed = recover_engine(
                fresh,
                checkpoints[crash_after],
                wal,
                _make_service_factory(fresh, motion_db, config),
            )
        assert replayed == len(workload.ticks) - crash_after
        assert fresh.epoch_id == 1
        assert _checkpoint_text(fresh) == _checkpoint_text(engine)


class TestCheckpointFormats:
    def test_frozen_engines_stay_on_version_1(self, epoch_world):
        fingerprint_db, motion_db, config, _, _ = epoch_world
        engine = BatchedServingEngine(fingerprint_db, motion_db, config)
        document = engine.checkpoint()
        assert document["format_version"] == CHECKPOINT_FORMAT_VERSION == 1
        assert "epoch" not in document

    def test_epochal_engines_write_version_2_with_the_snapshot(
        self, epoch_world
    ):
        fingerprint_db, motion_db, config, _, updates = epoch_world
        engine = _fresh_epochal_engine(fingerprint_db, motion_db, config)
        engine.advance_epoch(updates)
        document = engine.checkpoint()
        assert (
            document["format_version"]
            == EPOCHAL_CHECKPOINT_FORMAT_VERSION
            == 2
        )
        assert document["epoch"]["epoch_id"] == 1
        assert document["epoch"]["checksum"] == engine.epochal_db.checksum

    def test_future_version_fails_loudly(self, epoch_world):
        fingerprint_db, motion_db, config, _, _ = epoch_world
        engine = _fresh_epochal_engine(fingerprint_db, motion_db, config)
        with pytest.raises(ValueError, match="newer than this build"):
            engine.restore(
                {"kind": "engine_checkpoint", "format_version": 3},
                lambda sid: None,
            )

    def test_epochal_checkpoint_rejected_by_a_frozen_engine(
        self, epoch_world
    ):
        fingerprint_db, motion_db, config, _, updates = epoch_world
        source = _fresh_epochal_engine(fingerprint_db, motion_db, config)
        source.advance_epoch(updates)
        document = json.loads(json.dumps(source.checkpoint()))
        frozen = BatchedServingEngine(fingerprint_db, motion_db, config)
        with pytest.raises(ValueError, match="frozen database"):
            frozen.restore(document, lambda sid: None)

    def test_version_1_checkpoint_pins_an_epochal_engine_to_epoch_0(
        self, epoch_world
    ):
        """Pre-epoch checkpoints restore with an implicit epoch-0 pin."""
        fingerprint_db, motion_db, config, _, updates = epoch_world
        v1 = BatchedServingEngine(
            fingerprint_db, motion_db, config
        ).checkpoint()
        v1 = json.loads(json.dumps(v1))

        epochal = EpochalDatabase(fingerprint_db)
        epochal.advance_epoch(updates)  # engine starts at epoch 1
        engine = BatchedServingEngine(epochal, motion_db, config)
        assert engine.epoch_id == 1
        engine.restore(v1, _make_service_factory(engine, motion_db, config))
        assert engine.epoch_id == 0
        assert engine.fingerprint_db is epochal.snapshot(0).database


class TestEpochWalRecords:
    def test_records_interleave_ticks_and_flips_in_file_order(
        self, tmp_path
    ):
        path = tmp_path / "mixed.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, [IntervalEvent("alice", [1.0])])
            wal.append_epoch(1, 1, "aa" * 32, [ApRepowered(0, -3.0)])
            wal.append(2, [IntervalEvent("alice", [2.0])])
        with WriteAheadLog(path, fsync=False) as wal:
            kinds = [(kind, tick) for kind, tick, _ in wal.records()]
        assert kinds == [("tick", 1), ("epoch", 1), ("tick", 2)]

    def test_records_after_keeps_flips_at_the_boundary(self, tmp_path):
        """Ticks strictly after, flips at or after: the flip logged at
        the checkpoint's own tick must be re-offered to recovery."""
        path = tmp_path / "boundary.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, [IntervalEvent("bob", [1.0])])
            wal.append_epoch(1, 1, "bb" * 32, [ApRepowered(1, 2.0)])
            wal.append(2, [IntervalEvent("bob", [2.0])])
        with WriteAheadLog(path, fsync=False) as wal:
            tail = [(kind, tick) for kind, tick, _ in wal.records_after(1)]
        assert tail == [("epoch", 1), ("tick", 2)]

    def test_epoch_payload_round_trips_its_updates(self, tmp_path):
        path = tmp_path / "payload.wal"
        updates = [ApRepowered(2, -4.5), DriftDelta((0.5, -1.0))]
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append_epoch(3, 7, "cc" * 32, updates)
        with WriteAheadLog(path, fsync=False) as wal:
            ((kind, tick, payload),) = list(wal.records())
        assert (kind, tick) == ("epoch", 3)
        assert payload["target"] == 7
        assert payload["checksum"] == "cc" * 32
        assert [
            update_from_dict(entry) for entry in payload["updates"]
        ] == updates

    def test_replay_ignores_epoch_records(self, tmp_path):
        """The legacy tick-only view stays valid on an epochal WAL."""
        path = tmp_path / "legacy.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, [IntervalEvent("eve", [1.0])])
            wal.append_epoch(1, 1, "dd" * 32, [ApRepowered(0, 1.0)])
            wal.append(2, [IntervalEvent("eve", [2.0])])
        with WriteAheadLog(path, fsync=False) as wal:
            ticks = [tick for tick, _ in wal.replay()]
        assert ticks == [1, 2]
