"""Property-based invariants of the vectorized serving hot path.

Hypothesis drives arbitrary queries, masks, priors, and measurements
through the batched kernels and checks them against the scalar
definitions they claim to equal — not approximately, but bit for bit —
plus the closed-form invariants (normalization, non-negativity,
boundedness) that hold for *any* input, not just recorded walks.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.config import MoLocConfig
from repro.core.fingerprint import Fingerprint, FingerprintDatabase
from repro.core.localizer import MoLocLocalizer
from repro.core.matching import select_candidates
from repro.core.motion_db import MotionDatabase, PairStatistics
from repro.core.motion_matching import set_transition_probability
from repro.motion.rlm import MotionMeasurement
from repro.serving import BatchMatcher, MatchRequest, TransitionEvaluator

N_APS = 6
LOCATION_IDS = (1, 2, 3, 5, 8, 13)

rss = st.floats(min_value=-95.0, max_value=-30.0)
queries = st.lists(rss, min_size=N_APS, max_size=N_APS).map(
    Fingerprint.from_values
)
masks = st.one_of(
    st.none(),
    st.lists(
        st.booleans(), min_size=N_APS, max_size=N_APS
    ).filter(any).map(tuple),
)
motions = st.builds(
    MotionMeasurement,
    direction_deg=st.floats(min_value=0.0, max_value=359.9),
    offset_m=st.floats(min_value=0.0, max_value=12.0),
)
priors = st.lists(
    st.tuples(
        st.sampled_from(LOCATION_IDS),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=len(LOCATION_IDS),
    unique_by=lambda pair: pair[0],
)


def _fingerprint_db() -> FingerprintDatabase:
    base = [-45.0, -52.0, -60.0, -67.0, -75.0, -82.0]
    return FingerprintDatabase(
        {
            lid: Fingerprint.from_values(
                [value + 1.5 * lid + 2.0 * (i % (lid + 1)) for i, value in enumerate(base)]
            )
            for lid in LOCATION_IDS
        }
    )


def _motion_db() -> MotionDatabase:
    entries = {}
    for i, start in enumerate(LOCATION_IDS):
        for j, end in enumerate(LOCATION_IDS):
            if j <= i or (i + j) % 3 == 0:  # i < j keys; some pairs unknown
                continue
            entries[(start, end)] = PairStatistics(
                direction_mean_deg=(37.0 * i + 91.0 * j) % 360.0,
                direction_std_deg=8.0 + i,
                offset_mean_m=1.5 + 0.7 * abs(i - j),
                offset_std_m=0.4 + 0.1 * j,
                n_observations=5,
            )
    return MotionDatabase(entries)


FDB = _fingerprint_db()
MDB = _motion_db()
CONFIG = MoLocConfig()


@given(
    batch=st.lists(queries, min_size=1, max_size=5),
    mask=masks,
)
@settings(max_examples=60, deadline=None)
def test_batch_distances_equal_per_row_dissimilarity(batch, mask):
    """The (B, L) einsum row equals Fingerprint.dissimilarity — bitwise."""
    matcher = BatchMatcher(FDB, cache_size=0)
    rows = matcher._distances(batch, mask)
    for b, query in enumerate(batch):
        for r, location_id in enumerate(FDB.matrix_ids):
            scalar = query.dissimilarity(FDB.fingerprint_of(location_id), mask)
            assert rows[b, r] == scalar  # exact, not approx


@given(
    batch=st.lists(
        st.tuples(queries, st.integers(min_value=1, max_value=8)),
        min_size=1,
        max_size=5,
    ),
    mask=masks,
)
@settings(max_examples=60, deadline=None)
def test_match_batch_equals_sequential_select_candidates(batch, mask):
    """Whole candidate objects agree with the sequential matcher."""
    matcher = BatchMatcher(FDB, cache_size=32)
    requests = [
        MatchRequest(fingerprint=query, k=k, active_aps=mask)
        for query, k in batch
    ]
    batched = matcher.match_batch(requests)
    for (query, k), candidates in zip(batch, batched):
        assert list(candidates) == select_candidates(FDB, query, k, mask)
        # Eq. 4 invariants for arbitrary candidate sets:
        total = sum(c.probability for c in candidates)
        assert all(c.probability >= 0.0 for c in candidates)
        assert math.isclose(total, 1.0, rel_tol=1e-9)
        assert len(candidates) == min(k, len(FDB))


@given(query=queries, mask=masks, k=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_match_cache_returns_the_identical_result(query, mask, k):
    matcher = BatchMatcher(FDB, cache_size=16)
    request = MatchRequest(fingerprint=query, k=k, active_aps=mask)
    first = matcher.match_one(request)
    again = matcher.match_one(request)
    assert again == first
    assert matcher.cache_hits == 1 and matcher.cache_misses == 1


@given(prior=priors, motion=motions)
@settings(max_examples=60, deadline=None)
def test_batched_transitions_equal_sequential_eq6(prior, motion):
    """TransitionEvaluator == set_transition_probability — bitwise —
    and Eq. 6 stays non-negative and bounded by the prior mass."""
    evaluator = TransitionEvaluator(MDB, CONFIG, set_cache_size=8)
    end_ids = list(LOCATION_IDS) + [99]  # 99: unknown to the motion db
    values = evaluator.evaluate(prior, end_ids, motion)
    prior_mass = sum(p for _, p in prior)
    for end_id, value in zip(end_ids, values):
        sequential = set_transition_probability(
            MDB, prior, end_id, motion, CONFIG
        )
        assert value == sequential  # exact, not approx
        assert 0.0 <= value <= prior_mass + 1e-12
    # Cached replay returns the identical vector.
    assert evaluator.evaluate(prior, end_ids, motion) == values
    assert evaluator.set_cache_hits == 1


@given(query=queries, prior=priors, motion=motions)
@settings(max_examples=60, deadline=None)
def test_posterior_stays_normalized_with_precomputed_transitions(
    query, prior, motion
):
    """Eq. 7 through the split evaluate() path (precomputed Eq. 6 values)
    yields a normalized, non-negative posterior whose argmax is returned."""
    localizer = MoLocLocalizer(FDB, MDB, CONFIG)
    localizer.seed_candidates(list(prior))
    candidates = select_candidates(FDB, query, CONFIG.k)
    evaluator = TransitionEvaluator(MDB, CONFIG)
    transitions = evaluator.evaluate(
        localizer.retained_candidates,
        [c.location_id for c in candidates],
        motion,
    )
    estimate = localizer.evaluate(candidates, motion, transitions)
    total = sum(c.probability for c in estimate.candidates)
    assert all(c.probability >= 0.0 for c in estimate.candidates)
    assert math.isclose(total, 1.0, rel_tol=1e-9)
    best = max(
        estimate.candidates, key=lambda c: (c.probability, -c.location_id)
    )
    assert estimate.location_id == best.location_id
