"""Regression tests for the serving-cache aliasing/eviction bug family.

Four bugs, one pattern: shared mutable state leaking across cache
boundaries.  Each test pins the fixed behavior —

* cached candidate sets are immutable (a caller cannot corrupt later
  cache hits by mutating its result);
* duplicate requests within one batch coalesce onto one computed row
  instead of all missing;
* the cross-session memos evict per-entry (LRU), never wholesale, and
  keep the ref-pinning guarantee across the capacity boundary;
* ``k=0`` is rejected identically by the batched and sequential paths
  (no falsy-``or`` fallback to the configured default).
"""

from __future__ import annotations

import pytest

from repro.motion.pedestrian import BodyProfile
from repro.robustness import ResilientMoLocService
from repro.serving import (
    BatchedServingEngine,
    BatchMatcher,
    IntervalEvent,
    MatchRequest,
)


@pytest.fixture()
def world(small_study):
    fingerprint_db = small_study.fingerprint_db(6)
    motion_db, _ = small_study.motion_db(6)

    def make_engine(**kwargs):
        return BatchedServingEngine(
            fingerprint_db, motion_db, small_study.config, **kwargs
        )

    def make_service():
        trace = small_study.test_traces[0]
        service = ResilientMoLocService(
            fingerprint_db,
            motion_db,
            body=BodyProfile(height_m=1.72),
            config=small_study.config,
        )
        service.calibrate_heading(
            [
                (hop.imu.compass_readings, hop.imu.true_course_deg)
                for hop in trace.hops[:2]
            ]
        )
        return service

    return make_engine, make_service, small_study, fingerprint_db


def test_cached_candidates_survive_caller_mutation(world):
    """Mutating one returned result must not corrupt later cache hits."""
    _, _, study, fingerprint_db = world
    matcher = BatchMatcher(fingerprint_db, cache_size=8)
    trace = study.test_traces[0]
    request = MatchRequest(fingerprint=trace.initial_fingerprint, k=4)
    first = matcher.match_one(request)
    assert isinstance(first, tuple)
    expected = list(first)
    # The shared object itself refuses in-place edits...
    with pytest.raises(TypeError):
        first[0] = None  # type: ignore[index]
    # ...and any detached mutable copy is the caller's problem alone.
    detached = list(first)
    detached.reverse()
    detached.pop()
    again = matcher.match_one(request)
    assert matcher.cache_hits == 1
    assert list(again) == expected


def test_duplicate_requests_in_one_batch_coalesce(world):
    """N identical requests in one batch compute (and count) one miss."""
    _, _, study, fingerprint_db = world
    matcher = BatchMatcher(fingerprint_db, cache_size=8)
    trace = study.test_traces[0]
    request = MatchRequest(fingerprint=trace.initial_fingerprint, k=4)
    other = MatchRequest(
        fingerprint=trace.hops[0].arrival_fingerprint, k=4
    )
    results = matcher.match_batch([request, request, other, request])
    assert results[0] == results[1] == results[3]
    assert matcher.cache_misses == 2  # one per distinct key
    assert matcher.coalesced_hits == 2
    assert matcher.cache_hits == 0
    assert matcher.metrics.counter("matcher.einsum_rows").value == 2


def test_coalescing_works_with_caching_disabled(world):
    """Intra-batch dedupe is pure-function sharing, not cache lookup."""
    _, _, study, fingerprint_db = world
    matcher = BatchMatcher(fingerprint_db, cache_size=0)
    request = MatchRequest(
        fingerprint=study.test_traces[0].initial_fingerprint, k=4
    )
    results = matcher.match_batch([request, request])
    assert results[0] == results[1]
    assert matcher.coalesced_hits == 1
    assert matcher.metrics.counter("matcher.einsum_rows").value == 1


def test_memo_eviction_is_per_entry_not_wholesale(world):
    """A full memo evicts its single oldest entry, pins intact."""
    make_engine, make_service, study, _ = world
    capacity = 4
    engine = make_engine(motion_memo_size=capacity)
    service = make_service()
    segments = [
        hop.imu for trace in study.test_traces for hop in trace.hops
    ][: capacity + 2]
    assert len(segments) == capacity + 2

    for segment in segments[:capacity]:
        engine._precompute(service, segment)
    # At exactly motion_memo_size entries: full, nothing evicted.
    assert len(engine._imu_checks) == capacity
    assert len(engine._motion_memo) == capacity
    assert engine.metrics.counter("engine.memo.evictions").value == 0

    engine._precompute(service, segments[capacity])
    # One entry per memo evicted — the oldest — not a wholesale clear.
    assert len(engine._imu_checks) == capacity
    assert len(engine._motion_memo) == capacity
    assert engine.metrics.counter("engine.memo.evictions").value == 2
    assert id(segments[0]) not in engine._imu_checks
    for survivor in segments[1 : capacity + 1]:
        assert id(survivor) in engine._imu_checks
    # Ref pinning: evicted segments release their ref, survivors keep
    # theirs (so a recycled id() can never alias a live memo key).
    assert id(segments[0]) not in engine._motion_refs
    for survivor in segments[1 : capacity + 1]:
        assert id(survivor) in engine._motion_refs
        assert engine._motion_refs[id(survivor)] is survivor

    # Survivors still hit both memos after the eviction.
    hits_before = engine.metrics.counter("engine.memo.imu_hits").value
    engine._precompute(service, segments[1])
    assert (
        engine.metrics.counter("engine.memo.imu_hits").value
        == hits_before + 1
    )


def test_memo_lru_order_follows_use(world):
    """A re-used entry is freshened: eviction takes the true LRU."""
    make_engine, make_service, study, _ = world
    engine = make_engine(motion_memo_size=2)
    service = make_service()
    segments = [hop.imu for hop in study.test_traces[0].hops][:3]
    engine._precompute(service, segments[0])
    engine._precompute(service, segments[1])
    engine._precompute(service, segments[0])  # freshen the older entry
    engine._precompute(service, segments[2])  # evicts segments[1]
    assert id(segments[0]) in engine._imu_checks
    assert id(segments[1]) not in engine._imu_checks
    assert id(segments[2]) in engine._imu_checks


def test_k_zero_rejected_identically_in_both_paths(world):
    """A falsy k=0 must raise, not silently fall back to config.k."""
    make_engine, make_service, study, _ = world
    scan = study.test_traces[0].initial_fingerprint.rss

    # Sequential path: straight through the localizer.
    sequential = make_service()
    with pytest.raises(ValueError, match="must be >= 1"):
        sequential.localizer.locate(
            study.test_traces[0].initial_fingerprint, None, k=0
        )

    # Batched path: a prepared interval carrying k=0 through the engine.
    engine = make_engine()
    service = make_service()
    engine.add_session("kay", service)
    original = service.prepare_interval

    def prepare_with_zero_k(scan, imu=None, precomputed=None):
        prepared = original(scan, imu, precomputed=precomputed)
        prepared.k = 0
        return prepared

    service.prepare_interval = prepare_with_zero_k
    with pytest.raises(ValueError, match="must be >= 1"):
        engine.tick([IntervalEvent(session_id="kay", scan=scan)])
