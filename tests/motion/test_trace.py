"""Tests for trace containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.env.geometry import Point
from repro.motion.trace import TraceHop, WalkTrace
from repro.sensors.accelerometer import AccelerometerModel
from repro.sensors.compass import CompassModel
from repro.sensors.imu import ImuModel


def _hop(true_from: int, true_to: int, rng) -> TraceHop:
    imu = ImuModel(AccelerometerModel(), CompassModel())
    segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
    return TraceHop(
        true_from=true_from,
        true_to=true_to,
        imu=segment,
        arrival_fingerprint=Fingerprint.from_values([-50.0, -60.0]),
    )


def _trace(hops, start=1) -> WalkTrace:
    return WalkTrace(
        user="u",
        true_start=start,
        initial_fingerprint=Fingerprint.from_values([-48.0, -61.0]),
        hops=hops,
        placement_offset_estimate_deg=0.0,
        estimated_step_length_m=0.7,
    )


class TestWalkTrace:
    def test_contiguity_enforced(self, rng):
        hops = [_hop(1, 2, rng), _hop(3, 4, rng)]  # gap between 2 and 3
        with pytest.raises(ValueError, match="not contiguous"):
            _trace(hops)

    def test_start_must_match_first_hop(self, rng):
        with pytest.raises(ValueError):
            _trace([_hop(2, 3, rng)], start=1)

    def test_true_locations(self, rng):
        trace = _trace([_hop(1, 2, rng), _hop(2, 9, rng)])
        assert trace.true_locations == [1, 2, 9]
        assert trace.n_hops == 2

    def test_empty_trace_allowed(self):
        trace = _trace([])
        assert trace.true_locations == [1]
        assert trace.n_hops == 0
