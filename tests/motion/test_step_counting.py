"""Tests for step detection, DSC, and CSC (paper Sec. IV-B1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motion.step_counting import (
    count_steps_csc,
    count_steps_dsc,
    detect_step_times,
    is_walking,
)
from repro.sensors.accelerometer import AccelerometerModel


@pytest.fixture()
def model() -> AccelerometerModel:
    return AccelerometerModel()


@pytest.fixture()
def quiet_model() -> AccelerometerModel:
    return AccelerometerModel(noise_std=0.05)


class TestWalkDetection:
    def test_walking_detected(self, model, rng):
        assert is_walking(model.walking(3.0, 0.5, rng))

    def test_idle_not_walking(self, model, rng):
        assert not is_walking(model.idle(3.0, rng))

    def test_empty_signal_not_walking(self, model, rng):
        signal = model.idle(0.1, rng)
        assert not is_walking(signal) or len(signal.samples) > 0


class TestStepDetection:
    def test_detects_all_steps_in_clean_signal(self, quiet_model, rng):
        signal = quiet_model.walking(5.0, 0.5, rng, start_phase_s=0.25)
        detected = detect_step_times(signal)
        assert len(detected) == len(signal.true_step_times)

    def test_detected_times_near_truth(self, quiet_model, rng):
        signal = quiet_model.walking(5.0, 0.5, rng, start_phase_s=0.25)
        detected = detect_step_times(signal)
        for found, truth in zip(detected, signal.true_step_times):
            assert abs(found - truth) < 0.15

    def test_no_steps_in_idle_signal(self, model, rng):
        assert detect_step_times(model.idle(5.0, rng)) == []

    def test_detection_off_by_at_most_one_with_noise(self, model, rng):
        signal = model.walking(6.0, 0.55, rng)
        detected = detect_step_times(signal)
        assert abs(len(detected) - len(signal.true_step_times)) <= 1

    @given(period=st.floats(min_value=0.42, max_value=0.68))
    @settings(max_examples=20, deadline=None)
    def test_detected_steps_respect_min_separation(self, period):
        model = AccelerometerModel()
        signal = model.walking(6.0, period, np.random.default_rng(1))
        times = detect_step_times(signal)
        assert all(b - a >= 0.25 for a, b in zip(times, times[1:]))


class TestDsc:
    def test_integer_count(self, quiet_model, rng):
        signal = quiet_model.walking(5.0, 0.5, rng, start_phase_s=0.25)
        assert count_steps_dsc(signal) == 10.0

    def test_dsc_misses_odd_time(self, quiet_model, rng):
        """With the first strike late in the period, DSC undercounts."""
        signal = quiet_model.walking(5.0, 0.5, rng, start_phase_s=0.45)
        true_elapsed_steps = 5.0 / 0.5
        assert count_steps_dsc(signal) < true_elapsed_steps


class TestCsc:
    def test_recovers_true_decimal_steps(self, quiet_model, rng):
        """CSC recovers duration/period regardless of start phase."""
        for phase in (0.05, 0.2, 0.4):
            signal = quiet_model.walking(5.0, 0.5, rng, start_phase_s=phase)
            assert count_steps_csc(signal) == pytest.approx(10.0, abs=0.4)

    def test_csc_beats_dsc_on_average(self, quiet_model):
        """Across random phases CSC's offset error is smaller than DSC's."""
        rng = np.random.default_rng(3)
        csc_err, dsc_err = [], []
        for _ in range(30):
            signal = quiet_model.walking(4.3, 0.55, rng)
            truth = 4.3 / 0.55
            csc_err.append(abs(count_steps_csc(signal) - truth))
            dsc_err.append(abs(count_steps_dsc(signal) - truth))
        assert float(np.mean(csc_err)) < float(np.mean(dsc_err))

    def test_zero_steps(self, model, rng):
        assert count_steps_csc(model.idle(3.0, rng)) == 0.0

    def test_single_detected_step_fallback(self, quiet_model, rng):
        signal = quiet_model.walking(0.6, 0.5, rng, start_phase_s=0.25)
        count = count_steps_csc(signal)
        assert count in (0.0, 1.0)

    @given(
        period=st.floats(min_value=0.45, max_value=0.65),
        duration=st.floats(min_value=2.5, max_value=8.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_csc_error_below_one_step(self, period, duration):
        model = AccelerometerModel(noise_std=0.2)
        signal = model.walking(duration, period, np.random.default_rng(7))
        truth = duration / period
        assert abs(count_steps_csc(signal) - truth) < 1.0
