"""Tests for the pedestrian model and random walks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.pedestrian import (
    BodyProfile,
    Pedestrian,
    random_walk_path,
    step_length_from_body,
)
from repro.sensors.accelerometer import AccelerometerModel
from repro.sensors.compass import CompassModel
from repro.sensors.imu import ImuModel


class TestStepLength:
    def test_height_heuristic(self):
        assert step_length_from_body(1.70) == pytest.approx(0.413 * 1.70)

    def test_weight_correction(self):
        light = step_length_from_body(1.70, 55.0)
        heavy = step_length_from_body(1.70, 95.0)
        assert light > heavy

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            step_length_from_body(0.0)
        with pytest.raises(ValueError):
            step_length_from_body(1.70, -1.0)

    def test_body_profile_property(self):
        body = BodyProfile(height_m=1.80, weight_kg=70.0)
        assert body.estimated_step_length_m == pytest.approx(
            step_length_from_body(1.80, 70.0)
        )


class TestPedestrian:
    def _make(self, **overrides) -> Pedestrian:
        defaults = dict(
            name="u",
            body=BodyProfile(1.70),
            true_step_length_m=0.70,
            step_period_s=0.5,
            imu=ImuModel(AccelerometerModel(), CompassModel()),
        )
        defaults.update(overrides)
        return Pedestrian(**defaults)

    def test_walking_speed(self):
        user = self._make()
        assert user.walking_speed_mps == pytest.approx(1.4)

    def test_hop_duration(self):
        user = self._make()
        assert user.hop_duration_s(7.0) == pytest.approx(5.0)

    def test_hop_duration_invalid_distance(self):
        with pytest.raises(ValueError):
            self._make().hop_duration_s(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._make(true_step_length_m=0.0)
        with pytest.raises(ValueError):
            self._make(step_period_s=-1.0)

    def test_change_grip_updates_compass(self, rng):
        user = self._make()
        offset = user.change_grip(rng)
        assert user.imu.compass.placement_offset_deg == offset
        assert 0.0 <= offset < 360.0

    def test_sample_plausible_users(self):
        rng = np.random.default_rng(0)
        users = [Pedestrian.sample(f"u{i}", rng) for i in range(20)]
        for user in users:
            assert 1.45 <= user.body.height_m <= 2.00
            assert 0.4 <= user.true_step_length_m <= 1.0
            assert 0.40 <= user.step_period_s <= 0.68
            assert 0.8 < user.walking_speed_mps < 2.2

    def test_sample_users_diverse(self):
        rng = np.random.default_rng(0)
        users = [Pedestrian.sample(f"u{i}", rng) for i in range(4)]
        heights = {round(u.body.height_m, 3) for u in users}
        assert len(heights) == 4

    def test_estimated_vs_true_step_length_close(self):
        rng = np.random.default_rng(1)
        user = Pedestrian.sample("u", rng)
        relative_gap = abs(
            user.true_step_length_m - user.estimated_step_length_m
        ) / user.true_step_length_m
        assert relative_gap < 0.15


class TestRandomWalk:
    def test_path_length(self, hall, rng):
        path = random_walk_path(hall.graph, rng, n_hops=10)
        assert len(path) == 11

    def test_consecutive_locations_adjacent(self, hall, rng):
        path = random_walk_path(hall.graph, rng, n_hops=25)
        for i, j in zip(path, path[1:]):
            assert hall.graph.are_adjacent(i, j)

    def test_fixed_start(self, hall, rng):
        path = random_walk_path(hall.graph, rng, n_hops=5, start_id=14)
        assert path[0] == 14

    def test_unknown_start_rejected(self, hall, rng):
        with pytest.raises(ValueError):
            random_walk_path(hall.graph, rng, n_hops=5, start_id=99)

    def test_zero_hops_rejected(self, hall, rng):
        with pytest.raises(ValueError):
            random_walk_path(hall.graph, rng, n_hops=0)

    def test_avoids_immediate_backtrack(self, hall):
        rng = np.random.default_rng(5)
        backtracks = 0
        total = 0
        for _ in range(20):
            path = random_walk_path(hall.graph, rng, n_hops=20)
            for a, b, c in zip(path, path[1:], path[2:]):
                total += 1
                if a == c and hall.graph.degree(b) > 1:
                    backtracks += 1
        assert backtracks == 0

    def test_walks_cover_the_hall(self, hall):
        """Long random walking visits most reference locations."""
        rng = np.random.default_rng(6)
        visited = set()
        for _ in range(30):
            visited.update(random_walk_path(hall.graph, rng, n_hops=20))
        assert len(visited) >= 26
