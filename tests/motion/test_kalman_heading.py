"""Tests for gyroscope-aided Kalman heading estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import Point, bearing_difference
from repro.motion.heading import course_from_readings
from repro.motion.kalman_heading import (
    KalmanHeadingFilter,
    fused_course_from_segment,
)
from repro.sensors.accelerometer import AccelerometerModel
from repro.sensors.compass import CompassModel
from repro.sensors.gyroscope import GyroscopeModel
from repro.sensors.imu import ImuModel


class TestValidation:
    def test_noise_magnitudes(self):
        with pytest.raises(ValueError):
            KalmanHeadingFilter(gyro_noise_dps=0.0)
        with pytest.raises(ValueError):
            KalmanHeadingFilter(compass_noise_deg=-1.0)
        with pytest.raises(ValueError):
            KalmanHeadingFilter(gyro_bias_dps=-0.1)

    def test_stream_checks(self):
        heading_filter = KalmanHeadingFilter()
        with pytest.raises(ValueError):
            heading_filter.smooth([], [], 10.0)
        with pytest.raises(ValueError):
            heading_filter.smooth([1.0, 2.0], [0.0], 10.0)
        with pytest.raises(ValueError):
            heading_filter.smooth([1.0], [0.0], 0.0)


class TestFiltering:
    def test_constant_heading_recovered(self):
        rng = np.random.default_rng(3)
        truth = 120.0
        compass = truth + rng.normal(0, 5.0, size=50)
        gyro = rng.normal(0, 0.5, size=50)
        estimate = KalmanHeadingFilter().course(compass, gyro, 10.0)
        assert bearing_difference(estimate, truth) < 3.0

    def test_wraparound_heading(self):
        rng = np.random.default_rng(4)
        compass = (2.0 + rng.normal(0, 5.0, size=50)) % 360.0
        gyro = np.zeros(50)
        estimate = KalmanHeadingFilter().course(compass, gyro, 10.0)
        assert bearing_difference(estimate, 2.0) < 3.0

    def test_tracks_genuine_turn(self):
        """A real 90-degree turn reported by the gyro is followed."""
        rate_hz = 10.0
        n = 60
        # Heading ramps from 0 to 90 over samples 20..40.
        truth = np.concatenate(
            [np.zeros(20), np.linspace(0, 90, 20), np.full(20, 90.0)]
        )
        rates = np.gradient(truth) * rate_hz
        rng = np.random.default_rng(5)
        compass = truth + rng.normal(0, 4.0, size=n)
        estimate = KalmanHeadingFilter().smooth(compass, rates, rate_hz)
        assert bearing_difference(float(estimate[-1]), 90.0) < 5.0
        assert bearing_difference(float(estimate[5]), 0.0) < 5.0

    def test_rejects_transient_magnetic_spike(self):
        """A mid-segment 40-degree compass bump (shelf passed nearby) is
        damped far more than plain averaging would manage."""
        rng = np.random.default_rng(6)
        n = 40
        truth = 90.0
        compass = truth + rng.normal(0, 3.0, size=n)
        compass[15:25] += 40.0  # the spike
        gyro = rng.normal(0, 0.3, size=n)

        fused = KalmanHeadingFilter().course(compass, gyro, 10.0)
        plain = course_from_readings(compass, 0.0)
        assert bearing_difference(fused, truth) < bearing_difference(plain, truth)
        assert bearing_difference(fused, truth) < 5.0


class TestSegmentFusion:
    def _imu(self, with_gyro: bool) -> ImuModel:
        return ImuModel(
            accelerometer=AccelerometerModel(),
            compass=CompassModel(noise_std_deg=4.0),
            gyroscope=GyroscopeModel() if with_gyro else None,
        )

    def test_fused_course_close_to_truth(self, rng):
        imu = self._imu(with_gyro=True)
        segment = imu.record_walk(Point(0, 0), Point(5, 0), 4.0, 0.5, rng)
        course = fused_course_from_segment(segment, 0.0)
        assert bearing_difference(course, 90.0) < 4.0

    def test_falls_back_without_gyro(self, rng):
        imu = self._imu(with_gyro=False)
        segment = imu.record_walk(Point(0, 0), Point(5, 0), 4.0, 0.5, rng)
        fused = fused_course_from_segment(segment, 0.0)
        plain = course_from_readings(segment.compass_readings, 0.0)
        assert fused == pytest.approx(plain)

    def test_placement_offset_removed(self, rng):
        imu = ImuModel(
            accelerometer=AccelerometerModel(),
            compass=CompassModel(noise_std_deg=0.5, placement_offset_deg=90.0),
            gyroscope=GyroscopeModel(bias_dps=0.0, noise_std_dps=0.1),
        )
        segment = imu.record_walk(Point(0, 0), Point(0, 5), 4.0, 0.5, rng)
        course = fused_course_from_segment(segment, 90.0)
        assert bearing_difference(course, 0.0) < 3.0
