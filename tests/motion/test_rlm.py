"""Tests for motion measurements and RLM extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import Point, bearing_difference
from repro.motion.rlm import MotionMeasurement, RlmObservation, extract_measurement
from repro.sensors.accelerometer import AccelerometerModel
from repro.sensors.compass import CompassModel
from repro.sensors.imu import ImuModel


class TestMotionMeasurement:
    def test_direction_normalized(self):
        m = MotionMeasurement(direction_deg=370.0, offset_m=2.0)
        assert m.direction_deg == pytest.approx(10.0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            MotionMeasurement(direction_deg=0.0, offset_m=-1.0)

    def test_reversed(self):
        m = MotionMeasurement(direction_deg=30.0, offset_m=4.0)
        r = m.reversed()
        assert r.direction_deg == pytest.approx(210.0)
        assert r.offset_m == 4.0

    def test_double_reverse_is_identity(self):
        m = MotionMeasurement(direction_deg=123.4, offset_m=1.5)
        rr = m.reversed().reversed()
        assert rr.direction_deg == pytest.approx(m.direction_deg)
        assert rr.offset_m == m.offset_m


class TestReassembling:
    def test_already_ordered_unchanged(self):
        obs = RlmObservation(2, 5, MotionMeasurement(90.0, 4.0))
        assert obs.reassembled() is obs

    def test_reversed_when_start_greater(self):
        obs = RlmObservation(5, 2, MotionMeasurement(90.0, 4.0))
        fixed = obs.reassembled()
        assert fixed.start_id == 2
        assert fixed.end_id == 5
        assert fixed.measurement.direction_deg == pytest.approx(270.0)
        assert fixed.measurement.offset_m == 4.0

    def test_reassembling_idempotent(self):
        obs = RlmObservation(5, 2, MotionMeasurement(15.0, 3.0))
        once = obs.reassembled()
        assert once.reassembled() == once


class TestExtraction:
    @pytest.fixture()
    def imu(self) -> ImuModel:
        return ImuModel(
            accelerometer=AccelerometerModel(noise_std=0.1),
            compass=CompassModel(noise_std_deg=0.0),
        )

    def test_direction_and_offset_recovered(self, imu, rng):
        """Walk 4 m east in 3.2 s at 0.5 s/step => ~6.4 steps."""
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.2, 0.5, rng)
        step_length = 4.0 / (3.2 / 0.5)  # true distance / true steps
        measurement = extract_measurement(segment, step_length, 0.0)
        assert bearing_difference(measurement.direction_deg, 90.0) < 2.0
        assert measurement.offset_m == pytest.approx(4.0, abs=0.5)

    def test_placement_offset_subtracted(self, rng):
        imu = ImuModel(
            accelerometer=AccelerometerModel(noise_std=0.1),
            compass=CompassModel(noise_std_deg=0.0, placement_offset_deg=90.0),
        )
        segment = imu.record_walk(Point(0, 0), Point(0, 4), 3.0, 0.5, rng)
        measurement = extract_measurement(segment, 0.7, 90.0)
        assert bearing_difference(measurement.direction_deg, 0.0) < 2.0

    def test_dsc_vs_csc_modes(self, imu, rng):
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.3, 0.5, rng)
        csc = extract_measurement(segment, 0.6, 0.0, counting="csc")
        dsc = extract_measurement(segment, 0.6, 0.0, counting="dsc")
        # DSC yields an integer multiple of the step length.
        assert dsc.offset_m % 0.6 == pytest.approx(0.0, abs=1e-9)
        assert csc.offset_m != dsc.offset_m

    def test_invalid_step_length(self, imu, rng):
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
        with pytest.raises(ValueError):
            extract_measurement(segment, 0.0, 0.0)

    def test_unknown_counting_mode(self, imu, rng):
        segment = imu.record_walk(Point(0, 0), Point(4, 0), 3.0, 0.5, rng)
        with pytest.raises(ValueError):
            extract_measurement(segment, 0.7, 0.0, counting="magic")
