"""Tests for online step-length personalization."""

from __future__ import annotations

import pytest

from repro.motion.stride import StepLengthEstimator


class TestValidation:
    def test_implausible_seed_rejected(self):
        with pytest.raises(ValueError):
            StepLengthEstimator(step_length_m=0.2)
        with pytest.raises(ValueError):
            StepLengthEstimator(step_length_m=1.5)

    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            StepLengthEstimator(0.7, learning_rate=0.0)
        with pytest.raises(ValueError):
            StepLengthEstimator(0.7, confidence_threshold=1.5)
        with pytest.raises(ValueError):
            StepLengthEstimator(0.7, min_steps=0.0)

    def test_non_positive_distance_rejected(self):
        estimator = StepLengthEstimator(0.7)
        with pytest.raises(ValueError):
            estimator.observe_hop(0.0, 8.0, 1.0)


class TestGating:
    def test_low_confidence_rejected(self):
        estimator = StepLengthEstimator(0.70)
        assert not estimator.observe_hop(5.6, 8.0, confidence=0.5)
        assert estimator.step_length_m == 0.70
        assert estimator.samples_rejected == 1

    def test_too_few_steps_rejected(self):
        estimator = StepLengthEstimator(0.70)
        assert not estimator.observe_hop(1.4, 2.0, confidence=1.0)
        assert estimator.step_length_m == 0.70

    def test_implausible_sample_rejected(self):
        """A mislocalized hop implying a 2 m stride cannot poison."""
        estimator = StepLengthEstimator(0.70)
        assert not estimator.observe_hop(16.0, 8.0, confidence=1.0)
        assert estimator.step_length_m == 0.70

    def test_good_sample_applied(self):
        estimator = StepLengthEstimator(0.70, learning_rate=0.5)
        assert estimator.observe_hop(6.0, 8.0, confidence=1.0)  # 0.75 sample
        assert estimator.step_length_m == pytest.approx(0.725)
        assert estimator.samples_accepted == 1


class TestConvergence:
    def test_converges_to_true_stride(self):
        """Persistent samples from a 0.78 m gait walk the 0.70 seed up."""
        estimator = StepLengthEstimator(0.70, learning_rate=0.2)
        for _ in range(40):
            estimator.observe_hop(7.8, 10.0, confidence=1.0)
        assert estimator.step_length_m == pytest.approx(0.78, abs=0.005)

    def test_single_outlier_barely_moves(self):
        estimator = StepLengthEstimator(0.70, learning_rate=0.1)
        estimator.observe_hop(10.0, 10.0, confidence=1.0)  # 1.0 m sample
        assert abs(estimator.step_length_m - 0.70) <= 0.03 + 1e-9


class TestServiceIntegration:
    def test_personalization_improves_step_length(self, small_study):
        """Driving the service with a wrong body profile: the personalized
        stride moves toward the trace user's actual estimated stride."""
        from repro.motion.pedestrian import BodyProfile
        from repro.service import MoLocService

        motion_db, _ = small_study.motion_db(6)
        # Pick a trace whose user's stride differs from a 1.60 m profile.
        trace = max(
            small_study.test_traces,
            key=lambda t: abs(
                t.estimated_step_length_m
                - BodyProfile(1.60).estimated_step_length_m
            ),
        )
        service = MoLocService(
            small_study.fingerprint_db(6),
            motion_db,
            body=BodyProfile(1.60),  # wrong profile on purpose
            config=small_study.config,
            personalize_stride=True,
        )
        seeded = service.step_length_m
        target = trace.estimated_step_length_m
        service.calibrate_heading(
            [
                (hop.imu.compass_readings, hop.imu.true_course_deg)
                for hop in trace.hops[:2]
            ]
        )
        service.on_interval(trace.initial_fingerprint.rss)
        for hop in trace.hops:
            service.on_interval(hop.arrival_fingerprint.rss, hop.imu)
        if service.stride_samples_accepted:
            assert abs(service.step_length_m - target) < abs(seeded - target)

    def test_stride_survives_end_session(self, small_study):
        from repro.motion.pedestrian import BodyProfile
        from repro.service import MoLocService

        motion_db, _ = small_study.motion_db(6)
        service = MoLocService(
            small_study.fingerprint_db(6),
            motion_db,
            body=BodyProfile(1.60),
            personalize_stride=True,
        )
        service._stride.observe_hop(6.0, 8.0, confidence=1.0)
        learned = service.step_length_m
        service.end_session()
        assert service.step_length_m == learned
