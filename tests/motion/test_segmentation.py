"""Tests for continuous-stream segmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import bearing_difference
from repro.motion.segmentation import segment_at_turns


def _stream(legs, rate_hz=10.0, noise_std=4.0, seed=0):
    """Concatenate straight legs: (heading_deg, duration_s) pairs."""
    rng = np.random.default_rng(seed)
    parts = []
    for heading, duration in legs:
        n = int(round(duration * rate_hz))
        parts.append((heading + rng.normal(0, noise_std, size=n)) % 360.0)
    return np.concatenate(parts)


class TestValidation:
    def test_empty_stream(self):
        with pytest.raises(ValueError):
            segment_at_turns([], 10.0)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            segment_at_turns([0.0], 0.0)
        with pytest.raises(ValueError):
            segment_at_turns([0.0], 10.0, turn_threshold_deg=0.0)


class TestSegmentation:
    def test_straight_walk_is_one_segment(self):
        stream = _stream([(90.0, 6.0)])
        segments = segment_at_turns(stream, 10.0)
        assert len(segments) == 1
        assert segments[0].start_index == 0
        assert segments[0].end_index == len(stream)
        assert bearing_difference(segments[0].mean_heading_deg, 90.0) < 3.0

    def test_single_right_turn(self):
        stream = _stream([(90.0, 4.0), (180.0, 4.0)])
        segments = segment_at_turns(stream, 10.0)
        assert len(segments) == 2
        assert bearing_difference(segments[0].mean_heading_deg, 90.0) < 6.0
        assert bearing_difference(segments[1].mean_heading_deg, 180.0) < 6.0

    def test_boundary_near_true_turn(self):
        stream = _stream([(0.0, 5.0), (90.0, 5.0)])
        segments = segment_at_turns(stream, 10.0)
        assert len(segments) == 2
        # The turn happened at sample 50; boundary within one window.
        assert abs(segments[0].end_index - 50) <= 12

    def test_three_legs(self):
        stream = _stream([(0.0, 4.0), (90.0, 5.0), (0.0, 4.0)])
        segments = segment_at_turns(stream, 10.0)
        assert len(segments) == 3
        headings = [s.mean_heading_deg for s in segments]
        assert bearing_difference(headings[0], 0.0) < 6.0
        assert bearing_difference(headings[1], 90.0) < 6.0
        assert bearing_difference(headings[2], 0.0) < 6.0

    def test_u_turn_detected_across_wraparound(self):
        stream = _stream([(350.0, 4.0), (170.0, 4.0)])
        segments = segment_at_turns(stream, 10.0)
        assert len(segments) == 2

    def test_segments_cover_stream_without_overlap(self):
        stream = _stream([(0.0, 4.0), (90.0, 3.0), (180.0, 5.0)])
        segments = segment_at_turns(stream, 10.0)
        assert segments[0].start_index == 0
        assert segments[-1].end_index == len(stream)
        for a, b in zip(segments, segments[1:]):
            assert a.end_index == b.start_index

    def test_small_wiggles_do_not_split(self):
        """20-degree corrections around obstacles are not junction turns."""
        stream = _stream([(90.0, 3.0), (110.0, 2.0), (90.0, 3.0)])
        segments = segment_at_turns(stream, 10.0)
        assert len(segments) == 1

    def test_short_transient_merged(self):
        """A half-second spur between turns merges into a neighbor."""
        stream = _stream([(0.0, 4.0), (90.0, 0.5), (180.0, 4.0)])
        segments = segment_at_turns(stream, 10.0, min_segment_s=1.5)
        assert len(segments) <= 2 + 1  # never an explosion of stubs
        assert all(s.n_samples >= 5 for s in segments[1:-1])

    def test_very_short_stream(self):
        segments = segment_at_turns([90.0, 91.0, 89.0], 10.0)
        assert len(segments) == 1
        assert segments[0].n_samples == 3


class TestOnSimulatedWalk:
    def test_segments_match_hops_on_a_real_trace(self, small_study):
        """Concatenating a walk's per-hop compass streams and re-segmenting
        recovers roughly one segment per straight stretch of the walk."""
        trace = small_study.test_traces[0]
        stream = np.concatenate(
            [hop.imu.compass_readings for hop in trace.hops]
        )
        segments = segment_at_turns(stream, 10.0)
        # Straight runs merge consecutive same-direction hops, so the
        # segment count equals the number of direction *changes* + 1,
        # within slack for noise.
        courses = [hop.imu.true_course_deg for hop in trace.hops]
        changes = sum(
            1
            for a, b in zip(courses, courses[1:])
            if bearing_difference(a, b) >= 35.0
        )
        assert abs(len(segments) - (changes + 1)) <= 2
