"""Tests for heading estimation (placement offset removal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.geometry import bearing_difference
from repro.motion.heading import (
    course_from_readings,
    estimate_placement_offset,
    mean_compass_heading,
)


class TestMeanHeading:
    def test_mean_of_constant_readings(self):
        assert mean_compass_heading([90.0, 90.0]) == pytest.approx(90.0)

    def test_wraparound_mean(self):
        assert mean_compass_heading([358.0, 2.0]) == pytest.approx(0.0, abs=1e-9)


class TestPlacementOffsetEstimation:
    def test_single_segment_exact(self):
        readings = [130.0, 130.0, 130.0]
        offset = estimate_placement_offset([(readings, 40.0)])
        assert offset == pytest.approx(90.0)

    def test_multiple_segments_average(self):
        calibration = [
            ([100.0] * 5, 10.0),   # offset 90
            ([192.0] * 5, 100.0),  # offset 92
        ]
        assert estimate_placement_offset(calibration) == pytest.approx(91.0)

    def test_wraparound_offsets(self):
        calibration = [
            ([5.0] * 3, 10.0),    # offset -5 => 355
            ([15.0] * 3, 10.0),   # offset 5
        ]
        offset = estimate_placement_offset(calibration)
        assert bearing_difference(offset, 0.0) == pytest.approx(0.0, abs=1e-9)

    def test_empty_calibration_raises(self):
        with pytest.raises(ValueError):
            estimate_placement_offset([])

    def test_noisy_estimation_converges(self):
        rng = np.random.default_rng(2)
        true_offset = 137.0
        calibration = []
        for _ in range(6):
            course = float(rng.uniform(0, 360))
            readings = [
                (course + true_offset + rng.normal(0, 4.0)) % 360.0
                for _ in range(30)
            ]
            calibration.append((readings, course))
        estimated = estimate_placement_offset(calibration)
        assert bearing_difference(estimated, true_offset) < 3.0


class TestCourseFromReadings:
    def test_offset_removed(self):
        readings = [100.0, 102.0, 98.0]
        assert course_from_readings(readings, 90.0) == pytest.approx(10.0)

    def test_round_trip_with_estimation(self):
        """Estimating the offset then applying it recovers new courses."""
        true_offset = 220.0
        calibration = [([(45.0 + true_offset) % 360.0] * 4, 45.0)]
        estimated = estimate_placement_offset(calibration)
        new_readings = [(300.0 + true_offset) % 360.0] * 4
        course = course_from_readings(new_readings, estimated)
        assert bearing_difference(course, 300.0) == pytest.approx(0.0, abs=1e-9)
